"""Tests for the clipping SAM (redundant z-region decomposition)."""

import pytest

from repro.geometry.rect import Rect
from repro.sam.clipping import ClippingSAM
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_POINTS,
    STANDARD_QUERIES,
    check_sam_against_oracle,
    make_rects,
)


def build(rects, redundancy=4):
    sam = ClippingSAM(PageStore(), 2, redundancy=redundancy)
    for i, r in enumerate(rects):
        sam.insert(r, i)
    return sam


class TestCorrectness:
    @pytest.mark.parametrize("redundancy", [1, 2, 4, 8])
    def test_all_query_types(self, redundancy):
        rects = make_rects(400, seed=1)
        sam = build(rects, redundancy=redundancy)
        check_sam_against_oracle(sam, rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_large_rects(self):
        rects = make_rects(300, seed=2, max_extent=0.4)
        sam = build(rects)
        check_sam_against_oracle(sam, rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_results_never_duplicated(self):
        """Redundant storage must not yield redundant answers."""
        rects = make_rects(400, seed=3, max_extent=0.3)
        sam = build(rects, redundancy=8)
        for query in STANDARD_QUERIES:
            hits = sam.intersection(query)
            assert len(hits) == len(set(hits))

    def test_invalid_redundancy(self):
        with pytest.raises(ValueError):
            ClippingSAM(PageStore(), 2, redundancy=0)


class TestRedundancyTradeOff:
    def test_redundancy_bounded_by_budget(self):
        rects = make_rects(400, seed=4, max_extent=0.2)
        for budget in (1, 2, 4):
            sam = build(rects, redundancy=budget)
            assert sam.stored_regions <= budget * len(rects)
            assert sam.stored_regions >= len(rects)

    def test_redundancy_one_stores_each_object_once(self):
        rects = make_rects(300, seed=5)
        sam = build(rects, redundancy=1)
        assert sam.stored_regions == len(rects)

    def test_higher_redundancy_costs_more_storage(self):
        """Orenstein's trade-off, storage side."""
        rects = make_rects(800, seed=6, max_extent=0.2)
        low = build(rects, redundancy=1)
        high = build(rects, redundancy=8)
        assert high.stored_regions > low.stored_regions
        assert high.metrics().data_pages >= low.metrics().data_pages

    def test_higher_redundancy_improves_small_query_precision(self):
        """Orenstein's trade-off, retrieval side: finer decomposition
        means less dead space per entry, so small point queries touch
        fewer false candidates."""
        rects = make_rects(1500, seed=7, max_extent=0.15)
        low = build(rects, redundancy=1)
        high = build(rects, redundancy=8)

        def probe_cost(sam):
            total = 0
            for point in [(i / 17.0, (i * 7 % 17) / 17.0) for i in range(17)]:
                sam.store.begin_operation()
                sam.store.begin_operation()
                before = sam.store.stats.total
                sam.point_query(point)
                total += sam.store.stats.total - before
            return total

        assert probe_cost(high) <= probe_cost(low) * 1.5
