"""Property tests for the batched level-at-a-time traversal.

The batched planner (:mod:`repro.query.traverse`) promises more than
equal results: the *frontier* it derives at every directory level — and
therefore the full ordered stream of page accesses the replay issues —
must equal the scalar descent's, access for access.  These tests pin
that oracle across the whole fuzz matrix: every structure is built
twice from identical data (``REPRO_VECTOR`` off and on), every query
file runs through the batched driver in both modes, and the two
observer event streams (pid, kind, read/write, charged) are compared as
ordered sequences.  A vector-mode traversal that visited one extra
page, skipped one, or reordered two reads fails immediately.

A second pass forces the workload promotion threshold to 1 page visit
(``REPRO_VECTOR_PROMOTE=1``), driving every page through the CSR batch
verdicts and the cross-workload promotion hints on the very first
query — the paths a cold default threshold would leave underexercised
at these tiny scales.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.rect import Rect
from repro.query.driver import run_query_file
from repro.storage.pagestore import PageStore
from repro.verify.fuzz import STRUCTURES, _point_pool, _rect_pool

coordinate = st.floats(0.0, 1.0, exclude_max=True, allow_nan=False)


@st.composite
def query_rects(draw):
    out = []
    for _ in range(draw(st.integers(2, 5))):
        a, b = draw(coordinate), draw(coordinate)
        c, d = draw(coordinate), draw(coordinate)
        out.append(Rect((min(a, b), min(c, d)), (max(a, b), max(c, d))))
    return out


class _PidTrace:
    """Observer recording the full ordered access stream of a store."""

    def __init__(self):
        self.events = []

    def on_operation_begin(self, store):
        self.events.append("op")

    def on_access(self, store, pid, kind, rw, charged, reason):
        self.events.append((pid, str(kind), rw, charged))


def _traced_pass(name, spec, data, queries, vector, page_size=512):
    """Build one structure and run the query files under a pid trace."""
    store = PageStore(page_size, vector=vector)
    method = spec["factory"](store)
    for rid, item in enumerate(data):
        method.insert(item, rid)
    trace = _PidTrace()
    store.observer = trace
    outcomes = []
    if spec["kind"] == "pam":
        outcomes.append(
            run_query_file(method, "range", queries, method.range_query)
        )
    else:
        for kind, op in (
            ("intersection", method.intersection),
            ("enclosure", method.enclosure),
        ):
            outcomes.append(run_query_file(method, kind, queries, op))
    return trace.events, outcomes, repr(store.stats.snapshot())


def _assert_frontier_identity(seed, scale, queries):
    points = _point_pool(scale, seed)
    rects = _rect_pool(scale, seed + 1)
    for name, spec in STRUCTURES.items():
        data = points if spec["kind"] == "pam" else rects
        s_events, s_out, s_stats = _traced_pass(name, spec, data, queries, False)
        v_events, v_out, v_stats = _traced_pass(name, spec, data, queries, True)
        assert v_out == s_out, f"{name}: outcomes diverge"
        assert v_stats == s_stats, f"{name}: store statistics diverge"
        if v_events != s_events:
            n = min(len(s_events), len(v_events))
            idx = next((i for i in range(n) if s_events[i] != v_events[i]), n)
            raise AssertionError(
                f"{name}: access stream diverges at event {idx} "
                f"(scalar {len(s_events)} events, vector {len(v_events)})"
            )


FUZZ_SETTINGS = settings(
    max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestFrontierOracle:
    @FUZZ_SETTINGS
    @given(
        seed=st.integers(0, 10**6),
        scale=st.integers(30, 90),
        queries=query_rects(),
    )
    def test_batched_frontier_equals_scalar_descent(self, seed, scale, queries):
        _assert_frontier_identity(seed, scale, queries)

    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10**6), queries=query_rects())
    def test_frontier_identity_under_forced_promotion(self, seed, queries):
        old = os.environ.get("REPRO_VECTOR_PROMOTE")
        os.environ["REPRO_VECTOR_PROMOTE"] = "1"
        try:
            _assert_frontier_identity(seed, 60, queries)
        finally:
            if old is None:
                del os.environ["REPRO_VECTOR_PROMOTE"]
            else:
                os.environ["REPRO_VECTOR_PROMOTE"] = old


class TestWorkloadLifecycle:
    def test_promotion_threshold_env_override(self, monkeypatch):
        from repro.query.columnar import promote_visits_for

        monkeypatch.delenv("REPRO_VECTOR_PROMOTE", raising=False)
        assert promote_visits_for(160) == 20
        assert promote_visits_for(8) == 4
        monkeypatch.setenv("REPRO_VECTOR_PROMOTE", "7")
        assert promote_visits_for(160) == 7
        for bad in ("0", "-3", "many"):
            monkeypatch.setenv("REPRO_VECTOR_PROMOTE", bad)
            with pytest.raises(ValueError):
                promote_visits_for(160)

    def test_hot_pid_hints_do_not_change_verdicts(self):
        """A pid hint only moves promotion earlier — never the answer."""
        from repro.query.columnar import ColumnarCache

        points = _point_pool(60, 7)
        queries = [
            Rect((0.1, 0.1), (0.6, 0.6)),
            Rect((0.3, 0.2), (0.9, 0.8)),
            Rect((0.0, 0.5), (0.4, 0.9)),
        ]
        spec = STRUCTURES["BANG"]
        store = PageStore(512, vector=True)
        method = spec["factory"](store)
        for rid, p in enumerate(points):
            method.insert(p, rid)
        cache = store.columnar
        assert isinstance(cache, ColumnarCache)
        first = run_query_file(method, "range", queries, method.range_query)
        assert cache._hot_pids, "first workload should leave promotion hints"
        hinted = run_query_file(method, "range", queries, method.range_query)
        # Costs legitimately differ between consecutive runs (the search
        # path buffer keeps recently visited pages); the hint contract is
        # about the answers.
        assert [r for _, r in hinted] == [r for _, r in first]

    def test_invalidate_drops_hot_pid_hint(self):
        from repro.query.columnar import ColumnarCache

        cache = ColumnarCache()
        cache._hot_pids.update({3, 5})
        cache.invalidate(3)
        assert cache._hot_pids == {5}
        cache.clear()
        assert not cache._hot_pids
