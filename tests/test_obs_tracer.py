"""Tests for the operation-scoped tracer and the store observer hook."""

import json

from repro.core.comparison import build_pam, build_sam, run_pam_queries, run_sam_queries
from repro.obs.export import JsonlTraceSink
from repro.obs.tracer import Tracer
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.sam.rtree import RTree
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore

from tests.conftest import STANDARD_QUERIES, make_points, make_rects


class TestSpans:
    def test_one_span_per_operation(self, store):
        tracer = Tracer().attach(store)
        tracer.set_context(structure="S", op="insert")
        pids = [store.allocate(PageKind.DATA, i) for i in range(3)]
        for pid in pids:
            store.begin_operation()
            store.read(pid)
            store.write(pid)
        spans = tracer.finish()
        assert [s.op for s in spans] == ["insert"] * 3
        assert [s.index for s in spans] == [0, 1, 2]
        assert all(s.accesses == 2 for s in spans)

    def test_span_counters_match_store_stats(self, store):
        tracer = Tracer().attach(store)
        d = store.allocate(PageKind.DATA, "d")
        i = store.allocate(PageKind.DIRECTORY, "i")
        store.begin_operation()
        store.read(d)
        store.read(i)
        store.write(d)
        [span] = tracer.finish()
        assert span.stats() == store.stats
        assert span.data_reads == 1 and span.dir_reads == 1
        assert span.data_writes == 1 and span.dir_writes == 0

    def test_free_accesses_counted_separately(self, store):
        tracer = Tracer().attach(store)
        pinned = store.allocate(PageKind.DIRECTORY, "root")
        store.pin(pinned)
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pinned)  # pinned
        store.read(pid)  # charged
        store.read(pid)  # buffered
        store.write(pid)  # charged
        store.write(pid)  # dedup
        [span] = tracer.finish()
        assert span.accesses == 2
        assert span.free_accesses == 3

    def test_set_context_closes_open_span(self, store):
        tracer = Tracer().attach(store)
        pid = store.allocate(PageKind.DATA, "x")
        tracer.set_context(structure="A", op="insert")
        store.begin_operation()
        store.read(pid)
        tracer.set_context(structure="B", op="query")
        store.begin_operation()
        store.read(pid)
        spans = tracer.finish()
        assert [(s.structure, s.op) for s in spans] == [
            ("A", "insert"),
            ("B", "query"),
        ]

    def test_access_outside_bracket_opens_implicit_span(self, store):
        tracer = Tracer().attach(store)
        tracer.set_context(structure="S", op="setup")
        pid = store.allocate(PageKind.DIRECTORY, "root")
        store.write(pid)  # no begin_operation was issued
        [span] = tracer.finish()
        assert span.op == "setup" and span.dir_writes == 1

    def test_tracer_stats_totals(self, store):
        tracer = Tracer().attach(store)
        pids = [store.allocate(PageKind.DATA, i) for i in range(4)]
        for pid in pids:
            store.begin_operation()
            store.read(pid)
        assert tracer.stats() == store.stats

    def test_record_events(self, store):
        tracer = Tracer(record_events=True).attach(store)
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.read(pid)
        [span] = tracer.finish()
        assert [e.reason for e in span.events] == ["charged", "buffered"]
        assert all(e.pid == pid and e.kind == "data" for e in span.events)
        assert span.as_dict()["events"][0]["rw"] == "read"


class TestJsonlSink:
    def test_spans_stream_to_jsonl(self, store, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            tracer = Tracer(record_events=True, sink=sink).attach(store)
            tracer.set_context(structure="S", op="insert")
            pid = store.allocate(PageKind.DATA, "x")
            for _ in range(3):
                store.begin_operation()
                store.read(pid)
            tracer.finish()
            assert sink.spans_written == 3
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0]["structure"] == "S"
        assert lines[0]["events"][0]["charged"] is True
        # The page stays on the buffered path across single-page operations.
        assert lines[1]["events"][0]["reason"] == "path"


class TestZeroBehaviourChange:
    """Satellite: tracing must not change a single charged access."""

    def _pam_stats(self, tracer):
        points = make_points(300, seed=5)
        pam = build_pam(
            lambda s, dims=2: TwoLevelGridFile(s, dims), points, tracer=tracer
        )
        run_pam_queries(pam, seed=11)
        for rect in STANDARD_QUERIES:
            pam.range_query(rect)
        return pam.store.stats

    def _sam_stats(self, tracer):
        rects = make_rects(200, seed=7)
        sam = build_sam(lambda s, dims=2: RTree(s, dims), rects, tracer=tracer)
        run_sam_queries(sam, seed=13)
        return sam.store.stats

    def test_grid_identical_with_and_without_tracer(self):
        untraced = self._pam_stats(None)
        traced = self._pam_stats(Tracer())
        assert traced == untraced

    def test_rtree_identical_with_and_without_tracer(self):
        untraced = self._sam_stats(None)
        traced = self._sam_stats(Tracer(record_events=True))
        assert traced == untraced

    def test_tracer_spans_sum_to_store_stats(self):
        tracer = Tracer()
        stats = self._pam_stats(tracer)
        assert tracer.stats() == stats


class TestObserverHookOrdering:
    def test_begin_fires_before_buffer_rotation(self):
        """The observer sees the operation boundary before the tail rotates."""
        seen = []

        class Probe:
            def on_operation_begin(self, store):
                # _buffer_cur still holds the previous operation's pages.
                seen.append(sorted(store._buffer_cur))

            def on_access(self, store, pid, kind, rw, charged, reason):
                pass

        store = PageStore()
        store.observer = Probe()
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.begin_operation()
        assert seen == [[], [pid]]
