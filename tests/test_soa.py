"""Struct-of-arrays container invariants (:mod:`repro.storage.soa`).

The regression these tests pin: columnar views are invalidated *per
container*, so a page holding both a directory-bounds container and a
record container keeps its bounds arrays when only the records change.
Before the struct-of-arrays store, any write rebuilt every array of the
page; the build counters here fail if that coupling ever comes back.
"""

import pickle

import numpy as np
import pytest

from repro.storage.soa import SoAList, soa_field


def _counting_builder(counter, key):
    def build(lst):
        counter[key] = counter.get(key, 0) + 1
        return np.arange(len(lst), dtype=float)

    return build


class TestSoAListViews:
    def test_views_cache_until_mutation(self):
        calls = {}
        lst = SoAList([1, 2, 3])
        a = lst.view("a", _counting_builder(calls, "a"))
        assert lst.view("a", _counting_builder(calls, "a")) is a
        assert calls == {"a": 1}
        lst.append(4)
        lst.view("a", _counting_builder(calls, "a"))
        assert calls == {"a": 2}

    def test_touch_drops_only_the_named_view(self):
        calls = {}
        lst = SoAList([1, 2, 3])
        lst.view("a", _counting_builder(calls, "a"))
        lst.view("b", _counting_builder(calls, "b"))
        lst.touch("b")
        lst.view("a", _counting_builder(calls, "a"))
        lst.view("b", _counting_builder(calls, "b"))
        assert calls == {"a": 1, "b": 2}
        lst.touch()  # no tag: drop everything
        lst.view("a", _counting_builder(calls, "a"))
        assert calls["a"] == 2

    def test_length_drift_guard_rebuilds(self):
        """A missed length-changing mutation degrades to a rebuild."""
        calls = {}
        lst = SoAList([1, 2, 3])
        lst.view("a", _counting_builder(calls, "a"))
        list.append(lst, 4)  # bypass the SoAList mutator on purpose
        arr = lst.view("a", _counting_builder(calls, "a"))
        assert calls == {"a": 2}
        assert arr.shape == (4,)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda l: l.append(9),
            lambda l: l.extend([9]),
            lambda l: l.insert(0, 9),
            lambda l: l.remove(1),
            lambda l: l.pop(),
            lambda l: l.sort(),
            lambda l: l.reverse(),
            lambda l: l.__setitem__(0, 9),
            lambda l: l.__delitem__(0),
            lambda l: l.__iadd__([9]),
            lambda l: l.__imul__(2),
            lambda l: l.clear(),
        ],
    )
    def test_every_mutator_invalidates(self, mutate):
        lst = SoAList([3, 1, 2])
        lst.view("a", lambda l: np.arange(len(l)))
        assert lst.view_builds == 1
        mutate(lst)
        assert lst.view_builds == 0

    def test_pickle_sheds_views(self):
        lst = SoAList([1, 2, 3])
        lst.view("a", lambda l: np.arange(len(l)))
        clone = pickle.loads(pickle.dumps(lst))
        assert type(clone) is SoAList
        assert list(clone) == [1, 2, 3]
        assert clone.view_builds == 0


class _Page:
    __slots__ = ("_soa_entries", "_soa_records")

    entries = soa_field()
    records = soa_field()


class TestPerArrayInvalidation:
    def test_bounds_views_survive_record_writes(self):
        """The satellite regression: rebuild counts stay pinned.

        Warming a directory-bounds view and a record view, then writing
        only the record container, must rebuild exactly the record view
        — one build each before the write, one extra record build after.
        """
        calls = {}
        page = _Page()
        page.entries = [((0.0, 0.0), (1.0, 1.0))]
        page.records = [((0.5, 0.5), 0)]
        page.entries.view("bounds", _counting_builder(calls, "bounds"))
        page.records.view("pts", _counting_builder(calls, "pts"))
        assert calls == {"bounds": 1, "pts": 1}

        page.records.append(((0.25, 0.75), 1))
        page.records.view("pts", _counting_builder(calls, "pts"))
        page.entries.view("bounds", _counting_builder(calls, "bounds"))
        assert calls == {"bounds": 1, "pts": 2}

        # Rebinding the records list wholesale is also a record-only event.
        page.records = [((0.1, 0.1), 2)]
        page.records.view("pts", _counting_builder(calls, "pts"))
        page.entries.view("bounds", _counting_builder(calls, "bounds"))
        assert calls == {"bounds": 1, "pts": 3}

    def test_soa_field_wraps_assignments(self):
        page = _Page()
        page.records = [1, 2]
        assert type(page.records) is SoAList
        page.records = page.records[:1]  # slicing returns a plain list
        assert type(page.records) is SoAList
        assert list(page.records) == [1]
