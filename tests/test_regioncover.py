"""Tests for exact rectangle-union coverage."""

from hypothesis import given, strategies as st

from repro.geometry.rect import Rect
from repro.geometry.regioncover import CoverSet, is_covered

unit = st.floats(0.0, 1.0, allow_nan=False)


@st.composite
def rect(draw):
    a, b = draw(unit), draw(unit)
    c, d = draw(unit), draw(unit)
    return Rect((min(a, b), min(c, d)), (max(a, b), max(c, d)))


class TestIsCovered:
    def test_no_covers(self):
        assert not is_covered(Rect.unit(2), [])

    def test_single_full_cover(self):
        assert is_covered(Rect((0.2, 0.2), (0.4, 0.4)), [Rect.unit(2)])

    def test_single_partial_cover(self):
        assert not is_covered(Rect.unit(2), [Rect((0.0, 0.0), (0.5, 1.0))])

    def test_two_halves_cover(self):
        halves = [Rect((0.0, 0.0), (0.5, 1.0)), Rect((0.5, 0.0), (1.0, 1.0))]
        assert is_covered(Rect.unit(2), halves)

    def test_two_halves_with_gap(self):
        parts = [Rect((0.0, 0.0), (0.49, 1.0)), Rect((0.5, 0.0), (1.0, 1.0))]
        assert not is_covered(Rect.unit(2), parts)

    def test_quadrants(self):
        quadrants = [
            Rect((0.0, 0.0), (0.5, 0.5)),
            Rect((0.5, 0.0), (1.0, 0.5)),
            Rect((0.0, 0.5), (0.5, 1.0)),
            Rect((0.5, 0.5), (1.0, 1.0)),
        ]
        assert is_covered(Rect.unit(2), quadrants)
        assert not is_covered(Rect.unit(2), quadrants[:3])

    def test_l_shaped_cover(self):
        covers = [Rect((0.0, 0.0), (1.0, 0.6)), Rect((0.0, 0.4), (0.5, 1.0))]
        assert is_covered(Rect((0.0, 0.0), (0.5, 1.0)), covers)
        assert not is_covered(Rect((0.0, 0.0), (0.7, 1.0)), covers)

    def test_degenerate_target(self):
        line = Rect((0.2, 0.0), (0.2, 1.0))
        assert is_covered(line, [Rect((0.1, 0.0), (0.3, 1.0))])
        assert not is_covered(line, [Rect((0.3, 0.0), (0.5, 1.0))])

    def test_disjoint_covers_ignored(self):
        assert not is_covered(
            Rect((0.0, 0.0), (0.1, 0.1)), [Rect((0.8, 0.8), (0.9, 0.9))]
        )

    @given(rect(), st.lists(rect(), max_size=5))
    def test_never_false_positive(self, target, covers):
        """If reported covered, dense sample points must all be covered."""
        if not is_covered(target, covers):
            return
        steps = 7
        for i in range(steps + 1):
            for j in range(steps + 1):
                p = (
                    min(target.lo[0] + (target.hi[0] - target.lo[0]) * i / steps,
                        target.hi[0]),
                    min(target.lo[1] + (target.hi[1] - target.lo[1]) * j / steps,
                        target.hi[1]),
                )
                assert any(c.contains_point(p) for c in covers)

    @given(rect())
    def test_self_cover(self, target):
        assert is_covered(target, [target])


class TestCoverSet:
    """CoverSet must agree with is_covered on every target.

    This pins the whole shortcut ladder — the bounding-box gate, the
    fully-covered-grid early return, the small-box flat-list walk and
    the NumPy fallback — against the per-call oracle.
    """

    @given(st.lists(rect(), min_size=1, max_size=6), rect())
    def test_matches_is_covered(self, covers, target):
        cs = CoverSet(covers)
        assert cs.covers(target) == is_covered(target, covers)
        assert cs.covers_bounds(target.lo, target.hi) == is_covered(
            target, covers
        )

    @given(st.lists(rect(), min_size=1, max_size=4))
    def test_union_members_are_covered(self, covers):
        cs = CoverSet(covers)
        for c in covers:
            assert cs.covers(c)

    def test_full_grid_shortcut(self):
        # Two abutting halves cover their bounding box completely: every
        # interior target must be answered True (via the _full fast path).
        cs = CoverSet(
            [Rect((0.0, 0.0), (0.5, 1.0)), Rect((0.5, 0.0), (1.0, 1.0))]
        )
        assert cs._full
        assert cs.covers(Rect((0.2, 0.3), (0.9, 0.7)))
        assert cs.covers(Rect((0.5, 0.5), (0.5, 0.5)))  # degenerate
        assert not cs.covers(Rect((0.2, 0.3), (1.1, 0.7)))  # sticks out

    def test_small_box_walk_matches_numpy(self):
        # An L-shaped cover leaves one quadrant open; probe targets whose
        # cell boxes are small enough for the flat-list walk.
        covers = [
            Rect((0.0, 0.0), (1.0, 0.5)),
            Rect((0.0, 0.5), (0.5, 1.0)),
        ]
        cs = CoverSet(covers)
        assert not cs._full
        for target in (
            Rect((0.1, 0.1), (0.9, 0.4)),
            Rect((0.1, 0.1), (0.4, 0.9)),
            Rect((0.6, 0.6), (0.9, 0.9)),
            Rect((0.1, 0.1), (0.9, 0.9)),
        ):
            assert cs.covers(target) == is_covered(target, covers)
