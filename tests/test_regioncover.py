"""Tests for exact rectangle-union coverage."""

from hypothesis import given, strategies as st

from repro.geometry.rect import Rect
from repro.geometry.regioncover import is_covered

unit = st.floats(0.0, 1.0, allow_nan=False)


@st.composite
def rect(draw):
    a, b = draw(unit), draw(unit)
    c, d = draw(unit), draw(unit)
    return Rect((min(a, b), min(c, d)), (max(a, b), max(c, d)))


class TestIsCovered:
    def test_no_covers(self):
        assert not is_covered(Rect.unit(2), [])

    def test_single_full_cover(self):
        assert is_covered(Rect((0.2, 0.2), (0.4, 0.4)), [Rect.unit(2)])

    def test_single_partial_cover(self):
        assert not is_covered(Rect.unit(2), [Rect((0.0, 0.0), (0.5, 1.0))])

    def test_two_halves_cover(self):
        halves = [Rect((0.0, 0.0), (0.5, 1.0)), Rect((0.5, 0.0), (1.0, 1.0))]
        assert is_covered(Rect.unit(2), halves)

    def test_two_halves_with_gap(self):
        parts = [Rect((0.0, 0.0), (0.49, 1.0)), Rect((0.5, 0.0), (1.0, 1.0))]
        assert not is_covered(Rect.unit(2), parts)

    def test_quadrants(self):
        quadrants = [
            Rect((0.0, 0.0), (0.5, 0.5)),
            Rect((0.5, 0.0), (1.0, 0.5)),
            Rect((0.0, 0.5), (0.5, 1.0)),
            Rect((0.5, 0.5), (1.0, 1.0)),
        ]
        assert is_covered(Rect.unit(2), quadrants)
        assert not is_covered(Rect.unit(2), quadrants[:3])

    def test_l_shaped_cover(self):
        covers = [Rect((0.0, 0.0), (1.0, 0.6)), Rect((0.0, 0.4), (0.5, 1.0))]
        assert is_covered(Rect((0.0, 0.0), (0.5, 1.0)), covers)
        assert not is_covered(Rect((0.0, 0.0), (0.7, 1.0)), covers)

    def test_degenerate_target(self):
        line = Rect((0.2, 0.0), (0.2, 1.0))
        assert is_covered(line, [Rect((0.1, 0.0), (0.3, 1.0))])
        assert not is_covered(line, [Rect((0.3, 0.0), (0.5, 1.0))])

    def test_disjoint_covers_ignored(self):
        assert not is_covered(
            Rect((0.0, 0.0), (0.1, 0.1)), [Rect((0.8, 0.8), (0.9, 0.9))]
        )

    @given(rect(), st.lists(rect(), max_size=5))
    def test_never_false_positive(self, target, covers):
        """If reported covered, dense sample points must all be covered."""
        if not is_covered(target, covers):
            return
        steps = 7
        for i in range(steps + 1):
            for j in range(steps + 1):
                p = (
                    min(target.lo[0] + (target.hi[0] - target.lo[0]) * i / steps,
                        target.hi[0]),
                    min(target.lo[1] + (target.hi[1] - target.lo[1]) * j / steps,
                        target.hi[1]),
                )
                assert any(c.contains_point(p) for c in covers)

    @given(rect())
    def test_self_cover(self, target):
        assert is_covered(target, [target])
