"""Tests for the public access-method interfaces and their bookkeeping."""

import pytest

from repro.geometry.rect import Rect
from repro.pam.buddytree import BuddyTree
from repro.sam.rtree import RTree
from repro.storage.pagestore import PageStore


class TestPointAccessMethodContract:
    def test_rejects_wrong_dimensionality(self, store):
        pam = BuddyTree(store, 2)
        with pytest.raises(ValueError, match="dims"):
            pam.insert((0.5, 0.5, 0.5), 1)

    def test_rejects_out_of_cube(self, store):
        pam = BuddyTree(store, 2)
        with pytest.raises(ValueError, match="outside"):
            pam.insert((1.5, 0.5), 1)

    def test_len_counts_records(self, store):
        pam = BuddyTree(store, 2)
        assert len(pam) == 0
        pam.insert((0.1, 0.2), "a")
        pam.insert((0.3, 0.4), "b")
        assert len(pam) == 2

    def test_insert_cost_accumulates(self, store):
        # Until the first split the whole file is the pinned root page,
        # so inserts are free; afterwards each insert costs accesses.
        pam = BuddyTree(store, 2)
        pam.insert((0.1, 0.2), "a")
        assert pam.metrics().insert_cost == 0.0
        for i in range(200):
            pam.insert((i / 211.0, (i * 7 % 211) / 211.0), 100 + i)
        assert pam.metrics().insert_cost > 0

    def test_partial_match_is_degenerate_range(self, store):
        pam = BuddyTree(store, 2)
        pam.insert((0.5, 0.1), 1)
        pam.insert((0.5, 0.9), 2)
        pam.insert((0.6, 0.1), 3)
        hits = pam.partial_match({0: 0.5})
        assert sorted(rid for _, rid in hits) == [1, 2]
        hits = pam.partial_match({1: 0.1})
        assert sorted(rid for _, rid in hits) == [1, 3]

    def test_metrics_fields(self, store):
        pam = BuddyTree(store, 2)
        for i in range(200):
            pam.insert((i / 211.0, (i * 7 % 211) / 211.0), i)
        m = pam.metrics()
        assert m.records == 200
        assert 0 < m.storage_utilization <= 100.0
        assert m.data_pages > 0
        assert m.insert_cost > 0


class TestSpatialAccessMethodContract:
    def test_rejects_out_of_cube_rect(self, store):
        sam = RTree(store, 2)
        with pytest.raises(ValueError, match="outside"):
            sam.insert(Rect((0.5, 0.5), (1.5, 1.5)), 1)

    def test_rejects_wrong_dims(self, store):
        sam = RTree(store, 2)
        with pytest.raises(ValueError, match="dims"):
            sam.insert(Rect((0.1,), (0.2,)), 1)

    def test_queries_on_empty_index(self, store):
        sam = RTree(store, 2)
        assert sam.point_query((0.5, 0.5)) == []
        assert sam.intersection(Rect.unit(2)) == []
        assert sam.containment(Rect.unit(2)) == []
        assert sam.enclosure(Rect((0.4, 0.4), (0.6, 0.6))) == []
