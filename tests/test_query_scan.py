"""The columnar scan layer: caching, invalidation, and scalar/vector identity.

Covers the contracts the vectorized execution layer rests on:

* page arrays are built lazily and dropped on every ``write``/``free``,
  so mutation can never be observed through a stale array;
* workload hit-row caches (batch promotion and the current-query memo)
  invalidate with the page;
* the ``REPRO_VECTOR=0`` kill switch restores the scalar loops;
* a scalar and a vectorized pass over the whole structure matrix return
  bit-identical per-query costs, results, and store totals; and
* the differential fuzzer (inserts, deletes, queries, invariant audits)
  stays green with the columnar caches enabled — invalidation under
  arbitrary mutation sequences, checked against the brute-force oracle.
"""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.query import scan
from repro.query.bench import run_identity_matrix
from repro.query.columnar import QueryWorkload, vector_enabled
from repro.query.driver import run_query_file
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.verify.fuzz import STRUCTURES, make_ops, run_ops, structure_seed


def data_page(store, records):
    pid = store.allocate(PageKind.DATA, records)
    store.write(pid)
    return pid


class TestColumnarInvalidation:
    def test_match_records_caches_and_rebuilds_on_write(self):
        store = PageStore(vector=True)
        records = [((0.1, 0.1), "a"), ((0.6, 0.6), "b")]
        pid = data_page(store, records)
        q = Rect((0.0, 0.0), (0.5, 0.5))
        assert scan.match_records(store, pid, records, q) == [((0.1, 0.1), "a")]
        assert "pts" in store.columnar._pages[pid]
        records.append(((0.2, 0.2), "c"))
        store.write(pid)
        assert pid not in store.columnar._pages
        assert scan.match_records(store, pid, records, q) == [
            ((0.1, 0.1), "a"),
            ((0.2, 0.2), "c"),
        ]

    def test_free_drops_cached_arrays(self):
        store = PageStore(vector=True)
        values = [(Rect((0.0, 0.0), (0.4, 0.4)), 1)]
        pid = store.allocate(PageKind.DATA, values)
        store.write(pid)
        q = Rect((0.1, 0.1), (0.9, 0.9))
        assert scan.select_rect_values(store, pid, values, "isect", q) == [0]
        assert pid in store.columnar._pages
        store.free(pid)
        assert pid not in store.columnar._pages

    def test_in_place_mutation_without_write_is_caught_by_length_guard(self):
        # Every real mutation path writes the page; the length guard is the
        # defensive net if one ever didn't.
        store = PageStore(vector=True)
        records = [((0.1, 0.1), "a")]
        pid = data_page(store, records)
        q = Rect((0.0, 0.0), (1.0, 1.0))
        assert len(scan.match_records(store, pid, records, q)) == 1
        records.append(((0.2, 0.2), "b"))  # no store.write on purpose
        assert len(scan.match_records(store, pid, records, q)) == 2

    def test_workload_rows_invalidate_with_the_page(self):
        store = PageStore(vector=True)
        values = [
            (Rect((0.0, 0.0), (0.3, 0.3)), 1),
            (Rect((0.5, 0.5), (0.9, 0.9)), 2),
        ]
        pid = data_page(store, values)
        queries = [Rect((0.0, 0.0), (0.6, 0.6)), Rect((0.4, 0.4), (1.0, 1.0))]
        workload = store.columnar.begin_workload(queries)
        workload.promote_visits = 1  # promote on first visit
        workload.set_query(0)
        assert scan.select_rect_values(store, pid, values, "isect", queries[0]) == [0, 1]
        assert (pid, "vrects:isect") in workload._rows
        values.append((Rect((0.95, 0.95), (1.0, 1.0)), 3))
        store.write(pid)
        assert (pid, "vrects:isect") not in workload._rows
        workload.set_query(1)
        # The appended rect is visible immediately — stale rows are gone.
        assert scan.select_rect_values(store, pid, values, "isect", queries[1]) == [1, 2]

    def test_current_query_memo_resets_between_queries(self):
        store = PageStore(vector=True)
        values = [(Rect((0.0, 0.0), (0.3, 0.3)), 1)]
        pid = data_page(store, values)
        queries = [Rect((0.0, 0.0), (0.6, 0.6)), Rect((0.7, 0.7), (1.0, 1.0))]
        workload = store.columnar.begin_workload(queries)
        workload.set_query(0)
        assert scan.select_rect_values(store, pid, values, "isect", queries[0]) == [0]
        assert workload._cur  # memoised for intra-query revisits
        assert scan.select_rect_values(store, pid, values, "isect", queries[0]) == [0]
        workload.set_query(1)
        assert not workload._cur
        assert scan.select_rect_values(store, pid, values, "isect", queries[1]) == []


class TestWorkloadPromotion:
    def test_promotion_answers_match_single_query_rows(self):
        rng = np.random.default_rng(7)
        values = [
            (Rect(tuple(lo), tuple(lo + 0.1)), i)
            for i, lo in enumerate(rng.uniform(0, 0.9, size=(15, 2)))
        ]
        queries = [
            Rect(tuple(lo), tuple(lo + 0.3))
            for lo in rng.uniform(0, 0.7, size=(9, 2))
        ]
        cold = PageStore(vector=True)
        pid_c = data_page(cold, values)
        hot = PageStore(vector=True)
        pid_h = data_page(hot, values)
        wl = hot.columnar.begin_workload(queries)
        wl.promote_visits = 1
        for i, q in enumerate(queries):
            wl.set_query(i)
            promoted = scan.select_rect_values(hot, pid_h, values, "isect", q)
            single = scan.select_rect_values(cold, pid_c, values, "isect", q)
            assert promoted == single, i

    def test_promotion_threshold_scales_with_batch_size(self):
        assert QueryWorkload([None] * 8).promote_visits == 4
        assert QueryWorkload([None] * 160).promote_visits == 20


class TestKillSwitch:
    def test_vector_disabled_store_has_no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "0")
        assert not vector_enabled()
        store = PageStore()
        assert store.columnar is None

    def test_helpers_fall_back_to_scalar(self):
        store = PageStore(vector=False)
        records = [((0.1, 0.2), "a"), ((0.8, 0.8), "b")]
        pid = data_page(store, records)
        q = Rect((0.0, 0.0), (0.5, 0.5))
        assert scan.match_records(store, pid, records, q) == [((0.1, 0.2), "a")]
        assert scan.select_rect_values(store, pid, [], "isect", q) is None
        assert (
            scan.select_bounds(store, pid, "t", 1, lambda: (None, None), "isect", q)
            is None
        )


class TestScalarVectorIdentity:
    def test_identity_matrix_smoke(self):
        timings, mismatches = run_identity_matrix(scale=60, page_size=512, seed=99)
        assert not mismatches
        assert len(timings) == len(STRUCTURES)

    def test_driver_batches_equal_unbatched_queries(self):
        spec = STRUCTURES["GRID"]
        rng = np.random.default_rng(3)
        points = [tuple(p) for p in rng.uniform(0, 1, size=(150, 2))]
        queries = [
            Rect(tuple(lo), tuple(np.minimum(lo + 0.2, 1.0)))
            for lo in rng.uniform(0, 1, size=(12, 2))
        ]
        store = PageStore(vector=True)
        pam = spec["factory"](store)
        for rid, p in enumerate(points):
            pam.insert(p, rid)
        batched = run_query_file(pam, "range", queries, pam.range_query)
        assert store.columnar.workload is None  # deregistered afterwards
        for (cost, hits), q in zip(batched, queries):
            expected = sorted((p, i) for i, p in enumerate(points) if q.contains_point(p))
            assert sorted(hits) == expected


@pytest.mark.parametrize("name", ["GRID", "BANG", "R", "T-BANG"])
def test_fuzz_with_columnar_caches_and_audits(name):
    spec = STRUCTURES[name]
    assert vector_enabled()
    ops = make_ops(spec, 80, structure_seed(name, 31))
    failure = run_ops(spec, ops, audit_every=10)
    assert failure is None, failure
