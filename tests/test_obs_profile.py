"""Tests for cost attribution: apportionment, exactness, flamegraphs."""

import json

import pytest

from repro.obs.export import (
    profile_to_collapsed,
    profile_to_speedscope,
    summarise_touches,
)
from repro.obs.profile import UNTRACED, CostAttribution, OpCost, apportion, main
from repro.obs.runner import traced_pam_run
from repro.obs.tracer import Span, phase_of
from repro.pam.buddytree import BuddyTree
from repro.pam.twolevelgrid import TwoLevelGridFile

from tests.conftest import make_points

PAM_FACTORIES = {
    "GRID": lambda s, dims=2: TwoLevelGridFile(s, dims),
    "BUDDY": lambda s, dims=2: BuddyTree(s, dims),
}


@pytest.fixture(scope="module")
def pam_run():
    points = make_points(300, seed=3)
    results, report = traced_pam_run(PAM_FACTORIES, points, seed=19, label="unit")
    return points, results, report


class TestApportion:
    def test_shares_sum_exactly(self):
        for total, weights in (
            (1_000_000_007, [3, 1, 4, 1, 5, 9, 2, 6]),
            (7, [1, 1, 1]),
            (1, [10, 1]),
            (999, [0, 5, 0]),
        ):
            shares = apportion(total, weights)
            assert sum(shares) == total
            assert all(s >= 0 for s in shares)

    def test_proportionality(self):
        assert apportion(100, [1, 3]) == [25, 75]
        assert apportion(10, [1, 1, 1, 1, 1]) == [2, 2, 2, 2, 2]

    def test_all_zero_weights_split_evenly(self):
        assert apportion(10, [0, 0, 0, 0]) == [3, 3, 2, 2]

    def test_edge_cases(self):
        assert apportion(5, []) == []
        assert apportion(0, [1, 2]) == [0, 0]
        assert apportion(-3, [1, 2]) == [0, 0]

    def test_remainders_go_to_largest_fractions(self):
        # Entitlements 0.7, 2.1, 4.2: floors [0, 2, 4], leftover 1 goes
        # to the largest remainder (.7).
        assert apportion(7, [1, 3, 6]) == [1, 2, 4]


class TestPhases:
    def test_build_ops(self):
        for op in ("", "setup", "insert", "pack"):
            assert phase_of(op) == "build"
        for op in ("exact_match", "range", "partial", "q0"):
            assert phase_of(op) == "query"


class TestFromSpans:
    SPANS = [
        Span("A", "insert", 0, data_writes=3, dir_writes=1, free_accesses=2),
        Span("A", "insert", 1, data_writes=2),
        Span("A", "q0", 0, data_reads=5, dir_reads=1),
        Span("B", "q0", 0, data_reads=7, free_accesses=4),
    ]

    def test_groups_and_counts(self):
        att = CostAttribution.from_spans(self.SPANS)
        rows = {(r.structure, r.op): r for r in att.rows}
        insert = rows[("A", "insert")]
        assert insert.operations == 2
        assert insert.data_writes == 5
        assert insert.dir_writes == 1
        assert insert.free == 2
        assert insert.phase == "build"
        assert insert.charged == 6
        assert insert.touches == 8
        assert rows[("A", "q0")].phase == "query"

    def test_stats_equal_span_sums(self):
        att = CostAttribution.from_spans(self.SPANS)
        total = att.stats()
        assert total.data_reads == 12
        assert total.data_writes == 5
        assert total.dir_reads == 1
        assert total.dir_writes == 1

    def test_wall_apportioned_exactly(self):
        timers = {
            "A/build": 0.123456789,
            "A/queries": 0.000000001,
            "B/queries": 1.5,
        }
        att = CostAttribution.from_spans(self.SPANS, timers)
        assert att.total_wall_ns == sum(round(t * 1e9) for t in timers.values())
        per_phase = att.phase_wall_ns()
        assert per_phase["A"]["build"] == round(0.123456789 * 1e9)
        assert per_phase["B"]["query"] == round(1.5 * 1e9)

    def test_unmatched_timer_gets_untraced_row(self):
        att = CostAttribution.from_spans(self.SPANS, {"C/build": 0.25})
        untraced = [r for r in att.rows if r.op == UNTRACED]
        assert len(untraced) == 1
        assert untraced[0].structure == "C"
        assert untraced[0].wall_ns == 250_000_000
        assert att.total_wall_ns == 250_000_000

    def test_zero_second_timer_adds_nothing(self):
        att = CostAttribution.from_spans([], {"C/build": 0.0})
        assert att.rows == []


class TestFromReport:
    def test_access_totals_match_report(self, pam_run):
        _, _, report = pam_run
        att = CostAttribution.from_report(report)
        expected = {"data_reads": 0, "data_writes": 0, "dir_reads": 0, "dir_writes": 0}
        for totals in report.access_totals().values():
            for key in expected:
                expected[key] += totals[key]
        assert att.stats().as_dict() == expected

    def test_wall_total_matches_report_timers(self, pam_run):
        _, _, report = pam_run
        att = CostAttribution.from_report(report)
        expected = 0
        for entry in report.structures.values():
            expected += round(entry["build"]["seconds"] * 1e9)
            expected += round(
                sum(q["seconds"] for q in entry["queries"].values()) * 1e9
            )
        assert att.total_wall_ns == expected

    def test_survives_save_load_round_trip(self, pam_run, tmp_path):
        _, _, report = pam_run
        att = CostAttribution.from_report(report)
        saved = report.save(tmp_path / "report.json")
        reloaded = CostAttribution.from_report(type(report).load(saved))
        assert reloaded.as_dict() == att.as_dict()

    def test_legacy_report_degrades_to_untraced(self, pam_run):
        _, _, report = pam_run
        stripped = type(report).from_dict(json.loads(json.dumps(report.to_dict())))
        for entry in stripped.structures.values():
            entry["build"].pop("ops", None)
            for q in entry["queries"].values():
                q.pop("touches", None)
        att = CostAttribution.from_report(stripped)
        assert all(r.op == UNTRACED for r in att.rows)
        assert att.total_wall_ns == CostAttribution.from_report(report).total_wall_ns


class TestViews:
    def make_attribution(self):
        return CostAttribution.from_spans(
            TestFromSpans.SPANS, {"A/build": 0.1, "C/build": 0.2}
        )

    def test_heatmap_skips_untraced(self):
        heat = self.make_attribution().heatmap()
        assert "C" not in heat
        assert heat["A"]["insert"] == {"charged": 6, "free": 2}
        assert heat["B"]["q0"] == {"charged": 7, "free": 4}

    def test_stacks_units_and_zero_dropping(self):
        att = self.make_attribution()
        accesses = dict(att.stacks("accesses"))
        assert accesses[("A", "build", "insert")] == 6
        assert ("C", "build", UNTRACED) not in accesses  # zero charged
        wall = dict(att.stacks("wall"))
        assert wall[("C", "build", UNTRACED)] == 200_000_000
        with pytest.raises(ValueError, match="unit"):
            att.stacks("bogus")

    def test_render_text_and_markdown(self):
        att = self.make_attribution()
        text = att.render()
        assert "TOTAL" in text and "(untraced)" in text
        md = att.render(fmt="markdown")
        assert md.startswith("| structure | phase | op |")
        heat_md = att.render_heatmap(fmt="markdown")
        assert "| free share |" in heat_md


class TestExporters:
    def test_speedscope_document(self):
        att = CostAttribution.from_spans(TestFromSpans.SPANS, {"A/build": 0.1})
        doc = profile_to_speedscope(att, name="unit", unit="accesses")
        profile = doc["profiles"][0]
        assert profile["endValue"] == sum(profile["weights"])
        assert len(profile["samples"]) == len(profile["weights"])
        frames = doc["shared"]["frames"]
        for sample in profile["samples"]:
            assert all(0 <= i < len(frames) for i in sample)
        labels = {f["name"] for f in frames}
        assert {"A", "B", "build", "query", "insert", "q0"} <= labels

    def test_collapsed_lines(self):
        att = CostAttribution.from_spans(TestFromSpans.SPANS)
        text = profile_to_collapsed(att, unit="accesses")
        assert text.endswith("\n")
        lines = dict(
            line.rsplit(" ", 1) for line in text.splitlines()
        )
        assert lines["A;build;insert"] == "6"
        assert lines["B;query;q0"] == "7"

    def test_empty_attribution(self):
        att = CostAttribution()
        assert profile_to_collapsed(att) == ""
        doc = profile_to_speedscope(att, name="empty")
        assert doc["profiles"][0]["endValue"] == 0

    def test_summarise_touches_matches_attribution(self):
        touches = summarise_touches(TestFromSpans.SPANS)
        assert touches["A"]["insert"] == {
            "operations": 2,
            "data_reads": 0,
            "data_writes": 5,
            "dir_reads": 0,
            "dir_writes": 1,
            "charged": 6,
            "free": 2,
        }


class TestCli:
    def test_profile_report_and_flamegraphs(self, pam_run, tmp_path, capsys):
        _, _, report = pam_run
        saved = report.save(tmp_path / "report.json")
        speedscope = tmp_path / "out.speedscope.json"
        collapsed = tmp_path / "out.collapsed.txt"
        code = main(
            [
                str(saved),
                "--heatmap",
                "--speedscope",
                str(speedscope),
                "--collapsed",
                str(collapsed),
                "--unit",
                "wall",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "free share" in out
        doc = json.loads(speedscope.read_text())
        profile = doc["profiles"][0]
        assert profile["unit"] == "nanoseconds"
        assert profile["endValue"] == sum(profile["weights"])
        assert collapsed.read_text().strip()

    def test_missing_report_errors(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestParallelIdentity:
    """Attribution is bit-identical at any worker count (ISSUE acceptance)."""

    @staticmethod
    def run(workers: int):
        from repro.parallel.runner import run_pam_file

        return run_pam_file("uniform", scale=200, workers=workers, cache=None)

    def test_workers_do_not_change_attribution(self):
        serial = self.run(1)
        parallel = self.run(2)
        att_serial = CostAttribution.from_spans(serial.spans, serial.timers)
        att_parallel = CostAttribution.from_spans(parallel.spans, parallel.timers)

        # Access attribution is identical; only wall times may differ.
        strip = lambda rows: [  # noqa: E731
            {k: v for k, v in r.as_dict().items() if k != "wall_ns"}
            for r in rows
        ]
        assert strip(att_serial.rows) == strip(att_parallel.rows)
        assert att_serial.heatmap() == att_parallel.heatmap()

        # Both are exact against their own timers and totals.
        for att, outcome in ((att_serial, serial), (att_parallel, parallel)):
            assert att.total_wall_ns == sum(
                round(t * 1e9) for t in outcome.timers.values()
            )
            expected = {
                "data_reads": 0,
                "data_writes": 0,
                "dir_reads": 0,
                "dir_writes": 0,
            }
            for stats in outcome.totals.values():
                for key in expected:
                    expected[key] += getattr(stats, key)
            assert att.stats().as_dict() == expected
