"""Consistency of the transcribed paper numbers (repro.bench.paper)."""

from repro.bench.paper import (
    PAM_QUERY_AVERAGE_PAPER,
    PAM_SUMMARY_PAPER,
    PAM_TABLE_PAPER,
    SAM_SUMMARY_PAPER,
    SAM_TABLE_PAPER,
)

PAM_NAMES = {"HB", "BANG", "GRID", "BUDDY", "BUDDY+"}
SAM_NAMES = {"R-Tree", "BANG", "BUDDY", "PLOP"}


class TestPaperTables:
    def test_pam_tables_cover_all_structures(self):
        for distribution, rows in PAM_TABLE_PAPER.items():
            assert set(rows) == PAM_NAMES, distribution
            for name, row in rows.items():
                assert len(row) == 9, (distribution, name)

    def test_grid_rows_are_the_measuring_stick(self):
        for distribution, rows in PAM_TABLE_PAPER.items():
            grid = rows["GRID"]
            if grid[0] is not None:
                assert grid[:5] == (100.0,) * 5, distribution

    def test_query_average_table_is_complete(self):
        for distribution, rows in PAM_QUERY_AVERAGE_PAPER.items():
            assert set(rows) == PAM_NAMES | {"BANG*"}, distribution
            assert rows["GRID"] == 100.0

    def test_table_5_1_headline(self):
        """The transcription carries the paper's conclusion."""
        averages = {name: row[0] for name, row in PAM_SUMMARY_PAPER.items()}
        assert min(averages, key=averages.get) == "BUDDY+"
        assert averages["BUDDY"] <= 0.81 * averages["HB"]  # ">= 20 % better"

    def test_sam_tables_cover_all_structures(self):
        for distribution, rows in SAM_TABLE_PAPER.items():
            assert set(rows) == SAM_NAMES, distribution
            for name, row in rows.items():
                assert len(row) == 4

    def test_sam_containment_identities(self):
        """R-tree and PLOP containment equal their intersection cost."""
        for rows in SAM_TABLE_PAPER.values():
            for name in ("R-Tree", "PLOP"):
                point, intersect, _, contain = rows[name]
                assert contain == intersect, name

    def test_sam_summary_normalised(self):
        assert SAM_SUMMARY_PAPER["R-Tree"][:4] == (100.0,) * 4
