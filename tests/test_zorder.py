"""Tests for Morton codes and the redundant z-region decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import blocks
from repro.geometry.rect import Rect
from repro.geometry.zorder import decompose_rect, z_interval, z_value

unit_floats = st.floats(0.0, 1.0, exclude_max=True, allow_nan=False)


class TestZValue:
    def test_origin_is_zero(self):
        assert z_value((0.0, 0.0), 2) == 0

    def test_max_corner(self):
        assert z_value((1.0, 1.0), 2, bits_per_axis=4) == 2**8 - 1

    def test_first_bit_is_axis_zero(self):
        # Upper half of axis 0 sets the most significant bit.
        assert z_value((0.5, 0.0), 2, bits_per_axis=2) == 0b1000
        assert z_value((0.0, 0.5), 2, bits_per_axis=2) == 0b0100

    def test_out_of_cube_raises(self):
        with pytest.raises(ValueError):
            z_value((-0.5, 0.0), 2)

    @given(unit_floats, unit_floats, st.integers(1, 12))
    def test_matches_block_addressing(self, x, y, bpa):
        """The z-value's bits are exactly the cyclic block address."""
        z = z_value((x, y), 2, bits_per_axis=bpa)
        bits = blocks.bits_of_point((x, y), 2, 2 * bpa)
        expected = 0
        for bit in bits:
            expected = (expected << 1) | bit
        assert z == expected

    @given(
        st.lists(unit_floats, min_size=1, max_size=4),
        st.integers(1, 24),
    )
    def test_lookup_table_matches_bitwise_reference(self, coords, bpa):
        """The 8-bit spread tables replicate the naive interleaving loop."""
        dims = len(coords)
        scale = 1 << bpa
        quantized = [min(int(c * scale), scale - 1) for c in coords]
        expected = 0
        for k in range(bpa):  # MSB first, cyclic over axes
            for axis in range(dims):
                expected = (expected << 1) | (
                    (quantized[axis] >> (bpa - 1 - k)) & 1
                )
        assert z_value(coords, dims, bits_per_axis=bpa) == expected


class TestZInterval:
    def test_root_interval(self):
        assert z_interval((), 2, bits_per_axis=4) == (0, 256)

    def test_halving(self):
        lo0, hi0 = z_interval((0,), 2, bits_per_axis=4)
        lo1, hi1 = z_interval((1,), 2, bits_per_axis=4)
        assert (lo0, hi0, lo1, hi1) == (0, 128, 128, 256)

    def test_too_deep_raises(self):
        with pytest.raises(ValueError):
            z_interval((0,) * 9, 2, bits_per_axis=4)

    @given(unit_floats, unit_floats, st.lists(st.integers(0, 1), max_size=10).map(tuple))
    def test_point_in_block_iff_z_in_interval(self, x, y, bits):
        z = z_value((x, y), 2, bits_per_axis=8)
        lo, hi = z_interval(bits, 2, bits_per_axis=8)
        point_bits = blocks.bits_of_point((x, y), 2, len(bits))
        assert (lo <= z < hi) == (point_bits == bits)


class TestDecomposeRect:
    def test_single_region_is_min_block(self):
        r = Rect((0.1, 0.1), (0.2, 0.2))
        cover = decompose_rect(r, 2, max_regions=1)
        assert cover == [blocks.min_enclosing_block(r, 2, 20)]

    def test_budget_respected(self):
        r = Rect((0.05, 0.05), (0.95, 0.95))
        for budget in (1, 2, 4, 8, 16):
            assert len(decompose_rect(r, 2, max_regions=budget)) <= budget

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            decompose_rect(Rect.unit(2), 2, max_regions=0)

    def test_refinement_reduces_overshoot(self):
        r = Rect((0.3, 0.3), (0.55, 0.55))

        def covered_area(cover):
            return sum(blocks.block_rect(b, 2).area() for b in cover)

        coarse = covered_area(decompose_rect(r, 2, max_regions=1))
        fine = covered_area(decompose_rect(r, 2, max_regions=16))
        assert fine <= coarse

    @given(
        unit_floats, unit_floats, unit_floats, unit_floats, st.integers(1, 12)
    )
    def test_cover_is_complete(self, a, b, c, d, budget):
        r = Rect((min(a, b), min(c, d)), (max(a, b), max(c, d)))
        cover = decompose_rect(r, 2, max_regions=budget)
        union_area_bound = sum(blocks.block_rect(bits, 2).area() for bits in cover)
        assert union_area_bound >= r.area() * 0.999999
        # Every sampled point of r lies in some cover block.
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            for u in (0.0, 0.5, 1.0):
                p = (
                    min(r.lo[0] + t * (r.hi[0] - r.lo[0]), 0.999999),
                    min(r.lo[1] + u * (r.hi[1] - r.lo[1]), 0.999999),
                )
                assert any(
                    blocks.block_rect(bits, 2).contains_point(p) for bits in cover
                )
