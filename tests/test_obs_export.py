"""Tests for the exporters: atomic trace sink, touch summaries, renders."""

import json

import pytest

from repro.obs.export import (
    JsonlTraceSink,
    build_run_report,
    summarise_touches,
    validate_run_report,
)
from repro.obs.report import main as report_main
from repro.obs.runner import traced_pam_run
from repro.obs.tracer import Span, Tracer
from repro.pam.twolevelgrid import TwoLevelGridFile

from tests.conftest import make_points

PAM_FACTORIES = {"GRID": lambda s, dims=2: TwoLevelGridFile(s, dims)}


@pytest.fixture(scope="module")
def pam_report():
    points = make_points(200, seed=5)
    _, report = traced_pam_run(PAM_FACTORIES, points, seed=23, label="unit")
    return report


class TestJsonlTraceSinkAtomicity:
    def make_span(self, i=0):
        return Span("A", "insert", i, data_writes=1)

    def test_nothing_visible_until_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.write_span(self.make_span())
        assert not path.exists()  # still streaming to the temp file
        assert any(tmp_path.glob("trace.jsonl.*.tmp"))
        sink.close()
        assert path.exists()
        assert not any(tmp_path.glob("trace.jsonl.*.tmp"))
        assert json.loads(path.read_text().splitlines()[0])["op"] == "insert"

    def test_abort_discards_temp(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.write_span(self.make_span())
        sink.abort()
        assert not path.exists()
        assert not any(tmp_path.glob("trace.jsonl.*.tmp"))

    def test_exception_in_with_block_preserves_previous_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write_span(self.make_span())
        previous = path.read_text()
        with pytest.raises(RuntimeError):
            with JsonlTraceSink(path) as sink:
                sink.write_span(self.make_span(1))
                sink.write_span(self.make_span(2))
                raise RuntimeError("interrupted mid-run")
        assert path.read_text() == previous  # torn run never replaced it
        assert not any(tmp_path.glob("trace.jsonl.*.tmp"))

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "trace.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write_span(self.make_span())

    def test_counts_spans(self, tmp_path):
        with JsonlTraceSink(tmp_path / "trace.jsonl") as sink:
            sink.write_span(self.make_span(0))
            sink.write_span(self.make_span(1))
            assert sink.spans_written == 2

    def test_works_as_tracer_sink(self, tmp_path, store):
        from repro.storage.page import PageKind

        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            tracer = Tracer(record_events=True, sink=sink).attach(store)
            tracer.set_context(structure="GRID", op="insert")
            pid = store.allocate(PageKind.DATA, "x")
            for _ in range(5):
                store.begin_operation()
                store.read(pid)
            tracer.finish()
            assert not path.exists()  # atomic: nothing visible inside the run
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert all(json.loads(line)["structure"] == "GRID" for line in lines)


class TestTouchSummaries:
    def test_report_carries_build_ops_and_query_touches(self, pam_report):
        entry = pam_report.structures["GRID"]
        ops = entry["build"]["ops"]
        assert "insert" in ops
        assert ops["insert"]["operations"] == 200
        assert ops["insert"]["charged"] == sum(
            ops["insert"][k]
            for k in ("data_reads", "data_writes", "dir_reads", "dir_writes")
        )
        for q in entry["queries"].values():
            assert set(q["touches"]) == {
                "operations",
                "data_reads",
                "data_writes",
                "dir_reads",
                "dir_writes",
                "charged",
                "free",
            }

    def test_summarise_touches_totals_match_spans(self):
        spans = [
            Span("A", "q", 0, data_reads=2, free_accesses=1),
            Span("A", "q", 1, dir_reads=3),
        ]
        touches = summarise_touches(spans)
        assert touches["A"]["q"]["charged"] == 5
        assert touches["A"]["q"]["free"] == 1
        assert touches["A"]["q"]["operations"] == 2

    def test_round_trip_still_validates(self, pam_report, tmp_path):
        saved = pam_report.save(tmp_path / "r.json")
        assert validate_run_report(json.loads(saved.read_text())) == []

    def test_build_report_without_timers(self):
        report = build_run_report(
            label="empty",
            kind="pam",
            scale=0,
            page_size=512,
            seed=None,
            results={},
            totals={},
            spans=[],
        )
        assert report.structures == {}


class TestMarkdownRender:
    def test_render_markdown_table(self, pam_report):
        md = pam_report.render(fmt="markdown")
        assert md.splitlines()[0].startswith("**")
        assert "| structure | op |" in md
        assert "| GRID |" in md

    def test_render_text_unchanged_default(self, pam_report):
        assert pam_report.render() == pam_report.render(fmt="text")
        assert "GRID" in pam_report.render()

    def test_cli_format_markdown(self, pam_report, tmp_path, capsys):
        saved = pam_report.save(tmp_path / "r.json")
        assert report_main([str(saved), "--format", "markdown"]) == 0
        assert "| structure | op |" in capsys.readouterr().out

    def test_cli_diff_markdown(self, pam_report, tmp_path, capsys):
        saved = pam_report.save(tmp_path / "r.json")
        code = report_main(
            [str(saved), str(saved), "--format", "markdown", "--fail-threshold", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "| structure | query | old | new | delta |" in out
        assert "REGRESSION" not in out
