"""Tests for the one-level grid file and its grid-layer machinery."""

import pytest

from repro.geometry.rect import Rect
from repro.pam.gridfile import GridFile, _GridLayer
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


class TestGridLayer:
    def layer(self):
        layer = _GridLayer(Rect.unit(2))
        layer.install_root_payload("p0")
        return layer

    def test_initial_state(self):
        layer = self.layer()
        assert layer.total_cells() == 1
        assert layer.payload_of_point((0.3, 0.7)) == "p0"
        assert layer.box_rect("p0") == Rect.unit(2)

    def test_refine_remaps_cells_and_boxes(self):
        layer = self.layer()
        pos = layer.refine(0, 0.5)
        assert pos == 1
        assert layer.ncells(0) == 2
        assert layer.payload_of_point((0.1, 0.1)) == "p0"
        assert layer.payload_of_point((0.9, 0.9)) == "p0"
        assert layer.box_rect("p0") == Rect.unit(2)

    def test_refine_existing_boundary_is_noop(self):
        layer = self.layer()
        layer.refine(0, 0.5)
        cells_before = dict(layer.cells)
        assert layer.refine(0, 0.5) == 1
        assert layer.cells == cells_before

    def test_refine_outside_region_raises(self):
        layer = self.layer()
        with pytest.raises(ValueError):
            layer.refine(0, 1.5)

    def test_split_payload_separates_points(self):
        layer = self.layer()
        points = [(0.1, 0.5), (0.9, 0.5)]
        axis, cut = layer.split_payload("p0", "p1", points)
        assert axis == 0
        assert 0.1 < cut <= 0.9
        assert layer.payload_of_point((0.1, 0.5)) == "p0"
        assert layer.payload_of_point((0.9, 0.5)) == "p1"

    def test_split_payload_refines_crowded_cell(self):
        layer = self.layer()
        points = [(0.5001, 0.5001), (0.5002, 0.5002)]
        layer.split_payload("p0", "p1", points)
        # Points are eventually separated even though they share all
        # initial cells.
        assert layer.payload_of_point(points[0]) != layer.payload_of_point(points[1])

    def test_boxes_partition_all_cells(self):
        layer = self.layer()
        layer.split_payload("p0", "p1", [(0.2, 0.2), (0.8, 0.8)])
        layer.split_payload("p0", "p2", [(0.1, 0.1), (0.3, 0.9)])
        covered = {}
        for pid, (lo, hi) in layer.boxes.items():
            idx = list(lo)
            while True:
                assert tuple(idx) not in covered, "boxes overlap"
                covered[tuple(idx)] = pid
                axis = 0
                while axis < layer.dims:
                    idx[axis] += 1
                    if idx[axis] <= hi[axis]:
                        break
                    idx[axis] = lo[axis]
                    axis += 1
                if axis == layer.dims:
                    break
        assert covered == layer.cells

    def test_merge_candidates_and_merge(self):
        layer = self.layer()
        layer.split_payload("p0", "p1", [(0.1, 0.5), (0.9, 0.5)])
        assert layer.merge_candidates("p0") == ["p1"]
        layer.merge_payloads("p0", "p1")
        assert layer.payload_of_point((0.9, 0.5)) == "p0"
        assert "p1" not in layer.boxes


class TestGridFile:
    def test_correct_on_uniform(self, store):
        points = make_points(800)
        gf = GridFile(store, 2)
        for i, p in enumerate(points):
            gf.insert(p, i)
        check_pam_against_oracle(gf, points, STANDARD_QUERIES)

    def test_correct_on_clusters(self, store):
        points = make_clustered_points(600, seed=3)
        gf = GridFile(store, 2)
        for i, p in enumerate(points):
            gf.insert(p, i)
        check_pam_against_oracle(gf, points, STANDARD_QUERIES)

    def test_capacity_never_exceeded(self, store):
        gf = GridFile(store, 2)
        points = make_points(500, seed=9)
        for i, p in enumerate(points):
            gf.insert(p, i)
        from repro.storage.page import PageKind

        for pid in store.page_ids():
            if store.kind(pid) is PageKind.DATA:
                assert len(store._objects[pid].records) <= gf.record_capacity

    def test_exact_match_costs_two_accesses(self, store):
        gf = GridFile(store, 2)
        points = make_points(400, seed=4)
        for i, p in enumerate(points):
            gf.insert(p, i)
        # Query a point far from the recently buffered path.
        store.begin_operation()
        store.begin_operation()
        before = store.stats.total
        gf.exact_match(points[0])
        assert store.stats.total - before <= 2

    def test_delete_and_merge(self, store):
        gf = GridFile(store, 2)
        points = make_points(300, seed=5)
        for i, p in enumerate(points):
            gf.insert(p, i)
        for i, p in enumerate(points[:250]):
            assert gf.delete(p, i)
        assert len(gf) == 50
        remaining = points[250:]
        got = sorted(gf.range_query(Rect.unit(2)))
        assert got == sorted((p, i + 250) for i, p in enumerate(remaining))

    def test_delete_missing_returns_false(self, store):
        gf = GridFile(store, 2)
        gf.insert((0.5, 0.5), 1)
        assert not gf.delete((0.5, 0.5), 2)  # wrong rid
        assert not gf.delete((0.1, 0.1), 1)  # wrong point
        assert gf.delete((0.5, 0.5), 1)

    def test_directory_grows_superlinearly_on_diagonal(self):
        """The paper's criticism: skewed data blows up the directory."""

        def dir_cells(points):
            gf = GridFile(PageStore(), 2)
            for i, p in enumerate(points):
                gf.insert(p, i)
            return gf._layer.total_cells()

        diag = [(i / 600.0, i / 600.0) for i in range(600)]
        unif = make_points(600, seed=11)
        assert dir_cells(diag) > 4 * dir_cells(unif)
