"""Tests for the experiment driver and the standardised testbed."""

import pytest

from repro.core.comparison import (
    PAM_QUERY_TYPES,
    SAM_QUERY_TYPES,
    MethodResult,
    build_pam,
    build_sam,
    measure,
    normalise,
    run_pam_experiment,
    run_sam_experiment,
)
from repro.core.stats import BuildMetrics
from repro.core.testbed import (
    standard_pam_factories,
    standard_sam_factories,
)
from repro.core.testbed import testbed_scale as scale_from_env
from repro.core.testbed import testbed_workers as workers_from_env
from repro.pam.buddytree import BuddyTree
from repro.sam.rtree import RTree
from repro.storage.pagestore import PageStore
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file


class TestMeasure:
    def test_measure_returns_delta_and_result(self):
        store = PageStore()
        pam = BuddyTree(store, 2)
        for i in range(300):
            pam.insert((i / 307.0, (i * 11 % 307) / 307.0), i)
        from repro.geometry.rect import Rect

        cost, hits = measure(store, lambda: pam.range_query(Rect.unit(2)))
        assert cost > 0
        assert len(hits) == 300


class TestDrivers:
    def test_pam_experiment_end_to_end(self):
        points = generate_point_file("uniform", 800)
        results = run_pam_experiment(
            {"BUDDY": lambda store, dims=2: BuddyTree(store, dims)}, points
        )
        result = results["BUDDY"]
        assert set(result.query_costs) == set(PAM_QUERY_TYPES)
        assert all(cost >= 0 for cost in result.query_costs.values())
        assert result.metrics.records == 800
        assert result.query_average == pytest.approx(
            sum(result.query_costs.values()) / 5
        )

    def test_sam_experiment_end_to_end(self):
        rects = generate_rect_file("uniform_small", 400)
        results = run_sam_experiment(
            {"R-Tree": lambda store, dims=2: RTree(store, dims)}, rects
        )
        result = results["R-Tree"]
        assert set(result.query_costs) == set(SAM_QUERY_TYPES)
        assert result.metrics.records == 400

    def test_same_points_same_hits(self):
        """Every structure must return identical result counts."""
        points = generate_point_file("cluster", 700)
        results = run_pam_experiment(standard_pam_factories(), points)
        baselines = results["GRID"].query_results
        for name, result in results.items():
            assert result.query_results == baselines, name

    def test_sam_hits_agree(self):
        rects = generate_rect_file("gaussian_square", 350)
        results = run_sam_experiment(standard_sam_factories(), rects)
        baselines = results["R-Tree"].query_results
        for name, result in results.items():
            assert result.query_results == baselines, name

    def test_build_helpers(self):
        pam = build_pam(
            lambda store, dims=2: BuddyTree(store, dims),
            generate_point_file("uniform", 100),
        )
        assert len(pam) == 100
        sam = build_sam(
            lambda store, dims=2: RTree(store, dims),
            generate_rect_file("uniform_small", 100),
        )
        assert len(sam) == 100


def _result(name: str, costs: dict[str, float]) -> MethodResult:
    """A MethodResult with synthetic query costs and dummy metrics."""
    metrics = BuildMetrics(
        storage_utilization=0.0,
        dir_data_ratio=0.0,
        insert_cost=0.0,
        height=0,
        records=0,
        data_pages=0,
        directory_pages=0,
        pinned_pages=0,
    )
    return MethodResult(name, metrics, query_costs=dict(costs))


class TestMethodResult:
    def test_query_average_is_unweighted_mean(self):
        result = _result("X", {"a": 2.0, "b": 4.0, "c": 9.0})
        assert result.query_average == pytest.approx(5.0)

    def test_query_average_single_type(self):
        assert _result("X", {"point": 7.5}).query_average == pytest.approx(7.5)


class TestNormalise:
    def test_stick_is_100(self):
        points = generate_point_file("uniform", 600)
        results = run_pam_experiment(standard_pam_factories(), points)
        norm = normalise(results, "GRID")
        for label in PAM_QUERY_TYPES:
            assert norm["GRID"][label] == pytest.approx(100.0)
        for name in results:
            assert set(norm[name]) == set(PAM_QUERY_TYPES)

    def test_zero_cost_reference_rows_stay_finite(self):
        """A free query type in the measuring stick maps to 0, not inf."""
        results = {
            "STICK": _result("STICK", {"pm_x": 0.0, "pm_y": 4.0}),
            "OTHER": _result("OTHER", {"pm_x": 3.0, "pm_y": 2.0}),
        }
        norm = normalise(results, "STICK")
        assert norm["STICK"]["pm_x"] == 0.0
        assert norm["OTHER"]["pm_x"] == 0.0
        assert norm["OTHER"]["pm_y"] == pytest.approx(50.0)

    def test_all_zero_stick(self):
        results = {"STICK": _result("STICK", {"a": 0.0})}
        assert normalise(results, "STICK") == {"STICK": {"a": 0.0}}


class TestTestbed:
    def test_factory_names(self):
        assert set(standard_pam_factories()) == {"HB", "BANG", "BANG*", "GRID", "BUDDY"}
        assert set(standard_sam_factories()) == {"R-Tree", "BANG", "BUDDY", "PLOP"}

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "4321")
        assert scale_from_env() == 4321
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert scale_from_env() == 10_000

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "4")
        assert workers_from_env() == 4
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "garbage")
        assert workers_from_env() == 1
        monkeypatch.delenv("REPRO_BENCH_WORKERS")
        assert workers_from_env() == 1
