"""Tests for the BANG file (nested block regions, backtracking search)."""

from repro.geometry import blocks
from repro.geometry.rect import Rect
from repro.pam.bang import BangFile
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points, **kwargs):
    bang = BangFile(PageStore(), 2, **kwargs)
    for i, p in enumerate(points):
        bang.insert(p, i)
    return bang


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(800, seed=1)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal(self):
        points = [(i / 700.0, i / 700.0) for i in range(700)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_spanning_variant_same_answers(self):
        points = make_clustered_points(600, seed=2)
        plain = build(points)
        spanning = build(points, spanning=True)
        for rect in STANDARD_QUERIES:
            assert sorted(plain.range_query(rect)) == sorted(
                spanning.range_query(rect)
            )
        for p in points[::71]:
            assert plain.exact_match(p) == spanning.exact_match(p)

    def test_variable_length_variant_same_answers(self):
        points = make_points(600, seed=3)
        star = build(points, variable_length_entries=True)
        check_pam_against_oracle(star, points, STANDARD_QUERIES)


class TestNesting:
    def test_records_live_in_smallest_enclosing_block(self):
        bang = build(make_clustered_points(900, seed=4))
        store = bang.store
        for pid in store.page_ids():
            if store.kind(pid) is not PageKind.DATA:
                continue
            page = store._objects[pid]
            for point, _ in page.records:
                point_bits = bang._point_bits(point)
                best = max(
                    (b for b in bang._data_blocks if blocks.is_prefix(b, point_bits)),
                    key=len,
                )
                assert bang._data_blocks[best] == pid

    def test_data_blocks_are_distinct(self):
        bang = build(make_points(1200, seed=5))
        assert len(set(bang._data_blocks)) == len(bang._data_blocks)

    def test_nesting_occurs_on_clustered_data(self):
        """Clusters force proper nesting (a block inside another block)."""
        bang = build(make_clustered_points(1200, seed=6))
        blocks_list = sorted(bang._data_blocks, key=len)
        nested = any(
            blocks.is_prefix(a, b) and a != b
            for i, a in enumerate(blocks_list)
            for b in blocks_list[i + 1 :]
        )
        assert nested

    def test_directory_is_balanced(self):
        bang = build(make_points(1500, seed=7))

        def leaf_depths(pid, depth):
            node = bang.store._objects[pid]
            if node.is_leaf:
                return {depth}
            out = set()
            for e in node.entries:
                out |= leaf_depths(e.pid, depth + 1)
            return out

        assert len(leaf_depths(bang._root_pid, 1)) == 1


class TestNonSpanningPenalty:
    def test_exact_match_can_exceed_height(self):
        """Without the spanning property the probe may touch extra pages."""
        points = make_clustered_points(2000, seed=8)
        bang = build(points)
        worst = 0
        for p in points[::191]:
            bang.store.begin_operation()
            bang.store.begin_operation()
            before = bang.store.stats.total
            bang.exact_match(p)
            worst = max(worst, bang.store.stats.total - before)
        # Height + 1 would be a perfect single path (dir levels + data page,
        # root pinned); the multi-branch probe can exceed it.
        assert worst >= bang.directory_height + 1

    def test_spanning_charges_single_path(self):
        points = make_clustered_points(2000, seed=8)
        bang = build(points, spanning=True)
        for p in points[::397]:
            bang.store.begin_operation()
            bang.store.begin_operation()
            before = bang.store.stats.total
            bang.exact_match(p)
            cost = bang.store.stats.total - before
            assert cost <= bang.directory_height + 1

    def test_variable_length_entries_use_fewer_directory_pages(self):
        points = make_points(3000, seed=9)
        plain = build(points)
        star = build(points, variable_length_entries=True)
        assert (
            star.store.count_pages(PageKind.DIRECTORY)
            <= plain.store.count_pages(PageKind.DIRECTORY)
        )


class TestCapacities:
    def test_data_capacity_never_exceeded(self):
        bang = build(make_points(800, seed=10))
        for pid in bang.store.page_ids():
            if bang.store.kind(pid) is PageKind.DATA:
                assert len(bang.store._objects[pid].records) <= bang.record_capacity

    def test_directory_nodes_fit_their_page(self):
        bang = build(make_points(2000, seed=11))
        for pid in bang.store.page_ids():
            if bang.store.kind(pid) is PageKind.DIRECTORY:
                node = bang.store._objects[pid]
                assert bang._node_bytes(node) <= bang._dir_payload


class TestMinimalRegions:
    """The §9 extension: BUDDY's empty-space concept grafted onto BANG."""

    def test_correctness(self):
        points = make_clustered_points(900, seed=20)
        bang = build(points, minimal_regions=True)
        check_pam_against_oracle(bang, points, STANDARD_QUERIES)

    def test_correctness_diagonal(self):
        points = [(i / 600.0, i / 600.0) for i in range(600)]
        bang = build(points, minimal_regions=True)
        check_pam_against_oracle(bang, points, STANDARD_QUERIES)

    def test_combines_with_variable_length_entries(self):
        points = make_points(700, seed=21)
        bang = build(points, minimal_regions=True, variable_length_entries=True)
        check_pam_against_oracle(bang, points, STANDARD_QUERIES)

    def test_regions_bound_their_records(self):
        bang = build(make_clustered_points(800, seed=22), minimal_regions=True)

        def walk(pid):
            node = bang.store._objects[pid]
            if node.is_leaf:
                for entry in node.entries:
                    page = bang.store._objects[entry.pid]
                    for point, _ in page.records:
                        assert entry.mbr is not None
                        assert entry.mbr.contains_point(point)
            else:
                for entry in node.entries:
                    child = bang.store._objects[entry.pid]
                    for sub in child.entries:
                        if sub.mbr is not None:
                            assert entry.mbr is not None
                            assert entry.mbr.contains_rect(sub.mbr)
                    walk(entry.pid)

        walk(bang._root_pid)

    def test_empty_space_queries_prune_data_reads(self):
        points = make_clustered_points(900, seed=23)
        empty = Rect((0.001, 0.001), (0.004, 0.004))
        points = [p for p in points if not empty.contains_point(p)]
        plain = build(points)
        minimal = build(points, minimal_regions=True)

        def cost(bang):
            bang.store.begin_operation()
            bang.store.begin_operation()
            before = bang.store.stats.data_reads
            assert bang.range_query(empty) == []
            return bang.store.stats.data_reads - before

        assert cost(minimal) <= cost(plain)

    def test_entry_size_cost(self):
        plain = build(make_points(2000, seed=24))
        minimal = build(make_points(2000, seed=24), minimal_regions=True)
        from repro.storage.page import PageKind

        assert minimal.store.count_pages(PageKind.DIRECTORY) >= plain.store.count_pages(
            PageKind.DIRECTORY
        )
