"""Empirical verification of Table 1 (the paper's PAM classification).

The *complete* axis is observable: a query in provably empty space
touches at least one data page iff the structure partitions the whole
space.  The *disjoint* axis is observable for the twin grid file (the
one non-disjoint class): the two files' regions overlay each other.
"""

import pytest

from repro import (
    BangFile,
    BuddyTree,
    GridFile,
    HBTree,
    KdBTree,
    MultilevelGridFile,
    PlopHashing,
    QuantileHashing,
    TwinGridFile,
    TwoLevelGridFile,
    ZOrderBTree,
)
from repro.core.taxonomy import TABLE_1, classify
from repro.geometry.rect import Rect
from repro.storage.pagestore import PageStore
from tests.conftest import make_clustered_points

FACTORIES = {
    "KdBTree": KdBTree,
    "GridFile": GridFile,
    "TwoLevelGridFile": TwoLevelGridFile,
    "PlopHashing": PlopHashing,
    "QuantileHashing": QuantileHashing,
    "TwinGridFile": TwinGridFile,
    "BuddyTree": BuddyTree,
    "MultilevelGridFile": MultilevelGridFile,
    "ZOrderBTree": ZOrderBTree,
    "BangFile": BangFile,
    "HBTree": HBTree,
}

EMPTY_CORNER = Rect((0.0, 0.0), (0.01, 0.01))


def build(name):
    points = make_clustered_points(900, seed=42)
    points = [p for p in points if not EMPTY_CORNER.contains_point(p)]
    pam = FACTORIES[name](PageStore(), 2)
    for i, p in enumerate(points):
        pam.insert(p, i)
    return pam


class TestTable1:
    def test_every_implemented_structure_is_classified(self):
        assert {row.name for row in TABLE_1} == set(FACTORIES)

    def test_class_properties_match_definition(self):
        definitions = {
            "C1": (True, True, True),
            "C2": (True, True, False),
            "C3": (True, False, True),
            "C4": (False, True, True),
        }
        for row in TABLE_1:
            assert (row.rectangular, row.complete, row.disjoint) == definitions[
                row.klass
            ], row.name

    def test_classify_unknown(self):
        with pytest.raises(KeyError):
            classify("RTree")  # a SAM, not in the PAM table

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_completeness_axis_is_observable(self, name):
        """Complete partitions read data pages even for empty space."""
        pam = build(name)
        pam.store.begin_operation()
        pam.store.begin_operation()
        before = pam.store.stats.data_reads
        assert pam.range_query(EMPTY_CORNER) == []
        touched = pam.store.stats.data_reads - before
        if classify(name).complete:
            assert touched >= 1, f"{name} claims complete regions"
        else:
            assert touched == 0, f"{name} claims not to partition empty space"

    def test_twin_grid_regions_overlap(self):
        """Class C2: the twin file's regions overlay the primary ones."""
        twin = build("TwinGridFile")
        primary = [twin._layers[0].box_rect(pid) for pid in twin._layers[0].boxes]
        secondary = [twin._layers[1].box_rect(pid) for pid in twin._layers[1].boxes]
        overlap = any(
            a.intersection(b) is not None and a.intersection(b).area() > 0
            for a in primary
            for b in secondary
        )
        assert overlap
