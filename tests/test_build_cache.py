"""The build cache's safety properties: fingerprint sensitivity,
corruption tolerance and the environment kill switch.

The cache trades rebuild time for correctness risk; these tests pin the
three behaviours that keep the trade safe — any code edit invalidates
every key, a torn or corrupt entry degrades to a miss (never a wrong
result), and ``REPRO_BUILD_CACHE=off`` disables it entirely.
"""

from __future__ import annotations

import pickle

import pytest

import repro.parallel.cache as cache_mod
from repro.parallel.cache import BuildCache, cache_from_env, code_fingerprint
from repro.parallel.jobs import JobSpec


@pytest.fixture
def spec() -> JobSpec:
    return JobSpec(kind="pam", structure="BUDDY", scale=500, seed=101, file="uniform")


class TestFingerprint:
    def test_fingerprint_is_cached_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_one_byte_source_edit_changes_every_key(self, tmp_path, spec):
        """Simulate a source edit by recomputing the fingerprint over a
        copy of the package with a single byte appended to one file; the
        cache key for the same spec must change."""
        import repro

        src_root = cache_mod.Path(repro.__file__).resolve().parent
        pristine = BuildCache(tmp_path, fingerprint=code_fingerprint())

        import hashlib

        digest = hashlib.sha256()
        edited_one = False
        for path in sorted(src_root.rglob("*.py")):
            digest.update(str(path.relative_to(src_root)).encode())
            digest.update(b"\x00")
            contents = path.read_bytes()
            if not edited_one:
                contents += b"#"  # the one-byte edit
                edited_one = True
            digest.update(contents)
        edited = BuildCache(tmp_path, fingerprint=digest.hexdigest())

        assert edited_one
        assert pristine.fingerprint != edited.fingerprint
        assert pristine.key(spec) != edited.key(spec)
        pristine.store(spec, "result-under-old-code")
        assert edited.load(spec) is None  # old entry invisible to new code
        assert edited.misses == 1

    def test_key_depends_on_every_spec_field(self, tmp_path, spec):
        cache = BuildCache(tmp_path, fingerprint="f" * 64)
        base = cache.key(spec)
        for variant in (
            JobSpec(kind="sam", structure="BUDDY", scale=500, seed=101, file="uniform"),
            JobSpec(kind="pam", structure="GRID", scale=500, seed=101, file="uniform"),
            JobSpec(kind="pam", structure="BUDDY", scale=501, seed=101, file="uniform"),
            JobSpec(kind="pam", structure="BUDDY", scale=500, seed=102, file="uniform"),
            JobSpec(kind="pam", structure="BUDDY", scale=500, seed=101, file="cluster"),
        ):
            assert cache.key(variant) != base, variant


class TestCorruptEntries:
    def test_round_trip(self, tmp_path, spec):
        cache = BuildCache(tmp_path, fingerprint="f" * 64)
        assert cache.load(spec) is None
        cache.store(spec, {"rows": 3})
        assert cache.load(spec) == {"rows": 3}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_truncated_entry_is_a_miss(self, tmp_path, spec):
        cache = BuildCache(tmp_path, fingerprint="f" * 64)
        cache.store(spec, "payload")
        path = cache.path_for(spec)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.load(spec) is None
        assert cache.misses == 1

    def test_garbage_entry_is_a_miss(self, tmp_path, spec):
        cache = BuildCache(tmp_path, fingerprint="f" * 64)
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not a pickle")
        assert cache.load(spec) is None

    def test_digest_collision_degrades_to_miss(self, tmp_path, spec):
        """An entry whose stored spec differs from the requested one
        (hash collision, or a renamed entry file) must not be served."""
        cache = BuildCache(tmp_path, fingerprint="f" * 64)
        other = JobSpec(kind="pam", structure="GRID", scale=500, seed=101, file="uniform")
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as fh:
            pickle.dump((other, "wrong cell"), fh)
        assert cache.load(spec) is None
        assert cache.misses == 1


class TestEnvironmentSwitch:
    @pytest.mark.parametrize("value", ["off", "0", "none", "no", "false", "", "  OFF  "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BUILD_CACHE", value)
        assert cache_from_env() is None

    def test_explicit_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BUILD_CACHE", str(tmp_path / "bc"))
        cache = cache_from_env()
        assert cache is not None and cache.root == tmp_path / "bc"

    def test_unset_uses_default_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_BUILD_CACHE", raising=False)
        cache = cache_from_env()
        assert cache is not None
        assert cache.root.name == ".build_cache"
