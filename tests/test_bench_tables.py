"""Tests for paper-style table rendering."""

from repro.bench.tables import (
    format_absolute_table,
    format_metrics_table,
    format_normalised_table,
)
from repro.core.comparison import MethodResult
from repro.core.stats import BuildMetrics


def _result(name, costs):
    metrics = BuildMetrics(70.2, 2.30, 3.06, 3, 1000, 35, 1, 1)
    return MethodResult(name, metrics, dict(costs), {k: 1 for k in costs})


class TestTables:
    def setup_method(self):
        costs = {"a": 10.0, "b": 20.0}
        self.results = {
            "GRID": _result("GRID", costs),
            "BUDDY": _result("BUDDY", {"a": 5.0, "b": 30.0}),
        }
        self.normalised = {
            "GRID": {"a": 100.0, "b": 100.0},
            "BUDDY": {"a": 50.0, "b": 150.0},
        }

    def test_normalised_table(self):
        text = format_normalised_table(
            "Uniform Distribution", self.results, self.normalised, ("a", "b")
        )
        lines = text.splitlines()
        assert lines[0] == "Uniform Distribution"
        assert "stor" in lines[1] and "dir/data" in lines[1]
        grid_row = next(l for l in lines if l.startswith("GRID"))
        assert "100.0" in grid_row and "70.2" in grid_row and "2.30" in grid_row
        buddy_row = next(l for l in lines if l.startswith("BUDDY"))
        assert "50.0" in buddy_row and "150.0" in buddy_row

    def test_absolute_table(self):
        text = format_absolute_table("Gaussianslim", self.results, ("a", "b"))
        assert "Gaussianslim" in text
        assert "10.0" in text and "30.0" in text

    def test_metrics_table(self):
        text = format_metrics_table("summary", self.results)
        assert "summary" in text
        assert "3.06" in text
        assert "36" in text  # data + directory pages
