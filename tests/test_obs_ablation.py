"""Tests for the clip-redundancy sweep document and its ledger path."""

import pytest

from repro.obs.ablation import (
    CLIP_REDUNDANCY_SCHEMA,
    build_clip_redundancy_document,
    validate_clip_redundancy,
)
from repro.obs.ledger import Ledger, entry_from_bench_document, gate_run

REDUNDANCY = {
    "stored_entries": 1000,
    "duplication_factor": 1.0,
    "overlap_volume": 0.0,
    "dead_space": 0.0,
    "coverage": 0.0,
    "utilisation": 0.75,
}


def make_row(budget: int, **overrides) -> dict:
    row = {
        "budget": budget,
        "regions_per_object": float(budget),
        "point_cost": 8.0 + budget,
        "data_pages": 70 * budget,
        "build_seconds": 0.02 * budget,
        "query_seconds": 0.3,
        "redundancy": {**REDUNDANCY, "duplication_factor": float(budget)},
    }
    row.update(overrides)
    return row


def make_doc(rows=None) -> dict:
    return build_clip_redundancy_document(
        file="gaussian_square",
        scale=1000,
        page_size=512,
        seed=107,
        rows=rows or [make_row(1), make_row(2), make_row(4)],
    )


class TestDocument:
    def test_build_validates(self):
        doc = make_doc()
        assert doc["schema"] == CLIP_REDUNDANCY_SCHEMA
        assert validate_clip_redundancy(doc) == []

    def test_not_an_object(self):
        assert validate_clip_redundancy([]) == ["document is not a JSON object"]

    def test_build_rejects_malformed(self):
        with pytest.raises(ValueError, match="rows"):
            build_clip_redundancy_document(
                file="f", scale=1, page_size=512, seed=None, rows=[]
            )

    def test_catches_row_problems(self):
        doc = make_doc()
        doc["rows"][1] = dict(doc["rows"][1])
        del doc["rows"][1]["point_cost"]
        doc["rows"][1]["redundancy"] = None
        problems = validate_clip_redundancy(doc)
        assert any("rows[1].point_cost" in p for p in problems)
        assert any("rows[1].redundancy" in p for p in problems)

    def test_catches_unsorted_budgets(self):
        doc = make_doc()
        doc["rows"].reverse()
        assert any(
            "sorted by budget" in p for p in validate_clip_redundancy(doc)
        )


class TestLedgerPath:
    def test_entry_carries_redundancy_totals(self):
        entry = entry_from_bench_document(make_doc())
        assert entry.label == "clip-redundancy-sweep"
        assert set(entry.totals) == {"r1", "r2", "r4"}
        assert entry.totals["r4"]["redundancy"]["duplication_factor"] == 4.0
        assert entry.totals["r4"]["data_pages"] == 280
        assert entry.metrics["budgets"]["r2"]["point_cost"] == 10.0
        assert entry.fingerprint["scale"] == 1000

    def test_entry_rejects_invalid_document(self):
        doc = make_doc()
        doc["rows"] = []
        with pytest.raises(ValueError, match="rows"):
            entry_from_bench_document(doc)

    def test_gate_fails_on_redundancy_drift(self, tmp_path):
        """Acceptance: redundancy metrics are gated like access totals."""
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(entry_from_bench_document(make_doc()))
        drifted = make_doc(
            rows=[
                make_row(1),
                make_row(2),
                make_row(
                    4,
                    redundancy={**REDUNDANCY, "duplication_factor": 4.5},
                ),
            ]
        )
        ledger.record(entry_from_bench_document(drifted))
        result = gate_run(ledger, max_regression=1000)
        assert not result.ok
        assert any("drifted" in failure for failure in result.failures)

    def test_gate_passes_on_identity(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(entry_from_bench_document(make_doc()))
        ledger.record(entry_from_bench_document(make_doc()))
        result = gate_run(ledger, max_regression=1000)
        assert result.ok and not result.failures
