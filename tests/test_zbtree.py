"""Tests for the z-order B+-tree and the underlying B+-tree core."""

import pytest

from repro.pam.zbtree import ZOrderBTree, _BPlusTree
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


class TestBPlusTreeCore:
    def make(self, leaf=4, inner=4):
        return _BPlusTree(PageStore(), leaf_capacity=leaf, inner_capacity=inner)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            _BPlusTree(PageStore(), leaf_capacity=1, inner_capacity=4)

    def test_insert_and_lookup(self):
        tree = self.make()
        for k in [5, 3, 8, 1, 9, 7, 2, 6, 4, 0]:
            tree.insert(k, f"v{k}")
        for k in range(10):
            assert tree.lookup(k) == [f"v{k}"]
        assert tree.lookup(42) == []

    def test_duplicates_stay_findable(self):
        tree = self.make()
        for i in range(30):
            tree.insert(7, i)
            tree.insert(i, -i)
        assert sorted(tree.lookup(7)) == [-7] + list(range(30))

    def test_scan_is_sorted_and_complete(self):
        tree = self.make()
        keys = [((i * 37) % 101) for i in range(101)]
        for k in keys:
            tree.insert(k, k)
        got = [k for k, _ in tree.scan(10, 60)]
        assert got == sorted(k for k in keys if 10 <= k < 60)

    def test_scan_full_range(self):
        tree = self.make()
        for i in range(200):
            tree.insert(i, i)
        assert [k for k, _ in tree.scan(0, 10**9)] == list(range(200))

    def test_leaves_respect_capacity_and_order(self):
        tree = self.make(leaf=4, inner=4)
        for i in range(300):
            tree.insert((i * 131) % 997, i)
        store = tree.store
        for pid in store.page_ids():
            obj = store._objects[pid]
            if store.kind(pid) is PageKind.DATA:
                assert len(obj.keys) <= 4
                assert obj.keys == sorted(obj.keys)
            else:
                assert len(obj.pids) <= 4
                assert obj.keys == sorted(obj.keys)
                assert len(obj.pids) == len(obj.keys) + 1

    def test_height_grows(self):
        tree = self.make(leaf=4, inner=4)
        assert tree.height == 0
        for i in range(100):
            tree.insert(i, i)
        assert tree.height >= 2


class TestZOrderBTree:
    def build(self, points, **kwargs):
        tree = ZOrderBTree(PageStore(), 2, **kwargs)
        for i, p in enumerate(points):
            tree.insert(p, i)
        return tree

    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(self.build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(700, seed=1)
        check_pam_against_oracle(self.build(points), points, STANDARD_QUERIES)

    def test_more_query_regions_cost_fewer_leaf_reads(self):
        from repro.geometry.rect import Rect

        points = make_points(3000, seed=2)
        query = Rect((0.27, 0.27), (0.52, 0.52))

        def cost(regions):
            tree = self.build(points, query_regions=regions)
            tree.store.begin_operation()
            tree.store.begin_operation()
            before = tree.store.stats.data_reads
            tree.range_query(query)
            return tree.store.stats.data_reads - before

        assert cost(16) <= cost(1)

    def test_height_reported(self):
        tree = self.build(make_points(2000, seed=3))
        assert tree.directory_height >= 1
