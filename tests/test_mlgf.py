"""Tests for the multilevel grid file (the balanced buddy variant)."""

import pytest

from repro.geometry.rect import Rect
from repro.pam.buddytree import BuddyTree
from repro.pam.mlgf import MultilevelGridFile
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points):
    mlgf = MultilevelGridFile(PageStore(), 2)
    for i, p in enumerate(points):
        mlgf.insert(p, i)
    return mlgf


def data_entry_depths(tree):
    """Depths (root = 1) of the nodes holding data entries."""
    depths = set()
    if tree._root_is_data:
        return depths
    stack = [(tree._root_pid, 1)]
    while stack:
        pid, depth = stack.pop()
        node = tree.store._objects[pid]
        for entry in node.entries:
            if entry.is_data:
                depths.add(depth)
            else:
                stack.append((entry.pid, depth + 1))
    return depths


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(800, seed=1)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal(self):
        points = [(i / 700.0, i / 700.0) for i in range(700)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)


class TestBalance:
    def test_all_data_entries_at_one_level(self):
        for seed in (2, 3):
            mlgf = build(make_clustered_points(1500, seed=seed))
            assert len(data_entry_depths(mlgf)) == 1

    def test_one_entry_nodes_are_permitted(self):
        """The 'artificial balancing' that BUDDY's property (1) removes.

        One-entry chain pages are created when a new region appears in
        empty space above the data level; later splits may absorb them,
        so only their legality (never emptiness) is asserted here.
        """
        mlgf = build(make_clustered_points(2500, seed=4))
        sizes = []
        stack = [mlgf._root_pid]
        while stack:
            node = mlgf.store._objects[stack.pop()]
            sizes.append(len(node.entries))
            stack.extend(e.pid for e in node.entries if not e.is_data)
        assert min(sizes) >= 1

    def test_same_answers_as_buddy(self):
        points = make_clustered_points(2000, seed=5)
        buddy = BuddyTree(PageStore(), 2)
        for i, p in enumerate(points):
            buddy.insert(p, i)
        mlgf = build(points)
        for rect in STANDARD_QUERIES:
            assert sorted(buddy.range_query(rect)) == sorted(mlgf.range_query(rect))

    def test_unsupported_operations(self):
        mlgf = build(make_points(100, seed=6))
        with pytest.raises(NotImplementedError):
            mlgf.pack()
        with pytest.raises(NotImplementedError):
            mlgf.delete((0.5, 0.5), 0)

    def test_buddy_updates_are_cheaper(self):
        """The paper claims property (1) improves "all operations
        (queries and updates)"; the update half holds robustly (the
        query half is scale- and workload-dependent, see EXPERIMENTS.md
        and the ABL-MLGF bench)."""
        points = make_clustered_points(2500, seed=7)
        mlgf = build(points)
        buddy = BuddyTree(PageStore(), 2)
        for i, p in enumerate(points):
            buddy.insert(p, i)
        assert buddy.metrics().insert_cost <= mlgf.metrics().insert_cost
