"""Tests for the shared bench infrastructure in ``benchmarks/conftest.py``.

The conftest is loaded by file path (it is pytest plugin code, not an
importable package module), which also exercises that it imports
cleanly outside a bench session.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_CONFTEST = Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"


@pytest.fixture(scope="module")
def bench_conftest():
    spec = importlib.util.spec_from_file_location("bench_conftest_under_test", _CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPaperVsMeasured:
    def test_empty_columns_does_not_crash(self, bench_conftest):
        """Regression: ``max(10, *(...))`` raised TypeError for ``()``."""
        table = bench_conftest.paper_vs_measured(
            "title", {}, {"GRID": ()}, columns=()
        )
        lines = table.splitlines()
        assert lines[0] == "title"
        assert "GRID" in table

    def test_width_floor_is_ten(self, bench_conftest):
        table = bench_conftest.paper_vs_measured(
            "t", {}, {"X": (1.0,)}, columns=("c",)
        )
        header = table.splitlines()[1]
        assert header.endswith(f"{'c':>10s}")

    def test_wide_columns_stretch(self, bench_conftest):
        table = bench_conftest.paper_vs_measured(
            "t", {}, {"X": (1.0,)}, columns=("a-very-wide-column",)
        )
        header = table.splitlines()[1]
        assert header.endswith(f"{'a-very-wide-column':>20s}")

    def test_paper_row_above_measured_row(self, bench_conftest):
        table = bench_conftest.paper_vs_measured(
            "t",
            {"GRID": (100.0, 50.0)},
            {"GRID": (99.0, None)},
            columns=("q1", "q2"),
        )
        lines = table.splitlines()
        assert "paper" in lines[2] and "100.0" in lines[2]
        # None cells render as '-' in the measured row.
        assert "here" in lines[3] and lines[3].rstrip().endswith("-")


class TestWorkersKnob:
    def test_default_is_serial(self, bench_conftest, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        assert bench_conftest.bench_workers() == 1

    def test_env_opt_in(self, bench_conftest, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
        assert bench_conftest.bench_workers() == 3
