"""Tests for the k-d-B tree (class C1: rectangular, complete, disjoint)."""

from repro.geometry.rect import Rect
from repro.pam.kdbtree import KdBTree
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points):
    tree = KdBTree(PageStore(), 2)
    for i, p in enumerate(points):
        tree.insert(p, i)
    return tree


def walk_regions(tree):
    """Yield (region rect, node, is_leaf_level) for every region page."""
    if tree._root_is_leaf:
        return
    stack = [(Rect.unit(2), tree._root_pid)]
    while stack:
        region, pid = stack.pop()
        node = tree.store._objects[pid]
        yield region, node
        if not node.leaf_children:
            stack.extend(zip(node.rects, node.pids))


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(800, seed=1)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal(self):
        points = [(i / 700.0, i / 700.0) for i in range(700)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_sorted_insertion(self):
        points = sorted(make_points(700, seed=2))
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_points_on_boundaries(self):
        points = [(i / 16.0, j / 16.0) for i in range(16) for j in range(16)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)


class TestClassC1Invariants:
    def test_regions_partition_completely(self):
        """Class C1: child regions are disjoint and span the region."""
        tree = build(make_clustered_points(1500, seed=3))
        for region, node in walk_regions(tree):
            total = sum(r.area() for r in node.rects)
            assert abs(total - region.area()) < 1e-9
            for i, a in enumerate(node.rects):
                assert region.contains_rect(a)
                for b in node.rects[i + 1 :]:
                    inter = a.intersection(b)
                    assert inter is None or inter.area() == 0.0

    def test_balanced_leaf_depth(self):
        tree = build(make_points(1500, seed=4))
        depths = set()
        stack = [(tree._root_pid, 0)]
        while stack:
            pid, depth = stack.pop()
            node = tree.store._objects[pid]
            if node.leaf_children:
                depths.add(depth + 1)
            else:
                stack.extend((child, depth + 1) for child in node.pids)
        assert len(depths) == 1

    def test_records_inside_their_region(self):
        tree = build(make_clustered_points(1200, seed=5))
        for _, node in walk_regions(tree):
            if not node.leaf_children:
                continue
            for region, pid in zip(node.rects, node.pids):
                page = tree.store._objects[pid]
                for point, _ in page.records:
                    assert tree._region_contains(region, point)

    def test_forced_splits_cost_storage(self):
        """The k-d-B trade-off: diagonal data forces splits and lowers stor."""
        uniform = build(make_points(2000, seed=6))
        diagonal = build([(i / 2000.0, i / 2000.0) for i in range(2000)])
        assert (
            diagonal.metrics().storage_utilization
            < uniform.metrics().storage_utilization
        )

    def test_empty_space_is_partitioned(self):
        """Class C1 partitions everything: a query in an empty corner
        still descends to a point page (contrast with BUDDY)."""
        points = [p for p in make_clustered_points(900, seed=7)
                  if p[0] > 0.05 or p[1] > 0.05]
        tree = build(points)
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.total
        assert tree.range_query(Rect((0.0, 0.0), (0.01, 0.01))) == []
        assert tree.store.stats.total - before >= 1

    def test_exact_match_single_path(self):
        points = make_points(2000, seed=8)
        tree = build(points)
        for p in points[::401]:
            tree.store.begin_operation()
            tree.store.begin_operation()
            before = tree.store.stats.total
            assert tree.exact_match(p) == [points.index(p)]
            assert tree.store.stats.total - before <= tree.directory_height + 1
