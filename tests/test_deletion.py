"""Deletion-path regressions for every delete-supporting structure.

The paper builds its files by insertion only, so the delete paths are
the least exercised code in the repo.  These tests drive each structure
(BUDDY, the one-level grid file, MLGF and the R-tree) all the way to
empty and back, with the invariant auditor checking the file after
every phase.
"""

from __future__ import annotations

import pytest

from repro.geometry.rect import Rect
from repro.pam.buddytree import BuddyTree
from repro.pam.gridfile import GridFile
from repro.pam.mlgf import MultilevelGridFile
from repro.sam.rtree import RTree
from repro.storage.pagestore import PageStore
from repro.verify import run_audit
from tests.conftest import make_clustered_points, make_points, make_rects

PAM_CLASSES = {
    "BUDDY": BuddyTree,
    "GRID-1": GridFile,
}


def build_pam(cls, points):
    pam = cls(PageStore(), 2)
    for rid, point in enumerate(points):
        pam.insert(point, rid)
    return pam


class TestPamDeletion:
    @pytest.mark.parametrize("name", sorted(PAM_CLASSES))
    def test_delete_to_empty(self, name):
        points = make_points(200, seed=21)
        pam = build_pam(PAM_CLASSES[name], points)
        for rid, point in enumerate(points):
            assert pam.delete(point, rid), (name, rid)
            assert pam.exact_match(point) == [], (name, rid)
        assert len(pam) == 0
        assert pam.range_query(Rect.unit(2)) == []
        assert run_audit(pam) == [], name

    @pytest.mark.parametrize("name", sorted(PAM_CLASSES))
    def test_reinsert_after_delete(self, name):
        points = make_points(150, seed=22)
        pam = build_pam(PAM_CLASSES[name], points)
        victims = list(enumerate(points))[::3]
        for rid, point in victims:
            assert pam.delete(point, rid)
        for rid, point in victims:
            pam.insert(point, rid)
        assert sorted(pam.range_query(Rect.unit(2))) == sorted(
            (p, i) for i, p in enumerate(points)
        ), name
        assert run_audit(pam) == [], name

    @pytest.mark.parametrize("name", sorted(PAM_CLASSES))
    def test_insert_after_delete_to_empty(self, name):
        points = make_points(120, seed=23)
        pam = build_pam(PAM_CLASSES[name], points)
        for rid, point in enumerate(points):
            assert pam.delete(point, rid)
        fresh = make_points(80, seed=24)
        for rid, point in enumerate(fresh):
            pam.insert(point, rid)
        assert sorted(pam.range_query(Rect.unit(2))) == sorted(
            (p, i) for i, p in enumerate(fresh)
        ), name
        assert run_audit(pam) == [], name

    @pytest.mark.parametrize("name", sorted(PAM_CLASSES))
    def test_delete_missing_returns_false(self, name):
        points = make_points(50, seed=25)
        pam = build_pam(PAM_CLASSES[name], points)
        assert not pam.delete((0.123456789, 0.987654321), 0)
        assert not pam.delete(points[0], 999)  # right point, wrong rid
        assert len(pam) == 50
        assert run_audit(pam) == [], name

    def test_mlgf_refuses_deletion(self):
        """The balanced variant documents deletion as unsupported; make
        sure it refuses loudly rather than corrupting the file."""
        mlgf = build_pam(MultilevelGridFile, make_points(40, seed=27))
        with pytest.raises(NotImplementedError):
            mlgf.delete((0.5, 0.5), 0)
        assert run_audit(mlgf) == []

    def test_buddy_clustered_delete_merges_pages(self):
        points = make_clustered_points(400, seed=26)
        tree = build_pam(BuddyTree, points)
        pages_before = tree.metrics().data_pages
        for rid, point in enumerate(points[:360]):
            assert tree.delete(point, rid)
        assert tree.metrics().data_pages < pages_before
        assert run_audit(tree) == []


class TestRTreeDeletion:
    def build(self, rects):
        tree = RTree(PageStore(), 2)
        for rid, rect in enumerate(rects):
            tree.insert(rect, rid)
        return tree

    def test_delete_to_empty(self):
        rects = make_rects(200, seed=31)
        tree = self.build(rects)
        for rid, rect in enumerate(rects):
            assert tree.delete(rect, rid), rid
        assert len(tree) == 0
        assert tree.intersection(Rect.unit(2)) == []
        assert run_audit(tree) == []

    def test_reinsert_after_delete(self):
        rects = make_rects(150, seed=32)
        tree = self.build(rects)
        victims = list(enumerate(rects))[::3]
        for rid, rect in victims:
            assert tree.delete(rect, rid)
        for rid, rect in victims:
            tree.insert(rect, rid)
        assert sorted(tree.intersection(Rect.unit(2))) == list(range(len(rects)))
        assert run_audit(tree) == []

    def test_insert_after_delete_to_empty(self):
        rects = make_rects(120, seed=33)
        tree = self.build(rects)
        for rid, rect in enumerate(rects):
            assert tree.delete(rect, rid)
        fresh = make_rects(80, seed=34)
        for rid, rect in enumerate(fresh):
            tree.insert(rect, rid)
        assert sorted(tree.intersection(Rect.unit(2))) == list(range(len(fresh)))
        assert run_audit(tree) == []

    def test_delete_missing_returns_false(self):
        rects = make_rects(50, seed=35)
        tree = self.build(rects)
        assert not tree.delete(Rect((0.91, 0.91), (0.92, 0.92)), 0)
        assert not tree.delete(rects[0], 999)
        assert len(tree) == 50
        assert run_audit(tree) == []

    def test_delete_shrinks_tree_height(self):
        rects = make_rects(600, seed=36, max_extent=0.03)
        tree = self.build(rects)
        height_before = tree.metrics().height
        assert height_before >= 1
        for rid, rect in enumerate(rects[:580]):
            assert tree.delete(rect, rid)
        assert tree.metrics().height <= height_before
        assert sorted(tree.intersection(Rect.unit(2))) == list(range(580, 600))
        assert run_audit(tree) == []
