"""Tests for the R-tree, its three split policies, and deletion."""

import pytest

from repro.geometry.rect import Rect
from repro.sam.rtree import RTree
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_POINTS,
    STANDARD_QUERIES,
    check_sam_against_oracle,
    make_rects,
)


def build(rects, **kwargs):
    tree = RTree(PageStore(), 2, **kwargs)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    return tree


def walk(tree):
    """Yield (pid, node, depth) for every node."""
    stack = [(tree._root_pid, 0)]
    while stack:
        pid, depth = stack.pop()
        node = tree.store._objects[pid]
        yield pid, node, depth
        if not node.is_leaf:
            stack.extend((child, depth + 1) for child in node.children)


class TestCorrectness:
    @pytest.mark.parametrize("policy", ["guttman", "greene", "margin"])
    def test_all_query_types(self, policy):
        rects = make_rects(700, seed=1)
        tree = build(rects, split_policy=policy)
        check_sam_against_oracle(tree, rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_large_rectangles(self):
        rects = make_rects(400, seed=2, max_extent=0.4)
        tree = build(rects)
        check_sam_against_oracle(tree, rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_degenerate_rectangles(self):
        rects = [Rect.from_point((i / 300.0, (i * 7 % 300) / 300.0)) for i in range(300)]
        tree = build(rects)
        check_sam_against_oracle(tree, rects, STANDARD_QUERIES, STANDARD_POINTS)


class TestInvariants:
    def test_inner_rects_bound_children(self):
        tree = build(make_rects(900, seed=3))
        for _, node, _ in walk(tree):
            if node.is_leaf:
                continue
            for rect, child in zip(node.rects, node.children):
                child_node = tree.store._objects[child]
                assert rect == Rect.bounding(child_node.rects)

    def test_balanced_leaf_depth(self):
        tree = build(make_rects(900, seed=4))
        depths = {d for _, node, d in walk(tree) if node.is_leaf}
        assert len(depths) == 1
        assert depths == {tree.directory_height}

    def test_capacity_and_min_fill(self):
        tree = build(make_rects(1200, seed=5))
        for pid, node, _ in walk(tree):
            assert len(node.rects) <= tree.record_capacity
            if pid != tree._root_pid:
                assert len(node.rects) >= tree._min_entries

    def test_min_fill_default_is_30_percent(self):
        """§7: best retrieval at 30 % minimum storage utilisation."""
        tree = RTree(PageStore(), 2)
        assert tree._min_entries == int(0.3 * tree.record_capacity)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTree(PageStore(), 2, split_policy="bogus")
        with pytest.raises(ValueError):
            RTree(PageStore(), 2, min_fill=0.9)


class TestPaperBehaviour:
    def test_containment_costs_equal_intersection(self):
        """The paper's R-tree rows: containment == intersection accesses."""
        rects = make_rects(1500, seed=6)
        tree = build(rects)
        query = Rect((0.2, 0.2), (0.6, 0.6))
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.total
        tree.intersection(query)
        intersection_cost = tree.store.stats.total - before
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.total
        tree.containment(query)
        containment_cost = tree.store.stats.total - before
        assert containment_cost == intersection_cost

    def test_enclosure_prunes_hard(self):
        rects = make_rects(1500, seed=7)
        tree = build(rects)
        query = Rect((0.4, 0.4), (0.42, 0.42))
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.total
        tree.enclosure(query)
        enclosure_cost = tree.store.stats.total - before
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.total
        tree.intersection(query)
        intersection_cost = tree.store.stats.total - before
        assert enclosure_cost <= intersection_cost


class TestDeletion:
    def test_delete_roundtrip(self):
        rects = make_rects(500, seed=8)
        tree = build(rects)
        for i, r in enumerate(rects[:400]):
            assert tree.delete(r, i)
        assert len(tree) == 100
        got = sorted(tree.intersection(Rect.unit(2)))
        assert got == list(range(400, 500))

    def test_delete_missing(self):
        tree = build(make_rects(50, seed=9))
        assert not tree.delete(Rect((0.0, 0.0), (0.001, 0.001)), 999)

    def test_delete_maintains_bounding_invariant(self):
        rects = make_rects(600, seed=10)
        tree = build(rects)
        for i, r in enumerate(rects[:300]):
            tree.delete(r, i)
        for _, node, _ in walk(tree):
            if not node.is_leaf:
                for rect, child in zip(node.rects, node.children):
                    child_node = tree.store._objects[child]
                    assert rect.contains_rect(Rect.bounding(child_node.rects))

    def test_delete_to_empty_and_reuse(self):
        rects = make_rects(120, seed=11)
        tree = build(rects)
        for i, r in enumerate(rects):
            assert tree.delete(r, i)
        assert tree.intersection(Rect.unit(2)) == []
        for i, r in enumerate(rects):
            tree.insert(r, i)
        check_sam_against_oracle(tree, rects, STANDARD_QUERIES, STANDARD_POINTS)


class TestSplitPolicies:
    def test_policies_produce_different_trees(self):
        rects = make_rects(800, seed=12)
        overlap = {}
        for policy in ("guttman", "greene", "margin"):
            tree = build(rects, split_policy=policy)
            total = 0.0
            for _, node, _ in walk(tree):
                if node.is_leaf:
                    continue
                for i, a in enumerate(node.rects):
                    for b in node.rects[i + 1 :]:
                        inter = a.intersection(b)
                        total += inter.area() if inter else 0.0
            overlap[policy] = total
        assert len({round(v, 12) for v in overlap.values()}) > 1
