"""Tests for the §9 polygon extension (geometry + filter-and-refine)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.polygon import ConvexPolygon, convex_hull
from repro.geometry.rect import Rect
from repro.pam.buddytree import BuddyTree
from repro.sam.polygons import PolygonIndex
from repro.sam.rtree import RTree
from repro.sam.transformation import TransformationSAM
from repro.storage.pagestore import PageStore
from repro.workloads.polygons import generate_polygon_file


class TestConvexHull:
    def test_triangle(self):
        assert len(convex_hull([(0, 0), (1, 0), (0, 1)])) == 3

    def test_interior_points_removed(self):
        hull = convex_hull([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
        assert len(hull) == 4

    def test_counter_clockwise(self):
        hull = convex_hull([(0, 0), (1, 0), (1, 1), (0, 1)])
        area = sum(
            x1 * y2 - x2 * y1
            for (x1, y1), (x2, y2) in zip(hull, hull[1:] + hull[:1])
        )
        assert area > 0

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=3, max_size=30))
    def test_hull_contains_all_points(self, points):
        hull = convex_hull(points)
        if len(hull) < 3:
            return
        polygon = ConvexPolygon(hull)
        for px, py in points:
            # Tolerant check: the signed edge distance may round a hair
            # negative for inputs collinear up to float precision.
            verts = polygon.vertices
            for (x1, y1), (x2, y2) in zip(verts, verts[1:] + verts[:1]):
                cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
                assert cross >= -1e-9


class TestConvexPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (1, 1)])

    def test_rejects_nonconvex(self):
        with pytest.raises(ValueError):
            ConvexPolygon([(0, 0), (1, 0), (0.5, 0.2), (0.5, 1)])

    def test_regular_polygon_area(self):
        hexagon = ConvexPolygon.regular((0.5, 0.5), 0.2, 6)
        expected = 0.5 * 6 * 0.2**2 * math.sin(2 * math.pi / 6)
        assert hexagon.area() == pytest.approx(expected)

    def test_bounding_rect(self):
        square = ConvexPolygon([(0.2, 0.2), (0.4, 0.2), (0.4, 0.4), (0.2, 0.4)])
        assert square.bounding_rect() == Rect((0.2, 0.2), (0.4, 0.4))

    def test_contains_point(self):
        triangle = ConvexPolygon([(0, 0), (1, 0), (0, 1)])
        assert triangle.contains_point((0.2, 0.2))
        assert triangle.contains_point((0.5, 0.5))  # on the hypotenuse
        assert not triangle.contains_point((0.6, 0.6))

    def test_intersects_rect(self):
        triangle = ConvexPolygon([(0, 0), (1, 0), (0, 1)])
        assert triangle.intersects_rect(Rect((0.1, 0.1), (0.2, 0.2)))
        # Rect inside the MBR but outside the triangle (above hypotenuse).
        assert not triangle.intersects_rect(Rect((0.8, 0.8), (0.95, 0.95)))
        assert triangle.intersects_rect(Rect((0.45, 0.45), (0.9, 0.9)))

    def test_contained_in_rect(self):
        triangle = ConvexPolygon([(0.2, 0.2), (0.4, 0.2), (0.3, 0.4)])
        assert triangle.contained_in_rect(Rect((0.1, 0.1), (0.5, 0.5)))
        assert not triangle.contained_in_rect(Rect((0.25, 0.1), (0.5, 0.5)))

    def test_immutable_and_hashable(self):
        a = ConvexPolygon([(0, 0), (1, 0), (0, 1)])
        b = ConvexPolygon([(0, 0), (1, 0), (0, 1)])
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.vertices = ()


class TestPolygonIndex:
    def brute(self, polygons, predicate):
        return sorted(i for i, poly in enumerate(polygons) if predicate(poly))

    @pytest.mark.parametrize(
        "sam_factory",
        [
            lambda s, dims: RTree(s, dims),
            lambda s, dims: TransformationSAM(
                s, lambda st, dims: BuddyTree(st, dims), dims=dims
            ),
        ],
    )
    def test_queries_match_brute_force(self, sam_factory):
        polygons = generate_polygon_file(300)
        index = PolygonIndex(PageStore(), sam_factory)
        for i, poly in enumerate(polygons):
            index.insert(poly, i)
        for probe in [(0.5, 0.5), (0.2, 0.8), (0.33, 0.41)]:
            assert sorted(index.point_query(probe)) == self.brute(
                polygons, lambda poly: poly.contains_point(probe)
            )
        for window in [Rect((0.3, 0.3), (0.5, 0.5)), Rect((0.0, 0.0), (1.0, 1.0))]:
            assert sorted(index.window_query(window)) == self.brute(
                polygons, lambda poly: poly.intersects_rect(window)
            )
            assert sorted(index.containment_query(window)) == self.brute(
                polygons, lambda poly: poly.contained_in_rect(window)
            )

    def test_false_drops_are_counted(self):
        """A thin diagonal polygon has a big MBR: the filter over-selects."""
        sliver = ConvexPolygon([(0.1, 0.1), (0.9, 0.88), (0.9, 0.9), (0.12, 0.1)])
        index = PolygonIndex(PageStore(), lambda s, dims: RTree(s, dims))
        index.insert(sliver, 0)
        assert index.point_query((0.2, 0.8)) == []  # inside MBR, outside polygon
        assert index.last_false_drops == 1
        assert index.point_query((0.5, 0.5)) == [0]
        assert index.last_false_drops == 0

    def test_refinement_reads_object_pages(self):
        polygons = generate_polygon_file(200)
        store = PageStore()
        index = PolygonIndex(store, lambda s, dims: RTree(s, dims))
        for i, poly in enumerate(polygons):
            index.insert(poly, i)
        store.begin_operation()
        store.begin_operation()
        before = store.stats.data_reads
        hits = index.window_query(Rect((0.2, 0.2), (0.6, 0.6)))
        assert hits
        assert store.stats.data_reads - before > 0
