"""Tests for the hB-tree (kd-tree nodes, holey bricks, duplicate entries)."""

from repro.geometry.rect import Rect
from repro.pam.hbtree import _EXT, _INTERNAL, _LEAF, HBTree
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points):
    tree = HBTree(PageStore(), 2)
    for i, p in enumerate(points):
        tree.insert(p, i)
    return tree


def kd_slots(tree, pid):
    node = tree.store._objects[pid]
    out, stack = [], [node.kd]
    while stack:
        kd = stack.pop()
        out.append(kd)
        if kd.kind == _INTERNAL:
            stack.extend((kd.left, kd.right))
    return out


def index_pids(tree):
    if tree._root_is_data:
        return []
    seen, stack = set(), [tree._root_pid]
    while stack:
        pid = stack.pop()
        if pid in seen:
            continue
        seen.add(pid)
        for kd in kd_slots(tree, pid):
            if kd.kind == _LEAF and not kd.is_data:
                stack.append(kd.pid)
    return list(seen)


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(800, seed=1)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal(self):
        points = [(i / 700.0, i / 700.0) for i in range(700)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_x_parallel_duplicate_coordinates(self):
        # Many identical y values stress the median split's axis choice.
        points = [((i % 97) / 97.0 + i * 1e-9, 0.5) for i in range(500)]
        points = list(dict.fromkeys(points))
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_tiny_file(self):
        points = make_points(7)
        tree = build(points)
        assert tree._root_is_data
        check_pam_against_oracle(tree, points, STANDARD_QUERIES[:3])


class TestStructure:
    def test_exact_match_walk_is_single_path(self):
        points = make_points(2000, seed=2)
        tree = build(points)
        for p in points[::401]:
            tree.store.begin_operation()
            tree.store.begin_operation()
            before = tree.store.stats.total
            tree.exact_match(p)
            assert tree.store.stats.total - before <= tree.directory_height + 1

    def test_index_nodes_fit_their_page(self):
        tree = build(make_points(2500, seed=3))
        for pid in index_pids(tree):
            node = tree.store._objects[pid]
            assert tree._kd_bytes(node.kd) <= tree._index_payload

    def test_duplicate_references_appear(self):
        """The hB-tree 'is actually a graph': some child is referenced twice.

        Sorted (diagonal) insertions degenerate the intra-node kd-trees,
        so split extraction posts multi-comparison chains whose off-chain
        sides duplicate the donor reference.
        """
        points = [(i / 3000.0, i / 3000.0) for i in range(3000)]
        tree = build(points)
        duplicated = False
        for pid in index_pids(tree):
            refs = [kd.pid for kd in kd_slots(tree, pid) if kd.kind == _LEAF]
            if len(refs) != len(set(refs)):
                duplicated = True
        multi_parent = any(len(ps) > 1 for ps in tree._parents.values())
        assert duplicated or multi_parent

    def test_ext_markers_unreachable_by_point_walks(self):
        points = make_clustered_points(2500, seed=5)
        tree = build(points)
        probes = make_points(500, seed=6)
        for p in probes:
            tree.exact_match(p)  # raises RuntimeError on a bad walk

    def test_kd_leaf_counts(self):
        tree = build(make_points(1500, seed=7))
        for pid in index_pids(tree):
            slots = kd_slots(tree, pid)
            internals = sum(1 for k in slots if k.kind == _INTERNAL)
            leaves = sum(1 for k in slots if k.kind != _INTERNAL)
            assert leaves == internals + 1

    def test_data_capacity_never_exceeded(self):
        tree = build(make_points(1200, seed=8))
        for pid in tree.store.page_ids():
            if tree.store.kind(pid) is PageKind.DATA:
                assert len(tree.store._objects[pid].records) <= tree.record_capacity

    def test_parent_map_is_consistent(self):
        tree = build(make_points(2000, seed=9))
        actual_parents: dict[int, set[int]] = {}
        for pid in index_pids(tree):
            for kd in kd_slots(tree, pid):
                if kd.kind == _LEAF:
                    actual_parents.setdefault(kd.pid, set()).add(pid)
        for child, parents in actual_parents.items():
            assert parents <= tree._parents.get(child, set()) | {tree._root_pid}

    def test_empty_space_still_partitioned(self):
        """The paper's criticism of HB: it partitions empty data space,
        so a query in an empty corner still descends into data pages."""
        points = [p for p in make_clustered_points(900, seed=10)
                  if p[0] > 0.05 or p[1] > 0.05]
        tree = build(points)
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.total
        assert tree.range_query(Rect((0.0, 0.0), (0.01, 0.01))) == []
        assert tree.store.stats.total - before >= 1


class TestMinimalRegions:
    """The §5 prescription: HB + not partitioning empty space."""

    def test_correctness(self):
        points = make_clustered_points(900, seed=20)
        tree = HBTree(PageStore(), 2, minimal_regions=True)
        for i, p in enumerate(points):
            tree.insert(p, i)
        check_pam_against_oracle(tree, points, STANDARD_QUERIES)

    def test_correctness_diagonal_sorted(self):
        points = [(i / 800.0, i / 800.0) for i in range(800)]
        tree = HBTree(PageStore(), 2, minimal_regions=True)
        for i, p in enumerate(points):
            tree.insert(p, i)
        check_pam_against_oracle(tree, points, STANDARD_QUERIES)

    def test_leaf_mbrs_bound_their_subtrees(self):
        points = make_clustered_points(1500, seed=21)
        tree = HBTree(PageStore(), 2, minimal_regions=True)
        for i, p in enumerate(points):
            tree.insert(p, i)
        for pid in index_pids(tree):
            for kd in kd_slots(tree, pid):
                if kd.kind == _LEAF:
                    assert kd.mbr == tree._node_mbr(kd.pid, kd.is_data)

    def test_empty_space_queries_become_cheap(self):
        from repro.geometry.rect import Rect

        points = make_clustered_points(900, seed=22)
        empty = Rect((0.001, 0.001), (0.004, 0.004))
        points = [p for p in points if not empty.contains_point(p)]

        def cost(minimal):
            tree = HBTree(PageStore(), 2, minimal_regions=minimal)
            for i, p in enumerate(points):
                tree.insert(p, i)
            tree.store.begin_operation()
            tree.store.begin_operation()
            before = tree.store.stats.data_reads
            assert tree.range_query(empty) == []
            return tree.store.stats.data_reads - before

        assert cost(True) == 0  # the §5 prediction: no data page touched
        assert cost(False) >= 1

    def test_region_entries_cost_directory_space(self):
        points = make_points(2000, seed=23)
        plain = HBTree(PageStore(), 2)
        minimal = HBTree(PageStore(), 2, minimal_regions=True)
        for i, p in enumerate(points):
            plain.insert(p, i)
            minimal.insert(p, i)
        from repro.storage.page import PageKind

        assert minimal.store.count_pages(PageKind.DIRECTORY) >= plain.store.count_pages(
            PageKind.DIRECTORY
        )
