"""Dimension-genericity tests: every PAM works in 1, 3 and 4 dimensions.

The transformation technique depends on 4-dimensional operation (2d-dim
points for d-dim rectangles); the paper's taxonomy is stated for
arbitrary d.  Each structure is exercised against a linear-scan oracle
in the non-default dimensionalities.
"""

import random

import pytest

from repro.core.testbed import standard_pam_factories
from repro.geometry.rect import Rect
from repro.pam.kdbtree import KdBTree
from repro.pam.plop import PlopHashing
from repro.pam.zbtree import ZOrderBTree
from repro.storage.pagestore import PageStore

ALL_FACTORIES = dict(standard_pam_factories())
ALL_FACTORIES["PLOP"] = lambda store, dims=2: PlopHashing(store, dims)
ALL_FACTORIES["ZB"] = lambda store, dims=2: ZOrderBTree(store, dims)
ALL_FACTORIES["KDB"] = lambda store, dims=2: KdBTree(store, dims)


def make_points(n: int, dims: int, seed: int = 0):
    rng = random.Random(seed)
    points = []
    seen = set()
    while len(points) < n:
        p = tuple(rng.random() for _ in range(dims))
        if p not in seen:
            seen.add(p)
            points.append(p)
    return points


def queries(dims: int):
    return [
        Rect((0.0,) * dims, (1.0,) * dims),
        Rect((0.2,) * dims, (0.6,) * dims),
        Rect((0.45,) * dims, (0.55,) * dims),
    ]


@pytest.mark.parametrize("dims", [1, 3, 4])
@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_pam_in_d_dimensions(name, dims):
    points = make_points(400, dims, seed=dims)
    pam = ALL_FACTORIES[name](PageStore(), dims=dims)
    for i, p in enumerate(points):
        pam.insert(p, i)
    for rect in queries(dims):
        expected = sorted(
            (p, i) for i, p in enumerate(points) if rect.contains_point(p)
        )
        assert sorted(pam.range_query(rect)) == expected, name
    for p in points[::71]:
        assert pam.exact_match(p) == [points.index(p)]
    assert pam.partial_match({0: points[3][0]})


@pytest.mark.parametrize("dims", [1, 3])
def test_sam_in_d_dimensions(dims):
    from repro.sam.rtree import RTree
    from repro.sam.transformation import TransformationSAM
    from repro.pam.buddytree import BuddyTree

    rng = random.Random(dims)
    rects = []
    seen = set()
    while len(rects) < 250:
        center = [rng.random() for _ in range(dims)]
        ext = [rng.random() * 0.1 for _ in range(dims)]
        rect = Rect(
            tuple(max(0.0, c - e) for c, e in zip(center, ext)),
            tuple(min(1.0, c + e) for c, e in zip(center, ext)),
        )
        if rect not in seen:
            seen.add(rect)
            rects.append(rect)
    for factory in (
        lambda s: RTree(s, dims),
        lambda s: TransformationSAM(
            s, lambda st, dims: BuddyTree(st, dims), dims=dims
        ),
    ):
        sam = factory(PageStore())
        for i, r in enumerate(rects):
            sam.insert(r, i)
        query = Rect((0.3,) * dims, (0.7,) * dims)
        assert sorted(sam.intersection(query)) == sorted(
            i for i, r in enumerate(rects) if r.intersects(query)
        )
        assert sorted(sam.containment(query)) == sorted(
            i for i, r in enumerate(rects) if query.contains_rect(r)
        )
        assert sorted(sam.enclosure(query)) == sorted(
            i for i, r in enumerate(rects) if r.contains_rect(query)
        )
        probe = (0.5,) * dims
        assert sorted(sam.point_query(probe)) == sorted(
            i for i, r in enumerate(rects) if r.contains_point(probe)
        )
