"""Tests for spatial join and nearest-neighbour search (§8 operations)."""

import math
import random

import pytest

from repro.pam.buddytree import BuddyTree
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.sam.operations import (
    nearest_neighbors,
    nearest_points,
    nested_loop_join,
    rtree_join,
)
from repro.sam.rtree import RTree
from repro.storage.pagestore import PageStore
from tests.conftest import make_points, make_rects


def build_rtree(rects):
    tree = RTree(PageStore(), 2)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    return tree


class TestSpatialJoin:
    def brute_join(self, left, right):
        return sorted(
            (i, j)
            for i, a in enumerate(left)
            for j, b in enumerate(right)
            if a.intersects(b)
        )

    def test_matches_brute_force(self):
        left = make_rects(300, seed=1, max_extent=0.05)
        right = make_rects(250, seed=2, max_extent=0.05)
        pairs = rtree_join(build_rtree(left), build_rtree(right))
        assert sorted(pairs) == self.brute_join(left, right)

    def test_nested_loop_same_answer(self):
        left = make_rects(200, seed=3, max_extent=0.05)
        right = make_rects(200, seed=4, max_extent=0.05)
        right_tree = build_rtree(right)
        nested = nested_loop_join(list(zip(left, range(len(left)))), right_tree)
        assert sorted(nested) == self.brute_join(left, right)

    def test_self_join_contains_diagonal(self):
        rects = make_rects(150, seed=5)
        tree = build_rtree(rects)
        pairs = set(rtree_join(tree, tree))
        for i in range(len(rects)):
            assert (i, i) in pairs

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            rtree_join(RTree(PageStore(), 2), RTree(PageStore(), 3))

    def test_sync_join_cheaper_than_nested_loop(self):
        """The point of the synchronised descent: far fewer page reads."""
        left = make_rects(800, seed=6, max_extent=0.02)
        right = make_rects(800, seed=7, max_extent=0.02)
        left_tree, right_tree = build_rtree(left), build_rtree(right)
        before = left_tree.store.stats.total + right_tree.store.stats.total
        rtree_join(left_tree, right_tree)
        sync_cost = (
            left_tree.store.stats.total + right_tree.store.stats.total - before
        )
        fresh_right = build_rtree(right)
        before = fresh_right.store.stats.total
        nested_loop_join(list(zip(left, range(len(left)))), fresh_right)
        nested_cost = fresh_right.store.stats.total - before
        assert sync_cost < nested_cost


class TestNearestNeighbors:
    def test_matches_brute_force(self):
        rects = make_rects(500, seed=8)
        tree = build_rtree(rects)
        from repro.sam.operations import _point_rect_distance

        for probe in [(0.5, 0.5), (0.05, 0.95), (0.31, 0.7)]:
            got = nearest_neighbors(tree, probe, k=5)
            expected = sorted(
                (_point_rect_distance(probe, r), i) for i, r in enumerate(rects)
            )[:5]
            assert [d for d, _ in got] == pytest.approx([d for d, _ in expected])

    def test_k_validation(self):
        tree = build_rtree(make_rects(10, seed=9))
        with pytest.raises(ValueError):
            nearest_neighbors(tree, (0.5, 0.5), k=0)

    def test_inside_rect_distance_zero(self):
        rects = make_rects(100, seed=10, max_extent=0.2)
        tree = build_rtree(rects)
        inside = rects[0].center
        distance, _ = nearest_neighbors(tree, inside, k=1)[0]
        assert distance == 0.0

    def test_best_first_reads_few_pages(self):
        rects = make_rects(2000, seed=11, max_extent=0.01)
        tree = build_rtree(rects)
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.total
        nearest_neighbors(tree, (0.5, 0.5), k=3)
        # Branch-and-bound touches a handful of pages, not the file.
        assert tree.store.stats.total - before < 12


class TestNearestPoints:
    @pytest.mark.parametrize(
        "factory", [BuddyTree, TwoLevelGridFile], ids=["BUDDY", "GRID"]
    )
    def test_matches_brute_force(self, factory):
        points = make_points(800, seed=12)
        pam = factory(PageStore(), 2)
        for i, p in enumerate(points):
            pam.insert(p, i)
        rng = random.Random(13)
        for _ in range(5):
            probe = (rng.random(), rng.random())
            got = nearest_points(pam, probe, k=4)
            expected = sorted(
                (math.dist(probe, p), p, i) for i, p in enumerate(points)
            )[:4]
            assert [d for d, _, _ in got] == pytest.approx(
                [d for d, _, _ in expected]
            )

    def test_empty_index(self):
        pam = BuddyTree(PageStore(), 2)
        assert nearest_points(pam, (0.5, 0.5)) == []

    def test_k_larger_than_file(self):
        points = make_points(5, seed=14)
        pam = BuddyTree(PageStore(), 2)
        for i, p in enumerate(points):
            pam.insert(p, i)
        assert len(nearest_points(pam, (0.5, 0.5), k=50)) == 5
