"""Tests for PLOP hashing (directory-less linear hashing)."""

import pytest

from repro.geometry.rect import Rect
from repro.pam.plop import PlopHashing, _PlopGrid
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points):
    plop = PlopHashing(PageStore(), 2)
    for i, p in enumerate(points):
        plop.insert(p, i)
    return plop


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(700, seed=1)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal(self):
        points = [(i / 600.0, i / 600.0) for i in range(600)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)


class TestGrowth:
    def test_no_directory(self):
        plop = build(make_points(800, seed=2))
        assert plop.directory_height == 0
        assert plop.store.count_pages(PageKind.DIRECTORY) == 0

    def test_expansion_keeps_load_bounded(self):
        plop = build(make_points(2000, seed=3))
        grid = plop._grid
        assert grid._records <= 0.8 * grid._pages * grid.capacity + grid.capacity

    def test_slices_are_dyadic(self):
        plop = build(make_points(1500, seed=4))
        for scale in plop._grid.slices:
            assert scale[0] == 0.0 and scale[-1] == 1.0
            assert scale == sorted(scale)
            for boundary in scale[1:-1]:
                # Every boundary is k / 2^m for some integers k, m.
                value = boundary
                for _ in range(40):
                    if value == int(value):
                        break
                    value *= 2
                assert value == int(value)

    def test_clustered_data_builds_overflow_chains(self):
        """PLOP's weakness: clusters make long chains."""
        tight = [(0.5 + i * 1e-6, 0.5 + i * 1e-6) for i in range(300)]
        plop = build(tight)
        longest = max(len(b.chain) for b in plop._grid.buckets.values())
        assert longest >= 2

    def test_bucket_addressing_is_consistent(self):
        plop = build(make_points(1000, seed=5))
        grid = plop._grid
        for idx, bucket in grid.buckets.items():
            for pid in bucket.chain:
                for point, _ in plop.store._objects[pid].records:
                    assert grid.address(point) == idx


class TestGridCore:
    def test_index_range_boundaries(self):
        grid = _PlopGrid(PageStore(), 2, 8, key_of=lambda r: r[0])
        grid.slices[0] = [0.0, 0.25, 0.5, 0.75, 1.0]
        assert list(grid.index_range(0, 0.0, 1.0)) == [0, 1, 2, 3]
        assert list(grid.index_range(0, 0.3, 0.6)) == [1, 2]
        assert list(grid.index_range(0, 0.5, 0.5)) == [2]
        assert list(grid.index_range(0, 0.25, 0.25)) == [1]

    def test_read_chain_missing_bucket(self):
        grid = _PlopGrid(PageStore(), 2, 8, key_of=lambda r: r[0])
        assert grid.read_chain((5, 5)) == []


class TestQuantileHashing:
    def build(self, points):
        from repro.pam.plop import QuantileHashing

        plop = QuantileHashing(PageStore(), 2)
        for i, p in enumerate(points):
            plop.insert(p, i)
        return plop

    def test_correct_on_uniform(self):
        points = make_points(800, seed=6)
        check_pam_against_oracle(self.build(points), points, STANDARD_QUERIES)

    def test_correct_on_clusters(self):
        points = make_clustered_points(700, seed=7)
        check_pam_against_oracle(self.build(points), points, STANDARD_QUERIES)

    def test_boundaries_follow_the_data(self):
        """Quantile boundaries land where the data is, not at midpoints."""
        import random

        rng = random.Random(8)
        points = list(dict.fromkeys((rng.random() * 0.1, rng.random()) for _ in range(2000)))
        plop = self.build(points)
        interior = plop._grid.slices[0][1:-1]
        assert interior, "no expansions happened"
        # Most x-boundaries fall inside the populated strip [0, 0.1].
        inside = sum(1 for b in interior if b <= 0.1 + 1e-9)
        assert inside >= len(interior) / 2

    def test_invalid_strategy(self):
        from repro.pam.plop import _PlopGrid

        with pytest.raises(ValueError):
            _PlopGrid(PageStore(), 2, 8, key_of=lambda r: r[0], split_strategy="mean")
