"""Backend equivalence (ISSUE satellite: sim vs disk, bit for bit).

The durable backend must be *observationally identical* to the
simulated store: same query results, same charged
:class:`~repro.core.stats.AccessStats`, same explain traces, same
structure snapshots — the paper's tables cannot depend on which backend
produced them.  This is equivalence by construction
(:class:`~repro.storage.disk.DiskPageStore` reuses every charging path
of the base class), and these tests pin it empirically for one hashing
PAM (GRID-1), one tree PAM with ``pack()`` (BUDDY+) and one SAM (R) at
both paper page sizes, with a pool small enough that the disk runs
genuinely evict.
"""

from __future__ import annotations

import pytest

from repro.geometry.rect import Rect
from repro.obs.explain import ExplainRecorder
from repro.query.driver import run_query_file
from repro.storage.disk import DiskPageStore
from repro.storage.factory import make_store
from repro.verify.fuzz import STRUCTURES, make_ops

EQUIV_STRUCTURES = ("GRID-1", "BUDDY+", "R")
PAGE_SIZES = (512, 8192)
POOL = 8  # far below the built page count at 512 B: evictions are real
N_OPS = 600


def _normalise(result):
    return sorted(result, key=repr) if isinstance(result, list) else result


def _apply_measured(am, kind: str, op: list):
    """Run one fuzz op; return ``(charged cost, normalised outcome)``."""
    stats = am.store.stats
    before = stats.total
    tag = op[0]
    if kind == "pam":
        if tag == "insert":
            out = am.insert(tuple(op[1]), op[2])
        elif tag == "delete":
            out = am.delete(tuple(op[1]), op[2])
        elif tag == "pack":
            out = am.pack()
        elif tag == "range":
            out = am.range_query(Rect(tuple(op[1]), tuple(op[2])))
        elif tag == "exact":
            out = am.exact_match(tuple(op[1]))
        else:  # "pm"
            out = am.partial_match({axis: value for axis, value in op[1]})
    else:
        if tag == "insert":
            out = am.insert(Rect(tuple(op[1]), tuple(op[2])), op[3])
        elif tag == "delete":
            out = am.delete(Rect(tuple(op[1]), tuple(op[2])), op[3])
        elif tag == "point":
            out = am.point_query(tuple(op[1]))
        else:  # intersection / containment / enclosure
            out = getattr(am, tag)(Rect(tuple(op[1]), tuple(op[2])))
    return stats.total - before, _normalise(out)


def _trace_queries(kind: str):
    rects = [
        Rect((0.1 * i, 0.05 * i), (0.1 * i + 0.2, 0.05 * i + 0.3)) for i in range(8)
    ]
    if kind == "pam":
        return "range", rects, "range_query"
    return "intersection", rects, "intersection"


def _run_backend(store, spec, ops):
    """Build + query one backend; return every observable artefact."""
    am = spec["factory"](store)
    outcomes = [_apply_measured(am, spec["kind"], op) for op in ops]
    am.audit()
    qkind, queries, op_name = _trace_queries(spec["kind"])
    recorder = ExplainRecorder(spec["kind"])
    query_outcomes = run_query_file(
        am, qkind, queries, getattr(am, op_name), explain=recorder
    )
    return {
        "outcomes": outcomes,
        "stats": store.stats.as_dict(),
        "snapshot": am.snapshot(),
        "records": sorted(am.iter_records(), key=repr),
        "trace": recorder.to_trace(),
        "query_outcomes": [(c, _normalise(r)) for c, r in query_outcomes],
    }


@pytest.mark.parametrize("page_size", PAGE_SIZES)
@pytest.mark.parametrize("name", EQUIV_STRUCTURES)
def test_disk_backend_is_bit_identical(name, page_size, tmp_path):
    spec = STRUCTURES[name]
    ops = make_ops(spec, N_OPS, seed=31)

    sim = make_store(page_size, backend="sim")
    sim_run = _run_backend(sim, spec, ops)

    disk = DiskPageStore(
        tmp_path / "store", page_size=page_size, pool_pages=POOL, fsync=False
    )
    disk_run = _run_backend(disk, spec, ops)

    for key in sim_run:
        assert disk_run[key] == sim_run[key], f"{key} diverged between backends"

    if page_size == 512:
        # The comparison only means something if the disk run was truly
        # out of core: the build must have gone through the pool.
        assert len(sim.page_ids()) > POOL
        assert disk.pool.evictions > 0
    disk.close()


@pytest.mark.parametrize("name", EQUIV_STRUCTURES)
def test_equivalence_survives_reopen(name, tmp_path):
    """Close/recover mid-stream: the recovered store keeps answering
    exactly like the simulated one."""
    spec = STRUCTURES[name]
    ops = make_ops(spec, N_OPS, seed=77)
    half = N_OPS // 2

    sim = make_store(512, backend="sim")
    sim_am = spec["factory"](sim)
    for op in ops[:half]:
        _apply_measured(sim_am, spec["kind"], op)

    from repro.storage.disk import restore_method, snapshot_method

    disk = DiskPageStore(tmp_path / "store", pool_pages=POOL, fsync=False)
    disk_am = spec["factory"](disk)
    for op in ops[:half]:
        _apply_measured(disk_am, spec["kind"], op)
    disk.commit(meta=snapshot_method(disk_am))
    charged_so_far = disk.stats.snapshot()
    disk.close()

    disk = DiskPageStore(tmp_path / "store", pool_pages=POOL, fsync=False)
    # Charged counters are process state, not durable state; carry them
    # over so the post-reopen totals stay comparable with the sim run.
    for field, value in charged_so_far.as_dict().items():
        setattr(disk.stats, field, value)
    disk_am = restore_method(disk, disk.meta_blob)

    # A restart legitimately cools the paper's search-path buffer; put
    # the sim store in the same cold state so the comparison is
    # restart-vs-restart, not restart-vs-warm-buffer.
    sim._buffer_prev = set()
    sim._buffer_cur = {}
    sim._written_this_op = set()

    sim_rest = [_apply_measured(sim_am, spec["kind"], op) for op in ops[half:]]
    disk_rest = [_apply_measured(disk_am, spec["kind"], op) for op in ops[half:]]
    assert disk_rest == sim_rest
    assert disk.stats.as_dict() == sim.stats.as_dict()
    assert disk_am.snapshot() == sim_am.snapshot()
    disk.close()
