"""Unit and property tests for binary-partition blocks."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import blocks
from repro.geometry.rect import Rect

unit_floats = st.floats(0.0, 1.0, exclude_max=True, allow_nan=False)
bit_tuples = st.lists(st.integers(0, 1), max_size=20).map(tuple)


class TestBlockRect:
    def test_root_is_unit(self):
        assert blocks.block_rect((), 2) == Rect.unit(2)

    def test_first_halving_cuts_axis_zero(self):
        assert blocks.block_rect((0,), 2) == Rect((0.0, 0.0), (0.5, 1.0))
        assert blocks.block_rect((1,), 2) == Rect((0.5, 0.0), (1.0, 1.0))

    def test_second_halving_cuts_axis_one(self):
        assert blocks.block_rect((1, 1), 2) == Rect((0.5, 0.5), (1.0, 1.0))

    def test_axes_cycle(self):
        r = blocks.block_rect((0, 0, 1), 2)
        assert r == Rect((0.25, 0.0), (0.5, 0.5))

    def test_split_axis(self):
        assert blocks.split_axis((), 2) == 0
        assert blocks.split_axis((0,), 2) == 1
        assert blocks.split_axis((0, 1), 2) == 0
        assert blocks.split_axis((0, 1, 0), 3) == 0

    @given(bit_tuples)
    def test_children_partition_parent(self, bits):
        parent = blocks.block_rect(bits, 2)
        left = blocks.block_rect(bits + (0,), 2)
        right = blocks.block_rect(bits + (1,), 2)
        assert parent.contains_rect(left) and parent.contains_rect(right)
        assert left.area() + right.area() == pytest.approx(parent.area())
        axis = blocks.split_axis(bits, 2)
        assert left.hi[axis] == right.lo[axis]


class TestPointBits:
    def test_depth_zero(self):
        assert blocks.bits_of_point((0.3, 0.7), 2, 0) == ()

    def test_boundary_point_goes_upper(self):
        assert blocks.bits_of_point((0.5, 0.0), 2, 1) == (1,)
        assert blocks.bits_of_point((0.49999, 0.0), 2, 1) == (0,)

    def test_known_address(self):
        # (0.25, 0.75): axis0 lower then upper-half-of-lower; axis1 upper.
        assert blocks.bits_of_point((0.25, 0.75), 2, 4) == (0, 1, 1, 1)

    def test_out_of_cube_raises(self):
        with pytest.raises(ValueError):
            blocks.bits_of_point((-0.1, 0.5), 2, 4)

    def test_too_deep_raises(self):
        with pytest.raises(ValueError):
            blocks.bits_of_point((0.5, 0.5), 2, blocks.MAX_DEPTH + 1)

    @given(unit_floats, unit_floats, st.integers(0, 24))
    def test_point_inside_its_block(self, x, y, depth):
        bits = blocks.bits_of_point((x, y), 2, depth)
        assert len(bits) == depth
        assert blocks.block_rect(bits, 2).contains_point((x, y))

    @given(unit_floats, unit_floats, st.integers(1, 24))
    def test_addresses_are_prefix_consistent(self, x, y, depth):
        deep = blocks.bits_of_point((x, y), 2, depth)
        shallow = blocks.bits_of_point((x, y), 2, depth - 1)
        assert blocks.is_prefix(shallow, deep)


class TestPrefixAlgebra:
    def test_is_prefix(self):
        assert blocks.is_prefix((), (0, 1))
        assert blocks.is_prefix((0, 1), (0, 1))
        assert not blocks.is_prefix((0, 1), (0,))
        assert not blocks.is_prefix((1,), (0, 1))

    def test_common_prefix(self):
        assert blocks.common_prefix((0, 1, 0), (0, 1, 1)) == (0, 1)
        assert blocks.common_prefix((1,), (0,)) == ()
        assert blocks.common_prefix((0, 1), (0, 1)) == (0, 1)

    @given(bit_tuples, bit_tuples)
    def test_prefix_containment_matches_geometry(self, a, b):
        ra, rb = blocks.block_rect(a, 2), blocks.block_rect(b, 2)
        if blocks.is_prefix(a, b):
            assert ra.contains_rect(rb)
        elif blocks.is_prefix(b, a):
            assert rb.contains_rect(ra)
        else:
            # Unrelated blocks share at most a boundary.
            inter = ra.intersection(rb)
            assert inter is None or inter.area() == 0.0

    @given(bit_tuples, bit_tuples)
    def test_common_prefix_contains_both(self, a, b):
        c = blocks.common_prefix(a, b)
        assert blocks.is_prefix(c, a) and blocks.is_prefix(c, b)


class TestMinEnclosingBlock:
    def test_whole_space(self):
        assert blocks.min_enclosing_block(Rect.unit(2), 2) == ()

    def test_tight_block(self):
        r = Rect((0.26, 0.6), (0.49, 0.9))
        bits = blocks.min_enclosing_block(r, 2)
        assert blocks.block_rect(bits, 2).contains_rect(r)
        # The next halving must cut the rectangle.
        child0 = blocks.block_rect(bits + (0,), 2)
        child1 = blocks.block_rect(bits + (1,), 2)
        assert not child0.contains_rect(r) and not child1.contains_rect(r)

    def test_degenerate_rect_is_deep(self):
        bits = blocks.min_enclosing_block(Rect.from_point((0.3, 0.3)), 2)
        assert len(bits) == blocks.MAX_DEPTH

    def test_rect_touching_one(self):
        bits = blocks.min_enclosing_block(Rect((0.9, 0.9), (1.0, 1.0)), 2)
        assert blocks.block_rect(bits, 2).contains_rect(Rect((0.9, 0.9), (0.999, 0.999)))

    @given(unit_floats, unit_floats, unit_floats, unit_floats)
    def test_minimality(self, a, b, c, d):
        r = Rect((min(a, b), min(c, d)), (max(a, b), max(c, d)))
        bits = blocks.min_enclosing_block(r, 2, max_depth=24)
        block = blocks.block_rect(bits, 2)
        # Containment is with respect to the half-open addressing:
        # every corner's address must have `bits` as prefix.
        lo_bits = blocks.bits_of_point(r.lo, 2, 24)
        assert blocks.is_prefix(bits, lo_bits)
        assert block.contains_point(r.lo)
