"""Tests for counters, histograms, timers and the registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_ACCESS_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_inc(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotone(self):
        with pytest.raises(ValueError):
            Counter("ops").inc(-1)


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram("empty")
        s = h.summary()
        assert s["count"] == 0 and s["p99"] == 0.0 and s["mean"] == 0.0

    def test_bucketing(self):
        h = Histogram("x", buckets=(1, 2, 4))
        for v in (0, 1, 2, 3, 4, 100):
            h.observe(v)
        # le=1: {0,1}, le=2: {2}, le=4: {3,4}, +Inf: {100}
        assert h.bucket_counts == [2, 1, 2, 1]
        bucket_dump = h.as_dict()["buckets"]
        assert bucket_dump[-1]["le"] == "+Inf" and bucket_dump[-1]["count"] == 1

    def test_exact_percentiles_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(0) == 1  # lowest sample

    def test_percentiles_unsorted_input(self):
        h = Histogram("x")
        for v in (9, 1, 5, 3, 7):
            h.observe(v)
        assert h.percentile(50) == 5
        assert h.max == 9 and h.min == 1
        h.observe(2)  # stays correct after further inserts
        assert h.percentile(50) == 3

    def test_summary_fields(self):
        h = Histogram("x")
        for v in (2, 4, 6):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["sum"] == 12 and s["mean"] == 4.0
        assert s["min"] == 2 and s["max"] == 6

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=())
        with pytest.raises(ValueError):
            Histogram("x", buckets=(4, 2, 1))

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_ACCESS_BUCKETS) == sorted(DEFAULT_ACCESS_BUCKETS)


class TestTimer:
    def test_accumulates(self):
        t = Timer("build")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.seconds >= 0.0
        assert math.isfinite(t.seconds)


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert r.timer("t") is r.timer("t")

    def test_as_dict_shape(self):
        r = MetricsRegistry()
        r.counter("ops").inc(3)
        r.histogram("accesses").observe(7)
        with r.timer("wall"):
            pass
        d = r.as_dict()
        assert d["counters"]["ops"]["value"] == 3
        assert d["histograms"]["accesses"]["count"] == 1
        assert d["timers"]["wall"]["count"] == 1

    def test_render_mentions_every_metric(self):
        r = MetricsRegistry()
        r.counter("splits").inc()
        r.histogram("accesses_per_query").observe(3)
        with r.timer("build_seconds"):
            pass
        text = r.render()
        for name in ("splits", "accesses_per_query", "build_seconds"):
            assert name in text
        assert "p99" in text
