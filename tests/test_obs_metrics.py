"""Tests for counters, histograms, timers and the registry."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_ACCESS_BUCKETS,
    LATENCY_BUCKETS_SECONDS,
    SIZE_BUCKETS_BYTES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_inc(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotone(self):
        with pytest.raises(ValueError):
            Counter("ops").inc(-1)


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram("empty")
        s = h.summary()
        assert s["count"] == 0 and s["p99"] == 0.0 and s["mean"] == 0.0

    def test_bucketing(self):
        h = Histogram("x", buckets=(1, 2, 4))
        for v in (0, 1, 2, 3, 4, 100):
            h.observe(v)
        # le=1: {0,1}, le=2: {2}, le=4: {3,4}, +Inf: {100}
        assert h.bucket_counts == [2, 1, 2, 1]
        bucket_dump = h.as_dict()["buckets"]
        assert bucket_dump[-1]["le"] == "+Inf" and bucket_dump[-1]["count"] == 1

    def test_exact_percentiles_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100
        assert h.percentile(0) == 1  # lowest sample

    def test_percentiles_unsorted_input(self):
        h = Histogram("x")
        for v in (9, 1, 5, 3, 7):
            h.observe(v)
        assert h.percentile(50) == 5
        assert h.max == 9 and h.min == 1
        h.observe(2)  # stays correct after further inserts
        assert h.percentile(50) == 3

    def test_summary_fields(self):
        h = Histogram("x")
        for v in (2, 4, 6):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3 and s["sum"] == 12 and s["mean"] == 4.0
        assert s["min"] == 2 and s["max"] == 6

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=())
        with pytest.raises(ValueError):
            Histogram("x", buckets=(4, 2, 1))

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_ACCESS_BUCKETS) == sorted(DEFAULT_ACCESS_BUCKETS)

    def test_latency_preset_ascending_and_spans_us_to_seconds(self):
        assert list(LATENCY_BUCKETS_SECONDS) == sorted(LATENCY_BUCKETS_SECONDS)
        assert LATENCY_BUCKETS_SECONDS[0] <= 1e-6  # SSD-cache-hit preads
        assert LATENCY_BUCKETS_SECONDS[-1] >= 10.0  # multi-second checkpoints
        assert list(SIZE_BUCKETS_BYTES) == sorted(SIZE_BUCKETS_BYTES)

    def test_latency_preset_percentiles_stay_exact(self):
        """Bucket boundaries never coarsen percentiles: observations are
        kept verbatim, so p99 of a latency histogram is the exact
        nearest-rank sample even between bucket bounds."""
        h = Histogram("fsync_seconds", buckets=LATENCY_BUCKETS_SECONDS)
        samples = [0.0000017 * (i + 1) for i in range(100)]  # off-boundary
        for v in samples:
            h.observe(v)
        assert h.percentile(50) == samples[49]
        assert h.percentile(99) == samples[98]
        assert h.percentile(100) == samples[99]
        # and the bucket counts add up to the sample count regardless
        assert sum(h.bucket_counts) == 100


class TestGauge:
    def test_direct_set(self):
        g = Gauge("pool.resident")
        assert g.value == 0.0
        g.set(7)
        assert g.value == 7.0

    def test_callback_gauge_reads_live_state(self):
        frames = []
        g = Gauge("pool.resident", fn=lambda: len(frames))
        assert g.value == 0.0
        frames.extend([1, 2, 3])
        assert g.value == 3.0

    def test_set_on_callback_gauge_rejected(self):
        g = Gauge("x", fn=lambda: 1)
        with pytest.raises(ValueError, match="callback"):
            g.set(5)

    def test_rebinding_latest_wins(self):
        g = Gauge("x")
        g.set(2)
        g.set_function(lambda: 9)
        assert g.value == 9.0


class TestTimer:
    def test_accumulates(self):
        t = Timer("build")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.seconds >= 0.0
        assert math.isfinite(t.seconds)


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h") is r.histogram("h")
        assert r.timer("t") is r.timer("t")
        assert r.gauge("g") is r.gauge("g")

    def test_gauge_rebind_through_registry(self):
        r = MetricsRegistry()
        g = r.gauge("pool.resident", lambda: 1)
        assert r.gauge("pool.resident", lambda: 5) is g
        assert g.value == 5.0

    def test_as_dict_and_render_include_gauges(self):
        r = MetricsRegistry()
        assert "gauges" not in r.as_dict()  # additive: only when present
        r.gauge("pool.resident").set(4)
        assert r.as_dict()["gauges"]["pool.resident"]["value"] == 4.0
        assert "pool.resident" in r.render()

    def test_as_dict_shape(self):
        r = MetricsRegistry()
        r.counter("ops").inc(3)
        r.histogram("accesses").observe(7)
        with r.timer("wall"):
            pass
        d = r.as_dict()
        assert d["counters"]["ops"]["value"] == 3
        assert d["histograms"]["accesses"]["count"] == 1
        assert d["timers"]["wall"]["count"] == 1

    def test_render_mentions_every_metric(self):
        r = MetricsRegistry()
        r.counter("splits").inc()
        r.histogram("accesses_per_query").observe(3)
        with r.timer("build_seconds"):
            pass
        text = r.render()
        for name in ("splits", "accesses_per_query", "build_seconds"):
            assert name in text
        assert "p99" in text
