"""Tests for GRID, the 2-level grid file."""

from repro.geometry.rect import Rect
from repro.pam.twolevelgrid import TwoLevelGridFile, _SubGrid
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points, store=None):
    grid = TwoLevelGridFile(store or PageStore(), 2)
    for i, p in enumerate(points):
        grid.insert(p, i)
    return grid


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(700, seed=2)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal(self):
        points = [(i / 700.0, i / 700.0) for i in range(700)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_sorted_insertion(self):
        points = sorted(make_points(600, seed=7))
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)


class TestStructure:
    def test_height_is_two(self):
        assert build(make_points(300)).directory_height == 2

    def test_root_partitions_subgrids(self):
        grid = build(make_points(4000, seed=3))
        store = grid.store
        # Every subgrid page is reachable from exactly one root box.
        subgrids = [
            pid for pid in store.page_ids() if store.kind(pid) is PageKind.DIRECTORY
        ]
        assert set(grid._root.boxes) == set(subgrids)
        assert len(subgrids) >= 2

    def test_subgrid_pages_fit_their_page(self):
        grid = build(make_points(1500, seed=4))
        store = grid.store
        for pid in store.page_ids():
            obj = store._objects[pid]
            if isinstance(obj, _SubGrid):
                assert obj.layer.byte_size() <= grid._subgrid_payload

    def test_data_pages_fit(self):
        grid = build(make_points(800, seed=5))
        store = grid.store
        for pid in store.page_ids():
            if store.kind(pid) is PageKind.DATA:
                assert len(store._objects[pid].records) <= grid.record_capacity

    def test_subgrid_regions_tile_the_space(self):
        grid = build(make_clustered_points(1500, seed=6))
        boxes = [grid._root.box_rect(pid) for pid in grid._root.boxes]
        assert sum(b.area() for b in boxes) - 1.0 < 1e-9
        # Any probe point falls in exactly one subgrid responsibility.
        for probe in [(0.1, 0.1), (0.5, 0.5), (0.9, 0.2), (0.33, 0.77)]:
            assert grid._root.payload_of_point(probe) in grid._root.boxes

    def test_first_level_pages_reported(self):
        grid = build(make_points(1200, seed=8))
        m = grid.metrics()
        assert m.pinned_pages == grid.first_level_pages >= 1

    def test_in_core_first_level_costs_nothing(self):
        grid = build(make_points(500, seed=9))
        store = grid.store
        store.begin_operation()
        store.begin_operation()
        before = store.stats.total
        grid.exact_match((0.123, 0.456))
        # Subgrid page + data page only; the first level is in memory.
        assert store.stats.total - before <= 2


class TestPathological:
    def test_duplicate_free_near_points(self):
        grid = TwoLevelGridFile(PageStore(), 2)
        base = 0.500000001
        points = [(base + i * 1e-9, base - i * 1e-9) for i in range(60)]
        for i, p in enumerate(points):
            grid.insert(p, i)
        got = sorted(grid.range_query(Rect((0.49, 0.49), (0.51, 0.51))))
        assert len(got) == 60

    def test_all_points_on_one_vertical_line(self):
        grid = TwoLevelGridFile(PageStore(), 2)
        points = [(0.25, i / 300.0) for i in range(300)]
        for i, p in enumerate(points):
            grid.insert(p, i)
        hits = grid.partial_match({0: 0.25})
        assert len(hits) == 300
