"""Tests for run reports, their schema, the traced runners and the CLI."""

import copy
import json

import pytest

from repro.core.comparison import build_pam, build_sam, run_pam_queries, run_sam_queries
from repro.obs.export import (
    RUN_REPORT_SCHEMA,
    RunReport,
    summarise_spans,
    validate_run_report,
)
from repro.obs.report import diff_reports, main
from repro.obs.runner import traced_pam_run, traced_sam_run
from repro.obs.tracer import Span
from repro.pam.buddytree import BuddyTree
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.sam.rtree import RTree

from tests.conftest import make_points, make_rects

PAM_FACTORIES = {
    "GRID": lambda s, dims=2: TwoLevelGridFile(s, dims),
    "BUDDY": lambda s, dims=2: BuddyTree(s, dims),
}
SAM_FACTORIES = {"R-Tree": lambda s, dims=2: RTree(s, dims)}


@pytest.fixture(scope="module")
def pam_run():
    points = make_points(300, seed=3)
    results, report = traced_pam_run(PAM_FACTORIES, points, seed=19, label="unit")
    return points, results, report


class TestSummariseSpans:
    def test_groups_by_structure_and_op(self):
        spans = [
            Span("A", "insert", 0, data_writes=1),
            Span("A", "insert", 1, data_writes=2),
            Span("A", "query", 0, data_reads=5),
            Span("B", "query", 0, data_reads=7),
        ]
        hists = summarise_spans(spans)
        assert hists["A"]["insert"].count == 2
        assert hists["A"]["insert"].sum == 3
        assert hists["A"]["query"].max == 5
        assert hists["B"]["query"].mean == 7


class TestTracedRuns:
    def test_results_identical_to_untraced(self, pam_run):
        points, results, _ = pam_run
        for name, factory in PAM_FACTORIES.items():
            pam = build_pam(factory, points)
            untraced = run_pam_queries(pam, seed=19)
            assert untraced.query_costs == results[name].query_costs
            assert untraced.query_results == results[name].query_results

    def test_totals_exactly_match_untraced_access_stats(self, pam_run):
        """Acceptance: report totals == untraced AccessStats, same seed."""
        points, _, report = pam_run
        for name, factory in PAM_FACTORIES.items():
            pam = build_pam(factory, points)
            run_pam_queries(pam, seed=19)
            assert report.totals(name) == pam.store.stats

    def test_report_query_histograms_consistent_with_means(self, pam_run):
        _, results, report = pam_run
        for name, result in results.items():
            for label, cost in result.query_costs.items():
                hist = report.structures[name]["queries"][label]["accesses"]
                assert hist["mean"] == pytest.approx(cost)
                assert hist["count"] == 20
                for key in ("p50", "p90", "p99", "max"):
                    assert hist[key] >= 0

    def test_insert_histogram_counts_every_insert(self, pam_run):
        points, _, report = pam_run
        for entry in report.structures.values():
            assert entry["build"]["accesses_per_insert"]["count"] == len(points)

    def test_sam_run(self):
        rects = make_rects(150, seed=9)
        results, report = traced_sam_run(SAM_FACTORIES, rects, seed=23)
        sam = build_sam(SAM_FACTORIES["R-Tree"], rects)
        run_sam_queries(sam, seed=23)
        assert report.totals("R-Tree") == sam.store.stats
        assert report.kind == "sam"
        assert set(report.query_labels("R-Tree")) == {
            "point",
            "intersection",
            "enclosure",
            "containment",
        }


class TestRunReportSerialisation:
    def test_roundtrip(self, pam_run, tmp_path):
        _, _, report = pam_run
        path = report.save(tmp_path / "run.json")
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.schema == RUN_REPORT_SCHEMA

    def test_validate_ok(self, pam_run):
        _, _, report = pam_run
        assert validate_run_report(report.to_dict()) == []

    def test_validate_catches_problems(self, pam_run):
        _, _, report = pam_run
        data = copy.deepcopy(report.to_dict())
        data["schema"] = "bogus/v0"
        del data["structures"]["GRID"]["totals"]["dir_writes"]
        problems = validate_run_report(data)
        assert any("schema" in p for p in problems)
        assert any("totals" in p for p in problems)
        with pytest.raises(ValueError):
            RunReport.from_dict(data)

    def test_validate_not_an_object(self):
        assert validate_run_report([]) == ["report is not a JSON object"]


class TestSnapshotFields:
    def test_traced_run_attaches_valid_snapshots(self, pam_run):
        from repro.obs.structure import validate_snapshot

        _, _, report = pam_run
        for name, entry in report.structures.items():
            assert validate_snapshot(entry["snapshot"]) == [], name
        metrics = report.redundancy_metrics()
        assert set(metrics) == set(PAM_FACTORIES)
        for red in metrics.values():
            assert red["duplication_factor"] == 1.0

    def test_text_render_includes_redundancy(self, pam_run):
        _, _, report = pam_run
        assert "redundancy dup=" in report.render()

    def test_markdown_render_includes_redundancy_table(self, pam_run):
        _, _, report = pam_run
        out = report.render("markdown")
        assert "| structure | duplication" in out

    def test_pre_snapshot_reports_render_without_snapshots(self, pam_run):
        """Acceptance: pre-v6 reports (no snapshot field) never KeyError."""
        _, _, report = pam_run
        data = copy.deepcopy(report.to_dict())
        for entry in data["structures"].values():
            entry.pop("snapshot", None)
        old = RunReport.from_dict(data)
        assert validate_run_report(data) == []
        assert old.redundancy_metrics() == {}
        assert "redundancy dup=" not in old.render()
        assert "| duplication" not in old.render("markdown")

    def test_validate_flags_broken_snapshot(self, pam_run):
        _, _, report = pam_run
        data = copy.deepcopy(report.to_dict())
        data["structures"]["GRID"]["snapshot"] = {"schema": "bogus"}
        problems = validate_run_report(data)
        assert any("'GRID'].snapshot" in p for p in problems)


class TestCommittedReports:
    """Every RUN-*.json in results/ must load, validate and render."""

    def committed(self):
        from pathlib import Path

        results = Path(__file__).resolve().parent.parent / "results"
        return sorted(results.glob("RUN-*.json"))

    def test_round_trip_and_render(self):
        paths = self.committed()
        assert paths, "no committed run reports found"
        for path in paths:
            report = RunReport.load(path)
            assert validate_run_report(report.to_dict()) == [], path.name
            assert report.to_dict() == RunReport.from_dict(
                report.to_dict()
            ).to_dict(), path.name
            assert report.render(), path.name
            assert report.render("markdown"), path.name
            assert report.access_totals(), path.name
            report.redundancy_metrics()  # absent snapshots: no KeyError


class TestReportCli:
    def test_prints_percentiles_per_structure(self, pam_run, tmp_path, capsys):
        """Acceptance: the CLI prints per-structure p50/p90/p99."""
        _, _, report = pam_run
        path = report.save(tmp_path / "run.json")
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        for name in PAM_FACTORIES:
            assert name in out
        for column in ("p50", "p90", "p99", "max", "mean"):
            assert column in out
        assert "range_10%" in out

    def test_validate_flag(self, pam_run, tmp_path, capsys):
        _, _, report = pam_run
        path = report.save(tmp_path / "run.json")
        assert main(["--validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
        assert main(["--validate", str(broken)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_diff_flags_regressions(self, pam_run, tmp_path, capsys):
        _, _, report = pam_run
        old = report.save(tmp_path / "old.json")
        worse = copy.deepcopy(report.to_dict())
        worse["structures"]["GRID"]["queries"]["range_1%"]["accesses"]["mean"] *= 2
        new = tmp_path / "new.json"
        new.write_text(json.dumps(worse), encoding="utf-8")

        assert main([str(old), str(new)]) == 0  # no threshold: report only
        assert main([str(old), str(new), "--fail-threshold", "5"]) == 2
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "+100.0%" in out

    def test_diff_rows(self, pam_run):
        _, _, report = pam_run
        rows = diff_reports(report, report)
        assert rows and all(row["delta_pct"] == 0.0 for row in rows)
