"""Tests for the traced runners' ledger plumbing and artefact wiring."""

import pytest

from repro.obs.export import JsonlTraceSink
from repro.obs.ledger import Ledger
from repro.obs.runner import record_to_ledger, traced_pam_run, traced_sam_run
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.sam.rtree import RTree

from tests.conftest import make_points, make_rects

PAM_FACTORIES = {"GRID": lambda s, dims=2: TwoLevelGridFile(s, dims)}
SAM_FACTORIES = {"R-Tree": lambda s, dims=2: RTree(s, dims)}


@pytest.fixture(autouse=True)
def no_ambient_ledger(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)


class TestLedgerPlumbing:
    def test_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        points = make_points(120, seed=3)
        traced_pam_run(PAM_FACTORIES, points, seed=19, label="unit")
        assert not list(tmp_path.rglob("*.jsonl"))

    def test_explicit_path_records_entry(self, tmp_path):
        path = tmp_path / "L.jsonl"
        points = make_points(120, seed=3)
        _, report = traced_pam_run(
            PAM_FACTORIES, points, seed=19, label="unit", ledger=str(path)
        )
        entries, problems = Ledger(path).read()
        assert problems == []
        assert len(entries) == 1
        entry = entries[0]
        assert entry.label == "unit"
        assert entry.source == "repro.obs.runner"
        assert entry.fingerprint["scale"] == len(points)
        assert entry.fingerprint["seed"] == 19
        # Timings in the entry mirror the report's timers.
        grid = entry.metrics["structures"]["GRID"]
        assert grid["build_seconds"] == report.structures["GRID"]["build"]["seconds"]
        # Access totals ride along for the gate's drift check, with the
        # snapshot's redundancy block folded in so drift in either trips it.
        expected = dict(report.structures["GRID"]["totals"])
        expected["redundancy"] = dict(
            report.structures["GRID"]["snapshot"]["redundancy"]
        )
        assert entry.totals["GRID"] == expected

    def test_env_opt_in(self, tmp_path, monkeypatch):
        path = tmp_path / "ENV.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        rects = make_rects(100, seed=4)
        traced_sam_run(SAM_FACTORIES, rects, seed=23, label="sam-unit")
        entries = Ledger(path).entries()
        assert len(entries) == 1
        assert entries[0].meta["kind"] == "sam"

    def test_false_disables_even_with_env(self, tmp_path, monkeypatch):
        path = tmp_path / "ENV.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        points = make_points(100, seed=3)
        traced_pam_run(PAM_FACTORIES, points, seed=19, ledger=False)
        assert not path.exists()

    def test_record_to_ledger_workers_in_fingerprint(self, tmp_path):
        points = make_points(100, seed=3)
        _, report = traced_pam_run(PAM_FACTORIES, points, seed=19, label="w")
        path = tmp_path / "L.jsonl"
        record_to_ledger(report, ledger=str(path), workers=4)
        (entry,) = Ledger(path).entries()
        assert entry.fingerprint["workers"] == 4

    def test_identity_runs_pass_the_gate(self, tmp_path):
        from repro.obs.ledger import gate_run

        path = tmp_path / "L.jsonl"
        points = make_points(100, seed=3)
        _, report = traced_pam_run(PAM_FACTORIES, points, seed=19, label="a")
        record_to_ledger(report, ledger=str(path))
        record_to_ledger(report, ledger=str(path))
        result = gate_run(Ledger(path), max_regression=50)
        assert result.ok, result.failures


class TestSinkPlumbing:
    def test_runner_streams_spans_to_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        points = make_points(100, seed=3)
        with JsonlTraceSink(path) as sink:
            traced_pam_run(
                PAM_FACTORIES,
                points,
                seed=19,
                record_events=True,
                sink=sink,
            )
            assert sink.spans_written >= len(points)
        assert path.exists()


class TestParallelLedger:
    def test_parallel_run_records_with_worker_count(self, tmp_path):
        from repro.parallel.runner import traced_parallel_run

        path = tmp_path / "L.jsonl"
        points = make_points(150, seed=3)
        traced_parallel_run(
            "pam",
            ["GRID"],
            points,
            seed=19,
            label="par",
            workers=2,
            ledger=str(path),
        )
        (entry,) = Ledger(path).entries()
        assert entry.fingerprint["workers"] == 2
        assert entry.label == "par"
