"""Hypothesis property tests: every structure equals the oracle.

The property is the fundamental contract of an access method: for any
set of distinct points (or rectangles) and any query, the structure
returns exactly what a linear scan returns.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.testbed import standard_pam_factories, standard_sam_factories
from repro.geometry.rect import Rect
from repro.storage.pagestore import PageStore

coordinate = st.floats(0.0, 1.0, exclude_max=True, allow_nan=False)
point_sets = st.lists(
    st.tuples(coordinate, coordinate), min_size=1, max_size=120, unique=True
)


@st.composite
def query_rect(draw):
    a, b = draw(coordinate), draw(coordinate)
    c, d = draw(coordinate), draw(coordinate)
    return Rect((min(a, b), min(c, d)), (max(a, b), max(c, d)))


@st.composite
def rect_sets(draw):
    n = draw(st.integers(1, 60))
    rects = []
    seen = set()
    for _ in range(n):
        r = draw(query_rect())
        if r not in seen:
            seen.add(r)
            rects.append(r)
    return rects


PAM_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestPamProperties:
    @PAM_SETTINGS
    @given(points=point_sets, query=query_rect())
    def test_all_pams_match_linear_scan(self, points, query):
        expected = sorted(
            (p, i) for i, p in enumerate(points) if query.contains_point(p)
        )
        for name, factory in standard_pam_factories().items():
            pam = factory(PageStore(), dims=2)
            for i, p in enumerate(points):
                pam.insert(p, i)
            assert sorted(pam.range_query(query)) == expected, name

    @PAM_SETTINGS
    @given(points=point_sets)
    def test_exact_match_finds_every_point(self, points):
        for name, factory in standard_pam_factories().items():
            pam = factory(PageStore(), dims=2)
            for i, p in enumerate(points):
                pam.insert(p, i)
            for i, p in enumerate(points[:10]):
                assert pam.exact_match(p) == [i], name

    @PAM_SETTINGS
    @given(points=point_sets)
    def test_metrics_invariants(self, points):
        for name, factory in standard_pam_factories().items():
            pam = factory(PageStore(), dims=2)
            for i, p in enumerate(points):
                pam.insert(p, i)
            m = pam.metrics()
            assert m.records == len(points), name
            assert 0.0 < m.storage_utilization <= 100.0, name
            assert m.data_pages >= 1, name
            assert m.height >= 0, name


class TestSamProperties:
    @PAM_SETTINGS
    @given(rects=rect_sets(), query=query_rect())
    def test_all_sams_match_linear_scan(self, rects, query):
        intersect = sorted(i for i, r in enumerate(rects) if r.intersects(query))
        contain = sorted(i for i, r in enumerate(rects) if query.contains_rect(r))
        enclose = sorted(i for i, r in enumerate(rects) if r.contains_rect(query))
        for name, factory in standard_sam_factories().items():
            sam = factory(PageStore(), dims=2)
            for i, r in enumerate(rects):
                sam.insert(r, i)
            assert sorted(sam.intersection(query)) == intersect, name
            assert sorted(sam.containment(query)) == contain, name
            assert sorted(sam.enclosure(query)) == enclose, name

    @PAM_SETTINGS
    @given(rects=rect_sets(), x=coordinate, y=coordinate)
    def test_all_sams_point_query(self, rects, x, y):
        expected = sorted(
            i for i, r in enumerate(rects) if r.contains_point((x, y))
        )
        for name, factory in standard_sam_factories().items():
            sam = factory(PageStore(), dims=2)
            for i, r in enumerate(rects):
                sam.insert(r, i)
            assert sorted(sam.point_query((x, y))) == expected, name


class TestFullMatrixProperties:
    """Every access method in the fuzz matrix obeys the oracle contract
    on the query types the older tests left uncovered: partial match for
    all PAMs, containment and enclosure for all SAMs."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(points=point_sets, axis=st.integers(0, 1), pick=st.integers(0, 10**6))
    def test_partial_match_on_every_pam(self, points, axis, pick):
        from repro.verify.fuzz import STRUCTURES

        value = points[pick % len(points)][axis]
        probe = 0.123456789  # an almost-certain miss, still in the cube
        expected = sorted(
            (p, i) for i, p in enumerate(points) if p[axis] == value
        )
        probe_expected = sorted(
            (p, i) for i, p in enumerate(points) if p[axis] == probe
        )
        for name, spec in STRUCTURES.items():
            if spec["kind"] != "pam":
                continue
            pam = spec["factory"](PageStore())
            for i, p in enumerate(points):
                pam.insert(p, i)
            assert sorted(pam.partial_match({axis: value})) == expected, name
            assert sorted(pam.partial_match({axis: probe})) == probe_expected, name

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rects=rect_sets(), query=query_rect())
    def test_containment_and_enclosure_on_every_sam(self, rects, query):
        from repro.verify.fuzz import STRUCTURES

        contain = sorted(i for i, r in enumerate(rects) if query.contains_rect(r))
        enclose = sorted(i for i, r in enumerate(rects) if r.contains_rect(query))
        for name, spec in STRUCTURES.items():
            if spec["kind"] != "sam":
                continue
            sam = spec["factory"](PageStore())
            for i, r in enumerate(rects):
                sam.insert(r, i)
            assert sorted(sam.containment(query)) == contain, name
            assert sorted(sam.enclosure(query)) == enclose, name


class TestDeletionProperties:
    @PAM_SETTINGS
    @given(points=point_sets, keep=st.integers(0, 50))
    def test_buddy_delete_then_query(self, points, keep):
        from repro.pam.buddytree import BuddyTree

        tree = BuddyTree(PageStore(), 2)
        for i, p in enumerate(points):
            tree.insert(p, i)
        removed = points[keep:]
        for offset, p in enumerate(removed):
            assert tree.delete(p, keep + offset)
        expected = sorted((p, i) for i, p in enumerate(points[:keep]))
        assert sorted(tree.range_query(Rect.unit(2))) == expected


class TestExtendedStructureProperties:
    """The post-paper structures obey the same oracle contract."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(points=point_sets, query=query_rect())
    def test_extended_pams_match_linear_scan(self, points, query):
        from repro import (
            KdBTree,
            MultilevelGridFile,
            QuantileHashing,
            TwinGridFile,
        )
        from repro.pam.bang import BangFile
        from repro.pam.hbtree import HBTree

        factories = {
            "KDB": lambda s: KdBTree(s, 2),
            "MLGF": lambda s: MultilevelGridFile(s, 2),
            "TWIN": lambda s: TwinGridFile(s, 2),
            "QUANTILE": lambda s: QuantileHashing(s, 2),
            "BANG-MBR": lambda s: BangFile(s, 2, minimal_regions=True),
            "HB-MBR": lambda s: HBTree(s, 2, minimal_regions=True),
        }
        expected = sorted(
            (p, i) for i, p in enumerate(points) if query.contains_point(p)
        )
        for name, factory in factories.items():
            pam = factory(PageStore())
            for i, p in enumerate(points):
                pam.insert(p, i)
            assert sorted(pam.range_query(query)) == expected, name

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rects=rect_sets(), query=query_rect())
    def test_rplus_tree_matches_linear_scan(self, rects, query):
        from repro import RPlusTree

        sam = RPlusTree(PageStore(), 2)
        for i, r in enumerate(rects):
            sam.insert(r, i)
        assert sorted(sam.intersection(query)) == sorted(
            i for i, r in enumerate(rects) if r.intersects(query)
        )
        assert sorted(sam.containment(query)) == sorted(
            i for i, r in enumerate(rects) if query.contains_rect(r)
        )
        assert sorted(sam.enclosure(query)) == sorted(
            i for i, r in enumerate(rects) if r.contains_rect(query)
        )
