"""Tests for explain traces: bit-identity, finalisation, rendering, CLI."""

import json
import os

import pytest

from repro.core.comparison import (
    _explain_dir,
    _trace_path,
    build_pam,
    build_sam,
    run_pam_experiment,
    run_pam_queries,
    run_sam_queries,
)
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    ExplainRecorder,
    data_page_entries,
    main,
    page_heatmap,
    render_heatmap,
    render_trace,
    validate_explain,
)
from repro.pam.buddytree import BuddyTree
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.sam.clipping import ClippingSAM
from repro.sam.rtree import RTree

from tests.conftest import make_points, make_rects

PAM_FACTORY = lambda s, dims=2: BuddyTree(s, dims)  # noqa: E731
SAM_FACTORY = lambda s, dims=2: RTree(s, dims)  # noqa: E731


def traced_pam(points, seed=19):
    pam = build_pam(PAM_FACTORY, points)
    recorder = ExplainRecorder("BUDDY")
    result = run_pam_queries(pam, seed=seed, explain=recorder)
    return pam, result, recorder.to_trace()


@pytest.fixture(scope="module")
def pam_trace():
    points = make_points(300, seed=3)
    pam, result, trace = traced_pam(points)
    return points, pam, result, trace


class TestBitIdentity:
    def test_results_identical_to_unexplained(self, pam_trace):
        """Acceptance: explaining a run never changes its numbers."""
        points, _, result, _ = pam_trace
        plain = run_pam_queries(build_pam(PAM_FACTORY, points), seed=19)
        assert plain.query_costs == result.query_costs
        assert plain.query_results == result.query_results

    def test_stats_identical_to_unexplained(self, pam_trace):
        points, pam, _, _ = pam_trace
        reference = build_pam(PAM_FACTORY, points)
        run_pam_queries(reference, seed=19)
        assert pam.store.stats == reference.store.stats

    def test_trace_pages_sum_to_access_stats(self, pam_trace):
        """Every query's page touches sum exactly to its measured cost."""
        _, _, _, trace = pam_trace
        assert validate_explain(trace) == []
        for file in trace["files"]:
            for query in file["queries"]:
                touched = sum(
                    p["reads"] + p["writes"] for p in query["pages"]
                )
                assert touched == query["accesses"]
                assert touched == sum(query["cost"].values())

    @pytest.mark.parametrize("vector", ["0", "1"])
    def test_both_vector_modes(self, vector, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", vector)
        points = make_points(200, seed=5)
        _, result, trace = traced_pam(points, seed=29)
        plain = run_pam_queries(build_pam(PAM_FACTORY, points), seed=29)
        assert plain.query_costs == result.query_costs
        assert validate_explain(trace) == []

    def test_mismatch_raises(self):
        """A forged cost makes finalisation fail loudly, not silently."""
        points = make_points(120, seed=8)
        pam = build_pam(PAM_FACTORY, points)
        recorder = ExplainRecorder("BUDDY")
        recorder.start_file(pam, "range")
        from repro.geometry.rect import Rect

        rect = Rect((0.2, 0.2), (0.4, 0.4))
        cost = pam.store.stats.total
        result = pam.range_query(rect)
        cost = pam.store.stats.total - cost
        recorder.finish_query(0, rect, cost + 1, result)
        with pytest.raises(RuntimeError, match="disagrees with AccessStats"):
            recorder.end_file()


class TestTraceContents:
    def test_schema_and_files(self, pam_trace):
        _, _, _, trace = pam_trace
        assert trace["schema"] == EXPLAIN_SCHEMA
        assert trace["structure"] == "BUDDY"
        assert [f["label"] for f in trace["files"]] == [
            "range_0.1%",
            "range_1%",
            "range_10%",
            "pm_x",
            "pm_y",
        ]
        for file in trace["files"]:
            assert len(file["queries"]) == 20

    def test_candidates_bound_hits(self, pam_trace):
        _, _, _, trace = pam_trace
        some_candidates = False
        for file in trace["files"]:
            for query in file["queries"]:
                assert 0 <= query["hits"] <= query["candidates"]
                some_candidates |= query["candidates"] > 0
        assert some_candidates

    def test_range_hits_match_result_counts(self, pam_trace):
        """One-place PAM: in-page hits are exactly the result set."""
        _, _, result, trace = pam_trace
        for file in trace["files"]:
            for query in file["queries"]:
                assert query["duplicates"] == 0
                assert query["hits"] == query["result_count"]

    def test_data_pages_have_depth_and_parents(self, pam_trace):
        _, _, _, trace = pam_trace
        query = trace["files"][2]["queries"][0]  # 10% range: a real descent
        kinds = {p["kind"] for p in query["pages"]}
        assert "data" in kinds
        roots = [p for p in query["pages"] if p.get("parent") is None]
        assert roots  # at least the directory root starts the descent
        for page in query["pages"]:
            if "depth" in page:
                assert page["depth"] >= 0

    def test_clipping_reports_duplicates(self):
        """A redundant scheme shows duplicate elimination in the trace."""
        rects = make_rects(150, seed=9)
        sam = build_sam(lambda s, dims=2: ClippingSAM(s, dims, redundancy=4), rects)
        recorder = ExplainRecorder("CLIP-4")
        run_sam_queries(sam, seed=23, explain=recorder)
        trace = recorder.to_trace()
        assert validate_explain(trace) == []
        duplicates = sum(
            q["duplicates"] for f in trace["files"] for q in f["queries"]
        )
        assert duplicates > 0

    def test_recorder_rejects_double_attach(self, pam_trace):
        _, pam, _, _ = pam_trace
        recorder = ExplainRecorder("BUDDY")
        recorder.start_file(pam, "range")
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                recorder.start_file(pam, "range")
        finally:
            pam.store.observer = recorder._collector.inner


class TestDataPageEntries:
    def test_unknown_shape_is_none(self):
        assert data_page_entries(None) is None
        assert data_page_entries(object()) is None

    def test_record_page_shape(self):
        class Page:
            records = [((0.1, 0.2), 0), ((0.3, 0.4), 1)]

        assert len(data_page_entries(Page())) == 2


class TestHeatmap:
    def test_aggregates_across_queries(self):
        trace = {
            "structure": "X",
            "files": [
                {
                    "label": "f",
                    "queries": [
                        {
                            "pages": [
                                {"pid": 1, "kind": "dir", "depth": 0, "reads": 1,
                                 "writes": 0, "free": 0},
                                {"pid": 2, "kind": "data", "depth": 1, "reads": 1,
                                 "writes": 0, "free": 2, "candidates": 5, "hits": 2},
                            ]
                        },
                        {
                            "pages": [
                                {"pid": 2, "kind": "data", "depth": 1, "reads": 3,
                                 "writes": 1, "free": 0, "candidates": 5, "hits": 1},
                            ]
                        },
                    ],
                }
            ],
        }
        rows = page_heatmap(trace)
        assert [row["pid"] for row in rows] == [2, 1]  # hottest first
        hot = rows[0]
        assert hot["queries"] == 2
        assert (hot["reads"], hot["writes"], hot["free"]) == (4, 1, 2)
        assert (hot["candidates"], hot["hits"]) == (10, 3)
        text = render_heatmap(trace)
        assert "page heatmap: X (2 pages touched)" in text
        assert "3/10" in text

    def test_real_trace_renders(self, pam_trace):
        _, _, _, trace = pam_trace
        rows = page_heatmap(trace)
        assert rows and rows[0]["reads"] + rows[0]["writes"] >= rows[-1][
            "reads"
        ] + rows[-1]["writes"]
        assert "pages touched" in render_heatmap(trace)


class TestRendering:
    def test_tree_format(self, pam_trace):
        _, _, _, trace = pam_trace
        text = render_trace(trace, "tree")
        assert "BUDDY range_0.1% #0" in text
        assert "└─" in text and "accesses" in text

    def test_md_format(self, pam_trace):
        _, _, _, trace = pam_trace
        text = render_trace(trace, "md")
        assert text.startswith("# Explain trace: BUDDY")
        assert "## range_1%" in text
        assert "| duplicates | pages |" in text

    def test_json_format_round_trips(self, pam_trace):
        _, _, _, trace = pam_trace
        assert json.loads(render_trace(trace, "json")) == trace

    def test_unknown_format(self, pam_trace):
        _, _, _, trace = pam_trace
        with pytest.raises(ValueError, match="unknown format"):
            render_trace(trace, "xml")


class TestValidate:
    def test_not_an_object(self):
        assert validate_explain([]) == ["trace is not a JSON object"]

    def test_catches_schema_and_mismatch(self, pam_trace):
        _, _, _, trace = pam_trace
        broken = json.loads(json.dumps(trace))
        broken["schema"] = "bogus/v0"
        broken["files"][0]["queries"][0]["pages"][0]["reads"] += 1
        problems = validate_explain(broken)
        assert any("schema" in p for p in problems)
        assert any("!= cost" in p for p in problems)


class TestExplainWiring:
    def test_explain_dir_env_semantics(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPLAIN", raising=False)
        assert _explain_dir() is None
        for off in ("", "0", "off", "no", "false"):
            monkeypatch.setenv("REPRO_EXPLAIN", off)
            assert _explain_dir() is None
        monkeypatch.setenv("REPRO_EXPLAIN", "/tmp/somewhere")
        assert str(_explain_dir()) == "/tmp/somewhere"
        assert _explain_dir(False) is None
        assert str(_explain_dir("elsewhere")) == "elsewhere"
        assert _explain_dir(True) is not None  # default results root

    def test_trace_path_sanitises_names(self, tmp_path):
        assert _trace_path(tmp_path, "pam", "BANG*").name == "PAM-BANG-star.json"
        assert _trace_path(tmp_path, "pam", "BUDDY+").name == "PAM-BUDDY-plus.json"
        assert _trace_path(tmp_path, "sam", "R-Tree").name == "SAM-R-Tree.json"

    def test_experiment_writes_traces_and_preserves_results(self, tmp_path):
        points = make_points(250, seed=4)
        factories = {
            "GRID": lambda s, dims=2: TwoLevelGridFile(s, dims),
            "BUDDY": PAM_FACTORY,
        }
        plain = run_pam_experiment(factories, points)
        traced = run_pam_experiment(factories, points, explain=str(tmp_path))
        for name in plain:
            assert traced[name].query_costs == plain[name].query_costs
            assert traced[name].snapshot is not None
        for stem in ("PAM-GRID", "PAM-BUDDY"):
            trace = json.loads((tmp_path / f"{stem}.json").read_text())
            assert validate_explain(trace) == []

    def test_testbed_threads_explain_serially(self, tmp_path, monkeypatch):
        from repro.core.testbed import run_standard_pam_testbed

        monkeypatch.delenv("REPRO_EXPLAIN", raising=False)
        points = make_points(200, seed=3)
        results, _ = run_standard_pam_testbed(points, explain=tmp_path / "t")
        assert sorted(p.name for p in (tmp_path / "t").glob("*.json")) == [
            "PAM-BANG-star.json",
            "PAM-BANG.json",
            "PAM-BUDDY.json",
            "PAM-GRID.json",
            "PAM-HB.json",
        ]
        for path in (tmp_path / "t").glob("*.json"):
            assert validate_explain(json.loads(path.read_text())) == []
        for result in results.values():
            assert result.snapshot is not None

    def test_testbed_threads_explain_to_workers(self, tmp_path, monkeypatch):
        from repro.core.testbed import run_standard_pam_testbed

        monkeypatch.delenv("REPRO_EXPLAIN", raising=False)
        points = make_points(200, seed=3)
        run_standard_pam_testbed(points, workers=2, explain=tmp_path / "w")
        # The kwarg reaches spawn workers through REPRO_EXPLAIN, which
        # must be restored afterwards.
        assert "REPRO_EXPLAIN" not in os.environ
        traces = sorted(p.name for p in (tmp_path / "w").glob("*.json"))
        assert traces == [
            "PAM-BANG-star.json",
            "PAM-BANG.json",
            "PAM-BUDDY.json",
            "PAM-GRID.json",
            "PAM-HB.json",
        ]
        for path in (tmp_path / "w").glob("*.json"):
            assert validate_explain(json.loads(path.read_text())) == []


class TestCli:
    def save(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        return str(path)

    def test_render_ok(self, pam_trace, tmp_path, capsys):
        _, _, _, trace = pam_trace
        path = self.save(trace, tmp_path)
        assert main([path]) == 0
        assert "BUDDY" in capsys.readouterr().out
        assert main([path, "--format", "heatmap"]) == 0
        assert "page heatmap" in capsys.readouterr().out

    def test_validate_flag(self, pam_trace, tmp_path, capsys):
        _, _, _, trace = pam_trace
        assert main(["--validate", self.save(trace, tmp_path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_inputs_exit_1(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main([str(bad)]) == 1
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "nope"}))
        assert main([str(wrong)]) == 1
        assert "invalid" in capsys.readouterr().err
