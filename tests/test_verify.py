"""The verification subsystem itself: auditors, oracle, fuzzer, wiring.

Three angles: (1) every structure's auditor is green on honest builds,
(2) auditors actually *detect* injected page-level corruption, and
(3) the differential fuzzer finds, shrinks and replays a planted bug.
"""

from __future__ import annotations

import json

import pytest

from repro.geometry.rect import Rect
from repro.pam.buddytree import BuddyTree
from repro.pam.mlgf import MultilevelGridFile
from repro.pam.plop import QuantileHashing
from repro.sam.rtree import RTree
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.verify import Audit, AuditError, Violation, run_audit
from repro.verify.fuzz import (
    STRUCTURES,
    fuzz_structure,
    make_ops,
    replay,
    run_ops,
    shrink_ops,
    structure_seed,
)
from repro.verify.oracle import PamOracle, SamOracle

from tests.conftest import make_clustered_points, make_points, make_rects


class TestAuditorsGreen:
    """Honest builds across every structure carry zero violations."""

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_audit_green_after_build(self, name):
        spec = STRUCTURES[name]
        am = spec["factory"](PageStore())
        if spec["kind"] == "pam":
            for rid, point in enumerate(make_points(150, seed=7)):
                am.insert(point, rid)
        else:
            for rid, rect in enumerate(make_rects(150, seed=7)):
                am.insert(rect, rid)
        if spec["pack_every"]:
            am.pack()
        assert run_audit(am) == []
        am.audit()  # must not raise

    @pytest.mark.parametrize("name", ["BUDDY", "BANG", "HB", "GRID", "KDB"])
    def test_audit_green_on_clustered_data(self, name):
        am = STRUCTURES[name]["factory"](PageStore())
        for rid, point in enumerate(make_clustered_points(200, seed=3)):
            am.insert(point, rid)
        assert run_audit(am) == []

    def test_audit_green_after_deletions(self):
        tree = BuddyTree(PageStore(), 2)
        points = make_points(120, seed=11)
        for rid, point in enumerate(points):
            tree.insert(point, rid)
        for rid, point in enumerate(points[::2]):
            assert tree.delete(point, 2 * rid)
        assert run_audit(tree) == []

    def test_buddy_plus_mixed_pack_insert_sequence(self):
        """Regression: directory splits after pack() used to separate
        entries sharing a data page (violating property 4) and to leave
        stale MBRs behind after unsharing.  This replays the seeded fuzz
        sequence that found both."""
        from repro.verify.fuzz import make_ops, run_ops, structure_seed

        spec = STRUCTURES["BUDDY+"]
        ops = make_ops(spec, 400, structure_seed("BUDDY+", 0))
        assert run_ops(spec, ops, audit_every=10) is None

    def test_mro_dispatch_covers_subclasses(self):
        """MLGF and QUANTILE have no auditor of their own; the base
        class auditor must be found through the MRO, not reported
        missing."""
        for cls in (MultilevelGridFile, QuantileHashing):
            am = cls(PageStore(), 2)
            for rid, point in enumerate(make_points(60, seed=5)):
                am.insert(point, rid)
            violations = run_audit(am)
            assert violations == []

    def test_unregistered_type_reports_missing_auditor(self):
        class NotAnAccessMethod:
            store = PageStore()

            def iter_records(self):
                return iter(())

            def __len__(self):
                return 0

        violations = run_audit(NotAnAccessMethod())
        assert [v.code for v in violations] == ["auditor.missing"]


class TestCorruptionDetection:
    """Auditors flag page-level corruption injected behind the API."""

    def _data_pages(self, store):
        return [
            pid for pid in store.page_ids() if store.kind(pid) == PageKind.DATA
        ]

    def test_buddy_detects_misplaced_record(self):
        tree = BuddyTree(PageStore(), 2)
        for rid, point in enumerate(make_points(120, seed=1)):
            tree.insert(point, rid)
        pages = self._data_pages(tree.store)
        assert len(pages) >= 2
        src = tree.store.peek(pages[0])
        dst = tree.store.peek(pages[1])
        dst.records.append(src.records.pop())
        codes = {v.code for v in run_audit(tree)}
        assert "buddy.mbr-exact" in codes
        with pytest.raises(AuditError) as err:
            tree.audit()
        assert err.value.violations

    def test_buddy_detects_lost_record(self):
        tree = BuddyTree(PageStore(), 2)
        for rid, point in enumerate(make_points(80, seed=2)):
            tree.insert(point, rid)
        page = tree.store.peek(self._data_pages(tree.store)[0])
        page.records.pop()
        codes = {v.code for v in run_audit(tree)}
        assert "records.count" in codes

    def test_rtree_detects_stale_mbr(self):
        tree = RTree(PageStore(), 2)
        for rid, rect in enumerate(make_rects(80, seed=1)):
            tree.insert(rect, rid)
        root = tree.store.peek(tree._root_pid)
        assert not root.is_leaf, "need a directory root for this test"
        lo, hi = root.rects[0].lo, root.rects[0].hi
        root.rects[0] = Rect(lo, tuple(min(1.0, h + 0.25) for h in hi))
        codes = {v.code for v in run_audit(tree)}
        assert "rtree.mbr-exact" in codes

    def test_audit_error_message_lists_codes(self):
        tree = BuddyTree(PageStore(), 2)
        for rid, point in enumerate(make_points(120, seed=1)):
            tree.insert(point, rid)
        pages = self._data_pages(tree.store)
        dst = tree.store.peek(pages[1])
        dst.records.append(tree.store.peek(pages[0]).records.pop())
        with pytest.raises(AuditError, match=r"buddy\.mbr-exact"):
            tree.audit()

    def test_violation_is_hashable_value_object(self):
        a = Violation("x.code", "message")
        b = Violation("x.code", "message")
        assert a == b and hash(a) == hash(b)

    def test_audit_object_collects_checks(self):
        tree = BuddyTree(PageStore(), 2)
        audit = Audit(tree)
        assert audit.check(True, "ok", "never recorded")
        assert not audit.check(False, "bad", "recorded")
        assert [v.code for v in audit.violations] == ["bad"]


class TestOracles:
    def test_pam_oracle_round_trip(self):
        oracle = PamOracle()
        oracle.insert((0.1, 0.2), 0)
        oracle.insert((0.3, 0.4), 1)
        assert oracle.exact_match((0.1, 0.2)) == [0]
        assert oracle.partial_match({0: 0.3}) == [((0.3, 0.4), 1)]
        assert oracle.delete((0.1, 0.2), 0)
        assert not oracle.delete((0.1, 0.2), 0)
        assert oracle.range_query(Rect.unit(2)) == [((0.3, 0.4), 1)]

    def test_sam_oracle_query_types(self):
        oracle = SamOracle()
        oracle.insert(Rect((0.1, 0.1), (0.4, 0.4)), "a")
        oracle.insert(Rect((0.2, 0.2), (0.3, 0.3)), "b")
        probe = Rect((0.15, 0.15), (0.35, 0.35))
        assert oracle.intersection(probe) == ["a", "b"]
        assert oracle.containment(probe) == ["b"]
        assert oracle.enclosure(Rect((0.25, 0.25), (0.26, 0.26))) == ["a", "b"]
        assert oracle.point_query((0.25, 0.25)) == ["a", "b"]
        assert oracle.delete(Rect((0.2, 0.2), (0.3, 0.3)), "b")
        assert oracle.intersection(probe) == ["a"]


class TestFuzzer:
    def test_ops_are_deterministic(self):
        for name in ("BUDDY", "R"):
            spec = STRUCTURES[name]
            seed = structure_seed(name, 0)
            assert make_ops(spec, 80, seed) == make_ops(spec, 80, seed)

    def test_structure_seeds_are_distinct(self):
        seeds = {structure_seed(name, 0) for name in STRUCTURES}
        assert len(seeds) == len(STRUCTURES)

    @pytest.mark.parametrize("name", ["GRID-1", "BUDDY", "BUDDY+", "R", "CLIP"])
    def test_run_ops_green_smoke(self, name):
        spec = STRUCTURES[name]
        ops = make_ops(spec, 150, structure_seed(name, 0))
        assert run_ops(spec, ops, audit_every=25) is None

    def test_fuzz_structure_green_writes_nothing(self, tmp_path):
        assert fuzz_structure("ZB", 100, 0, 20, tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_fuzzer_finds_shrinks_and_replays_planted_bug(
        self, tmp_path, monkeypatch
    ):
        class _LyingBuddy(BuddyTree):
            """Drops every rid >= 3 from exact-match answers."""

            def exact_match(self, point):
                return [
                    rid
                    for rid in super().exact_match(point)
                    if not (isinstance(rid, int) and rid >= 3)
                ]

        spec = {
            "kind": "pam",
            "factory": lambda s: _LyingBuddy(s, 2),
            "deletes": False,
            "pack_every": None,
        }
        points = make_points(6, seed=9)
        ops = [["insert", list(p), rid] for rid, p in enumerate(points)]
        ops += [["exact", list(p)] for p in points]
        failure = run_ops(spec, ops, audit_every=0)
        assert failure is not None and failure["code"] == "mismatch"

        shrunk = shrink_ops(
            lambda candidate: run_ops(spec, candidate, 0) is not None, ops
        )
        # Minimal reproducer: one insert with rid >= 3, one exact query.
        assert len(shrunk) == 2
        assert shrunk[0][0] == "insert" and shrunk[0][2] >= 3
        assert shrunk[1] == ["exact", shrunk[0][1]]

        monkeypatch.setitem(STRUCTURES, "LYING", spec)
        report = fuzz_structure("LYING", 40, 0, 10, tmp_path)
        assert report is not None and report["code"] == "mismatch"
        path = tmp_path / "LYING-seed0.json"
        assert report["reproducer"] == str(path)
        blob = json.loads(path.read_text())
        assert blob["structure"] == "LYING"
        assert blob["ops"] and blob["failure"]["code"] == "mismatch"
        assert replay(path) is not None

    def test_reproducer_filenames_escape_shell_chars(self, tmp_path, monkeypatch):
        class _Broken(BuddyTree):
            def exact_match(self, point):
                return []

        spec = {
            "kind": "pam",
            "factory": lambda s: _Broken(s, 2),
            "deletes": False,
            "pack_every": None,
        }
        monkeypatch.setitem(STRUCTURES, "BAD*", spec)
        report = fuzz_structure("BAD*", 40, 0, 0, tmp_path)
        assert report is not None
        assert (tmp_path / "BADstar-seed0.json").is_file()

    def test_cli_green_run(self, tmp_path, capsys):
        from repro.verify.fuzz import main

        rc = main(
            [
                "--ops",
                "80",
                "--seed",
                "0",
                "--structures",
                "GRID,BUDDY",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GRID" in out and "ok" in out

    def test_cli_rejects_unknown_structure(self, tmp_path):
        from repro.verify.fuzz import main

        with pytest.raises(SystemExit):
            main(["--structures", "NOPE", "--out", str(tmp_path)])


class TestExperimentWiring:
    def test_build_pam_audit_flag(self):
        from repro.core.comparison import build_pam

        pam = build_pam(
            lambda s, dims=2: BuddyTree(s, dims),
            make_points(60, seed=4),
            audit=True,
        )
        assert len(pam) == 60

    def test_build_sam_audit_flag(self):
        from repro.core.comparison import build_sam

        sam = build_sam(
            lambda s, dims=2: RTree(s, dims), make_rects(60, seed=4), audit=True
        )
        assert len(sam) == 60

    def test_audit_env_variable(self, monkeypatch):
        from repro.core.comparison import _audit_requested

        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert not _audit_requested(None)
        assert _audit_requested(True)
        assert not _audit_requested(False)
        for value in ("0", "off", "no", "false", ""):
            monkeypatch.setenv("REPRO_AUDIT", value)
            assert not _audit_requested(None)
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert _audit_requested(None)
        assert not _audit_requested(False)  # explicit beats the env

    def test_parallel_experiment_rejects_audit(self):
        from repro.core.comparison import run_pam_experiment, run_sam_experiment

        with pytest.raises(ValueError, match="workers=1"):
            run_pam_experiment({}, [], workers=2, audit=True)
        with pytest.raises(ValueError, match="workers=1"):
            run_sam_experiment({}, [], workers=2, audit=True)

    def test_experiment_with_audit_enabled(self):
        from repro.core.comparison import run_pam_experiment

        results = run_pam_experiment(
            {"BUDDY": lambda s, dims=2: BuddyTree(s, dims)},
            make_points(80, seed=6),
            audit=True,
        )
        assert results["BUDDY"].metrics.records == 80
