"""Tests for access counters and build metrics."""

from repro.core.stats import AccessStats, BuildMetrics


class TestAccessStats:
    def test_initial_zero(self):
        s = AccessStats()
        assert s.total == 0 and s.reads == 0 and s.writes == 0

    def test_recording(self):
        s = AccessStats()
        s.record_read(True)
        s.record_read(False)
        s.record_write(True)
        assert (s.data_reads, s.dir_reads, s.data_writes, s.dir_writes) == (1, 1, 1, 0)
        assert s.reads == 2 and s.writes == 1 and s.total == 3

    def test_snapshot_is_independent(self):
        s = AccessStats()
        s.record_read(True)
        snap = s.snapshot()
        s.record_read(True)
        assert snap.data_reads == 1 and s.data_reads == 2

    def test_subtraction(self):
        before = AccessStats(1, 2, 3, 4)
        after = AccessStats(5, 6, 7, 8)
        delta = after - before
        assert (delta.data_reads, delta.data_writes, delta.dir_reads, delta.dir_writes) == (
            4, 4, 4, 4,
        )

    def test_repr(self):
        assert "data_reads=1" in repr(AccessStats(1, 0, 0, 0))


class TestBuildMetrics:
    def test_frozen(self):
        m = BuildMetrics(70.0, 2.5, 3.0, 2, 1000, 35, 1, 1)
        assert m.storage_utilization == 70.0
        try:
            m.height = 5
            raised = False
        except AttributeError:
            raised = True
        assert raised
