"""Tests for access counters and build metrics."""

from repro.core.stats import AccessStats, BuildMetrics


class TestAccessStats:
    def test_initial_zero(self):
        s = AccessStats()
        assert s.total == 0 and s.reads == 0 and s.writes == 0

    def test_recording(self):
        s = AccessStats()
        s.record_read(True)
        s.record_read(False)
        s.record_write(True)
        assert (s.data_reads, s.dir_reads, s.data_writes, s.dir_writes) == (1, 1, 1, 0)
        assert s.reads == 2 and s.writes == 1 and s.total == 3

    def test_snapshot_is_independent(self):
        s = AccessStats()
        s.record_read(True)
        snap = s.snapshot()
        s.record_read(True)
        assert snap.data_reads == 1 and s.data_reads == 2

    def test_subtraction(self):
        before = AccessStats(1, 2, 3, 4)
        after = AccessStats(5, 6, 7, 8)
        delta = after - before
        assert (delta.data_reads, delta.data_writes, delta.dir_reads, delta.dir_writes) == (
            4, 4, 4, 4,
        )

    def test_repr(self):
        assert "data_reads=1" in repr(AccessStats(1, 0, 0, 0))

    def test_equality(self):
        assert AccessStats(1, 2, 3, 4) == AccessStats(1, 2, 3, 4)
        assert AccessStats(1, 2, 3, 4) != AccessStats(1, 2, 3, 5)
        assert AccessStats() != "not stats"

    def test_snapshot_equals_original(self):
        s = AccessStats(5, 6, 7, 8)
        assert s.snapshot() == s

    def test_as_dict(self):
        s = AccessStats(1, 2, 3, 4)
        assert s.as_dict() == {
            "data_reads": 1,
            "data_writes": 2,
            "dir_reads": 3,
            "dir_writes": 4,
        }

    def test_from_dict_roundtrip(self):
        s = AccessStats(9, 8, 7, 6)
        assert AccessStats.from_dict(s.as_dict()) == s

    def test_as_dict_is_json_serialisable(self):
        import json

        assert json.loads(json.dumps(AccessStats(1, 0, 0, 2).as_dict())) == {
            "data_reads": 1,
            "data_writes": 0,
            "dir_reads": 0,
            "dir_writes": 2,
        }


class TestBuildMetrics:
    def test_frozen(self):
        m = BuildMetrics(70.0, 2.5, 3.0, 2, 1000, 35, 1, 1)
        assert m.storage_utilization == 70.0
        try:
            m.height = 5
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_as_dict(self):
        m = BuildMetrics(70.0, 2.5, 3.0, 2, 1000, 35, 1, 1)
        d = m.as_dict()
        assert d == {
            "storage_utilization": 70.0,
            "dir_data_ratio": 2.5,
            "insert_cost": 3.0,
            "height": 2,
            "records": 1000,
            "data_pages": 35,
            "directory_pages": 1,
            "pinned_pages": 1,
        }

    def test_as_dict_is_json_serialisable(self):
        import json

        m = BuildMetrics(70.0, 2.5, 3.0, 2, 1000, 35, 1, 1)
        assert json.loads(json.dumps(m.as_dict()))["records"] == 1000
