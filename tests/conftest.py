"""Shared fixtures and brute-force oracles for the test suite.

Setting ``REPRO_CI=1`` loads a deterministic hypothesis profile:
``derandomize=True`` replaces hypothesis's random exploration with a
fixed example stream derived from each test's source, so two CI runs of
the same tree execute byte-identical examples, and ``deadline=None``
removes per-example time limits that flake on loaded runners.  The
profile is registered unconditionally (so ``--hypothesis-profile=ci``
also works) but only loaded when the variable is set; local runs keep
the default randomised exploration, which finds new bugs.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.geometry.rect import Rect
from repro.storage.factory import make_store
from repro.storage.pagestore import PageStore

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
if os.environ.get("REPRO_CI") == "1":
    settings.load_profile("ci")


@pytest.fixture
def store() -> PageStore:
    """A fresh 512-byte page store.

    Honours ``REPRO_STORE_BACKEND``, so ``REPRO_STORE_BACKEND=disk``
    (optionally with ``REPRO_STORE_POISON=1``) runs every fixture-based
    test against the durable backend.
    """
    return make_store()


def make_points(n: int, seed: int = 0) -> list[tuple[float, float]]:
    """``n`` distinct uniform points (plain :mod:`random`, fast)."""
    rng = random.Random(seed)
    points: list[tuple[float, float]] = []
    seen: set[tuple[float, float]] = set()
    while len(points) < n:
        p = (rng.random(), rng.random())
        if p not in seen:
            seen.add(p)
            points.append(p)
    return points


def make_clustered_points(n: int, seed: int = 0) -> list[tuple[float, float]]:
    """``n`` distinct points in a few tight clusters (skewed workload)."""
    rng = random.Random(seed)
    centers = [(rng.random() * 0.8 + 0.1, rng.random() * 0.8 + 0.1) for _ in range(4)]
    points: list[tuple[float, float]] = []
    seen: set[tuple[float, float]] = set()
    while len(points) < n:
        cx, cy = centers[rng.randrange(len(centers))]
        p = (
            min(max(rng.gauss(cx, 0.02), 0.0), 0.999999),
            min(max(rng.gauss(cy, 0.02), 0.0), 0.999999),
        )
        if p not in seen:
            seen.add(p)
            points.append(p)
    return points


def make_rects(n: int, seed: int = 0, max_extent: float = 0.08) -> list[Rect]:
    """``n`` distinct rectangles clipped to the unit square."""
    rng = random.Random(seed)
    rects: list[Rect] = []
    seen: set[Rect] = set()
    while len(rects) < n:
        cx, cy = rng.random(), rng.random()
        ex, ey = rng.random() * max_extent, rng.random() * max_extent
        rect = Rect(
            (max(0.0, cx - ex), max(0.0, cy - ey)),
            (min(1.0, cx + ex), min(1.0, cy + ey)),
        )
        if rect not in seen:
            seen.add(rect)
            rects.append(rect)
    return rects


def brute_range(points, rect: Rect):
    """Sorted brute-force answer to a point range query."""
    return sorted((p, i) for i, p in enumerate(points) if rect.contains_point(p))


def check_pam_against_oracle(pam, points, queries) -> None:
    """Assert the PAM answers every query exactly like brute force."""
    for rect in queries:
        assert sorted(pam.range_query(rect)) == brute_range(points, rect), rect
    for point in points[:: max(1, len(points) // 23)]:
        assert pam.exact_match(point) == [points.index(point)]
    assert pam.exact_match((0.123456789, 0.987654321)) == []


def check_sam_against_oracle(sam, rects, queries, points) -> None:
    """Assert the SAM answers all four query types exactly like brute force."""
    for query in queries:
        assert sorted(sam.intersection(query)) == sorted(
            i for i, r in enumerate(rects) if r.intersects(query)
        ), ("intersection", query)
        assert sorted(sam.containment(query)) == sorted(
            i for i, r in enumerate(rects) if query.contains_rect(r)
        ), ("containment", query)
        assert sorted(sam.enclosure(query)) == sorted(
            i for i, r in enumerate(rects) if r.contains_rect(query)
        ), ("enclosure", query)
    for point in points:
        assert sorted(sam.point_query(point)) == sorted(
            i for i, r in enumerate(rects) if r.contains_point(point)
        ), ("point", point)


#: A handful of query rectangles exercising tiny, medium and full ranges.
STANDARD_QUERIES = [
    Rect((0.0, 0.0), (1.0, 1.0)),
    Rect((0.2, 0.3), (0.4, 0.6)),
    Rect((0.5, 0.5), (0.52, 0.9)),
    Rect((0.9, 0.05), (0.95, 0.1)),
    Rect((0.33, 0.33), (0.330001, 0.330001)),
    Rect((0.0, 0.45), (1.0, 0.55)),
]

#: Probe points for SAM point queries.
STANDARD_POINTS = [(0.5, 0.5), (0.1, 0.9), (0.25, 0.25), (0.99, 0.01)]
