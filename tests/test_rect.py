"""Unit and property tests for :mod:`repro.geometry.rect`."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.rect import Rect


def coords(dims=2):
    return st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=dims, max_size=dims
    )


@st.composite
def rects(draw, dims=2):
    a = draw(coords(dims))
    b = draw(coords(dims))
    lo = tuple(min(x, y) for x, y in zip(a, b))
    hi = tuple(max(x, y) for x, y in zip(a, b))
    return Rect(lo, hi)


class TestConstruction:
    def test_valid(self):
        r = Rect((0.0, 0.1), (0.5, 0.9))
        assert r.dims == 2
        assert r.lo == (0.0, 0.1)
        assert r.hi == (0.5, 0.9)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            Rect((0.0,), (1.0, 1.0))

    def test_inverted_interval(self):
        with pytest.raises(ValueError, match="inverted"):
            Rect((0.5, 0.0), (0.4, 1.0))

    def test_degenerate_allowed(self):
        r = Rect.from_point((0.3, 0.3))
        assert r.area() == 0.0
        assert r.contains_point((0.3, 0.3))

    def test_immutable(self):
        r = Rect.unit(2)
        with pytest.raises(AttributeError):
            r.lo = (0.5, 0.5)

    def test_unit(self):
        u = Rect.unit(3)
        assert u.lo == (0.0, 0.0, 0.0)
        assert u.hi == (1.0, 1.0, 1.0)
        assert u.area() == 1.0

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])
        with pytest.raises(ValueError):
            Rect.bounding_points([])

    def test_bounding(self):
        r = Rect.bounding([Rect((0.0, 0.5), (0.2, 0.6)), Rect((0.1, 0.0), (0.9, 0.1))])
        assert r == Rect((0.0, 0.0), (0.9, 0.6))

    def test_bounding_points(self):
        r = Rect.bounding_points([(0.5, 0.2), (0.1, 0.8)])
        assert r == Rect((0.1, 0.2), (0.5, 0.8))

    def test_equality_and_hash(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect.unit(2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect((0.0, 0.0), (0.5, 1.0))
        assert a != "not a rect"


class TestGeometry:
    def test_area_margin_extent(self):
        r = Rect((0.0, 0.0), (0.5, 0.2))
        assert r.area() == pytest.approx(0.1)
        assert r.margin() == pytest.approx(0.7)
        assert r.extent(0) == pytest.approx(0.5)
        assert r.extent(1) == pytest.approx(0.2)

    def test_center(self):
        assert Rect((0.0, 0.2), (1.0, 0.4)).center == (0.5, pytest.approx(0.3))

    def test_contains_point_boundary(self):
        r = Rect((0.2, 0.2), (0.4, 0.4))
        assert r.contains_point((0.2, 0.4))
        assert not r.contains_point((0.19999, 0.3))

    def test_intersection_disjoint(self):
        assert Rect((0.0, 0.0), (0.1, 0.1)).intersection(
            Rect((0.5, 0.5), (0.6, 0.6))
        ) is None

    def test_intersection_touching(self):
        inter = Rect((0.0, 0.0), (0.5, 0.5)).intersection(Rect((0.5, 0.0), (1.0, 0.5)))
        assert inter is not None
        assert inter.area() == 0.0

    def test_split_at(self):
        left, right = Rect.unit(2).split_at(0, 0.3)
        assert left == Rect((0.0, 0.0), (0.3, 1.0))
        assert right == Rect((0.3, 0.0), (1.0, 1.0))

    def test_split_at_outside_raises(self):
        with pytest.raises(ValueError):
            Rect((0.2, 0.2), (0.4, 0.4)).split_at(0, 0.5)

    def test_enlargement(self):
        base = Rect((0.0, 0.0), (0.5, 0.5))
        assert base.enlargement(Rect((0.0, 0.0), (0.25, 0.25))) == 0.0
        assert base.enlargement(Rect((0.5, 0.0), (1.0, 0.5))) == pytest.approx(0.25)

    def test_expanded_to_point(self):
        r = Rect((0.4, 0.4), (0.6, 0.6)).expanded_to_point((0.9, 0.1))
        assert r == Rect((0.4, 0.1), (0.9, 0.6))


class TestProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_symmetric_and_consistent(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains_rect(inter) and b.contains_rect(inter)

    @given(rects(), coords())
    def test_point_in_rect_implies_intersects_degenerate(self, r, p):
        assert r.contains_point(p) == r.intersects(Rect.from_point(tuple(p)))

    @given(rects(), rects())
    def test_containment_implies_intersection(self, a, b):
        if a.contains_rect(b):
            assert a.intersects(b)
            assert a.union(b) == a
            assert a.area() >= b.area()

    @given(rects())
    def test_self_relations(self, r):
        assert r.contains_rect(r)
        assert r.intersects(r)
        assert r.intersection(r) == r
        assert r.enlargement(r) == 0.0
