"""Tests for the counted page store and its buffering rules."""

import pytest

from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore


class TestLifecycle:
    def test_allocate_is_free(self, store):
        store.allocate(PageKind.DATA, "a")
        assert store.stats.total == 0

    def test_ids_are_unique(self, store):
        ids = [store.allocate(PageKind.DATA, i) for i in range(10)]
        assert len(set(ids)) == 10

    def test_kind_and_counts(self, store):
        d = store.allocate(PageKind.DATA, "d")
        store.allocate(PageKind.DIRECTORY, "i")
        assert store.kind(d) is PageKind.DATA
        assert store.count_pages(PageKind.DATA) == 1
        assert store.count_pages(PageKind.DIRECTORY) == 1

    def test_free_removes(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.free(pid)
        assert store.count_pages(PageKind.DATA) == 0
        with pytest.raises(KeyError):
            store.read(pid)


class TestCounting:
    def test_read_charges_once_per_operation(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.read(pid)
        assert store.stats.data_reads == 1

    def test_reads_classified_by_kind(self, store):
        d = store.allocate(PageKind.DATA, "d")
        i = store.allocate(PageKind.DIRECTORY, "i")
        store.begin_operation()
        store.read(d)
        store.read(i)
        assert store.stats.data_reads == 1
        assert store.stats.dir_reads == 1

    def test_write_charges_once_per_operation(self, store):
        pid = store.allocate(PageKind.DIRECTORY, "x")
        store.begin_operation()
        store.write(pid)
        store.write(pid)
        assert store.stats.dir_writes == 1
        store.begin_operation()
        store.write(pid)
        assert store.stats.dir_writes == 2

    def test_total(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.write(pid)
        assert store.stats.total == 2
        assert store.stats.reads == 1
        assert store.stats.writes == 1


class TestPinning:
    def test_pinned_reads_and_writes_are_free(self, store):
        pid = store.allocate(PageKind.DIRECTORY, "root")
        store.pin(pid)
        store.begin_operation()
        store.read(pid)
        store.write(pid)
        assert store.stats.total == 0
        assert store.pinned_count == 1

    def test_unpin_restores_charging(self, store):
        pid = store.allocate(PageKind.DIRECTORY, "root")
        store.pin(pid)
        store.unpin(pid)
        store.begin_operation()
        store.read(pid)
        assert store.stats.dir_reads == 1


class TestPathBuffer:
    def test_last_path_is_free(self, store):
        pids = [store.allocate(PageKind.DATA, i) for i in range(3)]
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        assert store.stats.data_reads == 3
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        assert store.stats.data_reads == 3  # all buffered

    def test_buffer_is_limited_to_path_tail(self):
        store = PageStore(path_buffer_limit=2)
        pids = [store.allocate(PageKind.DATA, i) for i in range(5)]
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        # Only the final two pages of the previous operation were kept.
        assert store.stats.data_reads == 5 + 3

    def test_buffer_does_not_persist_two_operations_back(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.begin_operation()  # still buffered here
        store.begin_operation()  # ...but dropped here
        store.read(pid)
        assert store.stats.data_reads == 2

    def test_written_pages_enter_the_buffer(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.write(pid)
        store.begin_operation()
        store.read(pid)
        assert store.stats.data_reads == 0
