"""Tests for the counted page store and its buffering rules."""

import pytest

from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore


class TestLifecycle:
    def test_allocate_is_free(self, store):
        store.allocate(PageKind.DATA, "a")
        assert store.stats.total == 0

    def test_ids_are_unique(self, store):
        ids = [store.allocate(PageKind.DATA, i) for i in range(10)]
        assert len(set(ids)) == 10

    def test_kind_and_counts(self, store):
        d = store.allocate(PageKind.DATA, "d")
        store.allocate(PageKind.DIRECTORY, "i")
        assert store.kind(d) is PageKind.DATA
        assert store.count_pages(PageKind.DATA) == 1
        assert store.count_pages(PageKind.DIRECTORY) == 1

    def test_free_removes(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.free(pid)
        assert store.count_pages(PageKind.DATA) == 0
        with pytest.raises(KeyError):
            store.read(pid)


class TestCounting:
    def test_read_charges_once_per_operation(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.read(pid)
        assert store.stats.data_reads == 1

    def test_reads_classified_by_kind(self, store):
        d = store.allocate(PageKind.DATA, "d")
        i = store.allocate(PageKind.DIRECTORY, "i")
        store.begin_operation()
        store.read(d)
        store.read(i)
        assert store.stats.data_reads == 1
        assert store.stats.dir_reads == 1

    def test_write_charges_once_per_operation(self, store):
        pid = store.allocate(PageKind.DIRECTORY, "x")
        store.begin_operation()
        store.write(pid)
        store.write(pid)
        assert store.stats.dir_writes == 1
        store.begin_operation()
        store.write(pid)
        assert store.stats.dir_writes == 2

    def test_total(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.write(pid)
        assert store.stats.total == 2
        assert store.stats.reads == 1
        assert store.stats.writes == 1


class TestPinning:
    def test_pinned_reads_and_writes_are_free(self, store):
        pid = store.allocate(PageKind.DIRECTORY, "root")
        store.pin(pid)
        store.begin_operation()
        store.read(pid)
        store.write(pid)
        assert store.stats.total == 0
        assert store.pinned_count == 1

    def test_unpin_restores_charging(self, store):
        pid = store.allocate(PageKind.DIRECTORY, "root")
        store.pin(pid)
        store.unpin(pid)
        store.begin_operation()
        store.read(pid)
        assert store.stats.dir_reads == 1


class TestPathBuffer:
    def test_last_path_is_free(self, store):
        pids = [store.allocate(PageKind.DATA, i) for i in range(3)]
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        assert store.stats.data_reads == 3
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        assert store.stats.data_reads == 3  # all buffered

    def test_buffer_is_limited_to_path_tail(self):
        store = PageStore(path_buffer_limit=2)
        pids = [store.allocate(PageKind.DATA, i) for i in range(5)]
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        store.begin_operation()
        for pid in pids:
            store.read(pid)
        # Only the final two pages of the previous operation were kept.
        assert store.stats.data_reads == 5 + 3

    def test_buffer_does_not_persist_two_operations_back(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.begin_operation()  # still buffered here
        store.begin_operation()  # ...but dropped here
        store.read(pid)
        assert store.stats.data_reads == 2

    def test_written_pages_enter_the_buffer(self, store):
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.write(pid)
        store.begin_operation()
        store.read(pid)
        assert store.stats.data_reads == 0


class TestPathBufferTailDeterminism:
    """Regression-pin the "last ``path_buffer_limit`` accessed pages" rule.

    Pages enter the buffer in first-touch order within one operation;
    re-reads, repeated (deduplicated) writes and writes-after-reads do
    not reorder it.  The tail kept by :meth:`begin_operation` is
    therefore the last *distinct* pages by first touch.
    """

    def test_tail_is_first_touch_order(self):
        store = PageStore(path_buffer_limit=2)
        a, b, c = (store.allocate(PageKind.DATA, i) for i in range(3))
        store.begin_operation()
        for pid in (a, b, c):
            store.read(pid)
        store.begin_operation()
        assert store._buffer_prev == {b, c}

    def test_reread_does_not_promote_to_tail(self):
        """Re-reading an early page must not push it back into the tail."""
        store = PageStore(path_buffer_limit=2)
        a, b, c = (store.allocate(PageKind.DATA, i) for i in range(3))
        store.begin_operation()
        store.read(a)
        store.read(b)
        store.read(c)
        store.read(a)  # free re-read; a was first-touched first
        store.begin_operation()
        assert store._buffer_prev == {b, c}
        # ...and the re-read was indeed free.
        assert store.stats.data_reads == 3

    def test_write_dedup_does_not_promote_to_tail(self):
        """A repeated write is deduplicated and must not reorder the tail."""
        store = PageStore(path_buffer_limit=2)
        a, b, c = (store.allocate(PageKind.DATA, i) for i in range(3))
        store.begin_operation()
        store.write(a)
        store.write(b)
        store.write(c)
        store.write(a)  # deduplicated
        store.begin_operation()
        assert store._buffer_prev == {b, c}
        assert store.stats.data_writes == 3

    def test_write_after_read_does_not_promote_to_tail(self):
        """Writing a page read earlier in the operation keeps its position."""
        store = PageStore(path_buffer_limit=2)
        a, b, c = (store.allocate(PageKind.DATA, i) for i in range(3))
        store.begin_operation()
        store.read(a)
        store.read(b)
        store.read(c)
        store.write(a)  # a keeps its first-touch position
        store.begin_operation()
        assert store._buffer_prev == {b, c}

    def test_mixed_reads_and_writes_interleave_by_first_touch(self):
        store = PageStore(path_buffer_limit=3)
        a, b, c, d = (store.allocate(PageKind.DATA, i) for i in range(4))
        store.begin_operation()
        store.write(a)
        store.read(b)
        store.write(c)
        store.read(b)  # no reorder
        store.read(d)
        store.begin_operation()
        assert store._buffer_prev == {b, c, d}

    def test_freed_page_leaves_current_buffer(self):
        store = PageStore(path_buffer_limit=2)
        a, b = (store.allocate(PageKind.DATA, i) for i in range(2))
        store.begin_operation()
        store.read(a)
        store.read(b)
        store.free(a)
        store.begin_operation()
        assert store._buffer_prev == {b}


class RecordingObserver:
    """Minimal StoreObserver that logs every callback."""

    def __init__(self):
        self.operations = 0
        self.events = []

    def on_operation_begin(self, store):
        self.operations += 1

    def on_access(self, store, pid, kind, rw, charged, reason):
        self.events.append((pid, kind, rw, charged, reason))


class TestObserverHook:
    def test_default_is_uninstrumented(self, store):
        assert store.observer is None

    def test_operation_begin_notified(self, store):
        observer = RecordingObserver()
        store.observer = observer
        store.begin_operation()
        store.begin_operation()
        assert observer.operations == 2

    def test_every_touch_reported_with_charge_flag(self, store):
        observer = RecordingObserver()
        store.observer = observer
        pinned = store.allocate(PageKind.DIRECTORY, "root")
        store.pin(pinned)
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pinned)
        store.read(pid)
        store.read(pid)
        store.write(pid)
        store.write(pid)
        assert [(rw, charged, reason) for _, _, rw, charged, reason in observer.events] == [
            ("read", False, "pinned"),
            ("read", True, "charged"),
            ("read", False, "buffered"),
            ("write", True, "charged"),
            ("write", False, "dedup"),
        ]
        # Charged events agree exactly with the store's counters.
        charged = [e for e in observer.events if e[3]]
        assert len(charged) == store.stats.total

    def test_path_buffer_hit_reported_as_path(self, store):
        observer = RecordingObserver()
        store.observer = observer
        pid = store.allocate(PageKind.DATA, "x")
        store.begin_operation()
        store.read(pid)
        store.begin_operation()
        store.read(pid)
        assert observer.events[-1][4] == "path"

    def test_observer_does_not_change_charging(self):
        plain, observed = PageStore(), PageStore()
        observed.observer = RecordingObserver()
        for store in (plain, observed):
            pids = [store.allocate(PageKind.DATA, i) for i in range(5)]
            store.begin_operation()
            for pid in pids:
                store.read(pid)
                store.write(pid)
            store.begin_operation()
            for pid in pids:
                store.read(pid)
        assert plain.stats == observed.stats
