"""Cross-structure integration tests.

Every PAM is built on every one of the paper's seven distributions and
checked against the kd-tree oracle; every SAM on every one of the five
rectangle files against brute force.  This is the all-pairs sweep that
gives confidence in the benchmark numbers.
"""

import pytest

from repro.core.testbed import standard_pam_factories, standard_sam_factories
from repro.pam.bang import BangFile
from repro.geometry.rect import Rect
from repro.pam.kdbtree import KdBTree
from repro.pam.kdtree import KdTreeOracle
from repro.pam.mlgf import MultilevelGridFile
from repro.pam.plop import PlopHashing, QuantileHashing
from repro.pam.twingrid import TwinGridFile
from repro.sam.clipping import ClippingSAM
from repro.sam.rplustree import RPlusTree
from repro.pam.zbtree import ZOrderBTree
from repro.storage.pagestore import PageStore
from repro.workloads.distributions import POINT_FILES, generate_point_file
from repro.workloads.queries import (
    generate_range_queries,
    generate_rect_query_workload,
)
from repro.workloads.rect_distributions import RECT_FILES, generate_rect_file

PAM_FACTORIES = dict(standard_pam_factories())
PAM_FACTORIES["PLOP"] = lambda store, dims=2: PlopHashing(store, dims)
PAM_FACTORIES["ZB"] = lambda store, dims=2: ZOrderBTree(store, dims)
PAM_FACTORIES["KDB"] = lambda store, dims=2: KdBTree(store, dims)
PAM_FACTORIES["MLGF"] = lambda store, dims=2: MultilevelGridFile(store, dims)
PAM_FACTORIES["BANG-MBR"] = lambda store, dims=2: BangFile(
    store, dims, minimal_regions=True
)
PAM_FACTORIES["TWIN"] = lambda store, dims=2: TwinGridFile(store, dims)
PAM_FACTORIES["QUANTILE"] = lambda store, dims=2: QuantileHashing(store, dims)

QUERIES = (
    generate_range_queries(0.001, count=4, seed=55)
    + generate_range_queries(0.01, count=4, seed=56)
    + generate_range_queries(0.10, count=4, seed=57)
    + [Rect.unit(2)]
)


@pytest.mark.parametrize("pam_name", sorted(PAM_FACTORIES))
@pytest.mark.parametrize("file_name", sorted(POINT_FILES))
def test_every_pam_on_every_distribution(pam_name, file_name):
    points = generate_point_file(file_name, 500)
    oracle = KdTreeOracle(2)
    pam = PAM_FACTORIES[pam_name](PageStore(), dims=2)
    for i, p in enumerate(points):
        pam.insert(p, i)
        oracle.insert(p, i)
    for rect in QUERIES:
        assert sorted(pam.range_query(rect)) == sorted(oracle.range_query(rect))
    for p in points[::53]:
        assert pam.exact_match(p) == oracle.exact_match(p)
    for axis in (0, 1):
        value = points[7][axis]
        assert sorted(pam.partial_match({axis: value})) == sorted(
            oracle.partial_match({axis: value})
        )
    metrics = pam.metrics()
    assert metrics.records == len(points)
    assert 0.0 < metrics.storage_utilization <= 100.0


SAM_FACTORIES = dict(standard_sam_factories())
SAM_FACTORIES["R+"] = lambda store, dims=2: RPlusTree(store, dims)
SAM_FACTORIES["CLIP"] = lambda store, dims=2: ClippingSAM(store, dims)


@pytest.mark.parametrize("sam_name", sorted(SAM_FACTORIES))
@pytest.mark.parametrize("file_name", sorted(RECT_FILES))
def test_every_sam_on_every_rect_file(sam_name, file_name):
    rects = generate_rect_file(file_name, 350)
    sam = SAM_FACTORIES[sam_name](PageStore(), dims=2)
    for i, r in enumerate(rects):
        sam.insert(r, i)
    workload = generate_rect_query_workload(queries_per_class=2)
    for query in workload["rectangles"]:
        assert sorted(sam.intersection(query)) == sorted(
            i for i, r in enumerate(rects) if r.intersects(query)
        )
        assert sorted(sam.containment(query)) == sorted(
            i for i, r in enumerate(rects) if query.contains_rect(r)
        )
        assert sorted(sam.enclosure(query)) == sorted(
            i for i, r in enumerate(rects) if r.contains_rect(query)
        )
    for point in workload["points"]:
        assert sorted(sam.point_query(point)) == sorted(
            i for i, r in enumerate(rects) if r.contains_point(point)
        )
