"""Tests for the data and query file generators."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.geometry.zorder import z_value
from repro.workloads import files
from repro.workloads.distributions import POINT_FILES, generate_point_file
from repro.workloads.queries import (
    RANGE_QUERY_VOLUMES,
    RECT_QUERY_SIZES,
    generate_partial_match_queries,
    generate_point_queries,
    generate_query_rectangles,
    generate_range_queries,
    generate_rect_query_workload,
)
from repro.workloads.rect_distributions import RECT_FILES, generate_rect_file
from repro.workloads.terrain import generate_cartography_points, rolling_hills_height


class TestPointFiles:
    @pytest.mark.parametrize("name", sorted(POINT_FILES))
    def test_count_dedupe_and_domain(self, name):
        points = generate_point_file(name, 500)
        expected = round(500 * 0.81549) if name == "real" else 500
        assert len(points) == expected
        assert len(set(points)) == len(points)
        assert all(0.0 <= x < 1.0 and 0.0 <= y < 1.0 for x, y in points)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate_point_file("nope", 10)

    def test_deterministic(self):
        assert generate_point_file("uniform", 200) == generate_point_file("uniform", 200)

    def test_seed_changes_output(self):
        a = generate_point_file("uniform", 200, seed=1)
        b = generate_point_file("uniform", 200, seed=2)
        assert a != b

    def test_diagonal_is_on_diagonal(self):
        assert all(x == y for x, y in generate_point_file("diagonal", 300))

    def test_sinus_follows_sine(self):
        points = generate_point_file("sinus", 2000)
        residuals = [y - np.sin(x) for x, y in points]
        assert abs(np.mean(residuals)) < 0.02
        assert np.std(residuals) < 0.2

    def test_bit_distribution_is_skewed_to_zero(self):
        points = generate_point_file("bit", 2000)
        assert np.mean([x for x, _ in points]) < 0.3

    def test_x_parallel_band(self):
        points = generate_point_file("x_parallel", 2000)
        ys = [y for _, y in points]
        assert 0.45 < np.mean(ys) < 0.55
        assert np.std(ys) < 0.15

    def test_cluster_insertion_order_is_clustered(self):
        """C2 of §5: one cluster finishes before the next starts."""
        points = generate_point_file("cluster", 1000)
        first_hundred = points[:100]
        spread = np.std([p[0] for p in first_hundred])
        assert spread < 0.05

    def test_real_data_is_morton_sorted(self):
        points = generate_point_file("real", 400)
        zs = [z_value(p, 2, 16) for p in points]
        assert zs == sorted(zs)


class TestTerrain:
    def test_height_field_normalised(self):
        axis = np.linspace(0, 1, 32)
        xs, ys = np.meshgrid(axis, axis)
        z = rolling_hills_height(xs, ys)
        assert z.min() == 0.0 and z.max() == pytest.approx(1.0)

    def test_contour_points_exact_count(self):
        points = generate_cartography_points(777)
        assert len(points) == 777
        assert len(set(points)) == 777

    def test_points_lie_near_contour_levels(self):
        points = generate_cartography_points(300)
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        heights = rolling_hills_height(xs, ys)
        # Heights concentrate on the contour levels rather than uniform:
        # the nearest-level residual is small for most points.
        levels = np.linspace(0, 1, 26)[1:-1]
        residual = np.min(np.abs(heights[:, None] - levels[None, :]), axis=1)
        assert np.median(residual) < 0.05


class TestRectFiles:
    @pytest.mark.parametrize("name", sorted(RECT_FILES))
    def test_count_dedupe_and_domain(self, name):
        rects = generate_rect_file(name, 300)
        assert len(rects) == 300
        assert len(set(rects)) == 300
        unit = Rect.unit(2)
        assert all(unit.contains_rect(r) for r in rects)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate_rect_file("nope", 10)

    def test_uniform_small_extents(self):
        rects = generate_rect_file("uniform_small", 500)
        assert all(r.extent(0) <= 0.01 and r.extent(1) <= 0.01 for r in rects)

    def test_gaussian_slim_is_slim(self):
        rects = generate_rect_file("gaussian_slim", 500)
        mean_x = np.mean([r.extent(0) for r in rects])
        mean_y = np.mean([r.extent(1) for r in rects])
        assert mean_y > 2 * mean_x

    def test_diagonal_rects_follow_diagonal(self):
        rects = generate_rect_file("diagonal", 500)
        offsets = [abs(r.center[0] - r.center[1]) for r in rects]
        assert np.mean(offsets) < 0.15


class TestQueries:
    def test_range_query_volume(self):
        for volume in RANGE_QUERY_VOLUMES:
            queries = generate_range_queries(volume)
            assert len(queries) == 20
            interior = [
                q
                for q in queries
                if all(l > 0.0 for l in q.lo) and all(h < 1.0 for h in q.hi)
            ]
            for q in interior:
                assert q.area() == pytest.approx(volume, rel=1e-6)

    def test_partial_match_axis(self):
        for axis in (0, 1):
            for spec in generate_partial_match_queries(axis):
                assert list(spec) == [axis]
                assert 0.0 <= spec[axis] <= 1.0

    def test_point_queries(self):
        points = generate_point_queries(count=20)
        assert len(points) == 20
        assert all(len(p) == 2 for p in points)

    def test_query_rectangles_area_and_shape(self):
        for size in RECT_QUERY_SIZES:
            for shape in ("square", "slim"):
                queries = generate_query_rectangles(size, shape)
                assert len(queries) == 20
                interior = [
                    q
                    for q in queries
                    if all(l > 0.0 for l in q.lo) and all(h < 1.0 for h in q.hi)
                ]
                for q in interior:
                    assert q.area() == pytest.approx(size, rel=1e-6)

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            generate_query_rectangles(0.01, "round")

    def test_full_workload_counts(self):
        workload = generate_rect_query_workload()
        assert len(workload["rectangles"]) == 160
        assert len(workload["points"]) == 20

    def test_determinism(self):
        a = generate_rect_query_workload()
        b = generate_rect_query_workload()
        assert a == b


class TestFiles:
    def test_point_roundtrip(self, tmp_path):
        points = generate_point_file("uniform", 50)
        path = tmp_path / "points.txt"
        files.save_points(path, points)
        assert files.load_points(path) == points

    def test_rect_roundtrip(self, tmp_path):
        rects = generate_rect_file("uniform_small", 50)
        path = tmp_path / "rects.txt"
        files.save_rects(path, rects)
        assert files.load_rects(path) == rects
