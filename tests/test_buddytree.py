"""Tests for the BUDDY hash tree, including its paper-stated invariants."""

from repro.geometry.rect import Rect
from repro.pam.buddytree import BuddyTree, _DirNode
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points, store=None):
    tree = BuddyTree(store or PageStore(), 2)
    for i, p in enumerate(points):
        tree.insert(p, i)
    return tree


def walk_nodes(tree):
    """Yield every directory node object."""
    if tree._root_is_data:
        return
    stack = [tree._root_pid]
    while stack:
        node = tree.store._objects[stack.pop()]
        yield node
        stack.extend(e.pid for e in node.entries if not e.is_data)


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(700, seed=1)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal_sorted_insertion(self):
        points = [(i / 800.0, i / 800.0) for i in range(800)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_tiny_file_root_is_data_page(self):
        tree = build(make_points(5))
        assert tree._root_is_data
        assert tree.directory_height == 0


class TestPaperInvariants:
    def test_sibling_regions_pairwise_disjoint(self):
        """Condition (i) of the paper: S_i ∩ S_j has no interior."""
        tree = build(make_clustered_points(1200, seed=2))
        for node in walk_nodes(tree):
            for i, a in enumerate(node.entries):
                for b in node.entries[i + 1 :]:
                    inter = a.rect.intersection(b.rect)
                    assert inter is None or inter.area() == 0.0

    def test_minimal_bounding_rectangles(self):
        """Property (2): every region is the exact MBR of its contents."""
        tree = build(make_points(1000, seed=3))

        def verify(pid, is_data, expected_rect):
            obj = tree.store._objects[pid]
            if is_data:
                mbr = Rect.bounding_points([p for p, _ in obj.records])
            else:
                mbr = Rect.bounding([e.rect for e in obj.entries])
                for e in obj.entries:
                    verify(e.pid, e.is_data, e.rect)
            assert mbr == expected_rect

        root = tree.store._objects[tree._root_pid]
        for e in root.entries:
            verify(e.pid, e.is_data, e.rect)

    def test_at_least_two_entries_per_node(self):
        """Property (1) of the paper."""
        tree = build(make_clustered_points(1500, seed=4))
        for node in walk_nodes(tree):
            assert len(node.entries) >= 2

    def test_single_pointer_per_directory_page(self):
        """Property (3): the directory is a tree."""
        tree = build(make_points(1500, seed=5))
        seen = set()
        for node in walk_nodes(tree):
            for e in node.entries:
                if not e.is_data:
                    assert e.pid not in seen
                    seen.add(e.pid)

    def test_empty_space_is_not_partitioned(self):
        """Queries in empty space read no data pages at all."""
        points = make_clustered_points(800, seed=6)
        empty = Rect((0.001, 0.001), (0.002, 0.002))
        points = [p for p in points if not empty.contains_point(p)]
        tree = build(points)
        tree.store.begin_operation()
        tree.store.begin_operation()
        before = tree.store.stats.data_reads
        assert tree.range_query(empty) == []
        assert tree.store.stats.data_reads - before == 0

    def test_fanout_never_exceeded(self):
        tree = build(make_points(2000, seed=7))
        for node in walk_nodes(tree):
            assert len(node.entries) <= tree._fanout

    def test_data_capacity_never_exceeded(self):
        tree = build(make_points(1000, seed=8))
        for pid in tree.store.page_ids():
            if tree.store.kind(pid) is PageKind.DATA:
                assert len(tree.store._objects[pid].records) <= tree.record_capacity


class TestPacking:
    def test_pack_raises_storage_utilization(self):
        points = make_clustered_points(1500, seed=9)
        tree = build(points)
        before = tree.metrics().storage_utilization
        saved = tree.pack()
        after = tree.metrics().storage_utilization
        assert tree.is_packed
        if saved:
            assert after > before
        assert len(tree) == len(points)

    def test_pack_preserves_query_results(self):
        points = make_clustered_points(900, seed=10)
        tree = build(points)
        expected = sorted(tree.range_query(Rect((0.1, 0.1), (0.8, 0.8))))
        tree.pack()
        assert sorted(tree.range_query(Rect((0.1, 0.1), (0.8, 0.8)))) == expected
        check_pam_against_oracle(tree, points, STANDARD_QUERIES)

    def test_insert_after_pack_still_correct(self):
        points = make_clustered_points(600, seed=11)
        tree = build(points)
        tree.pack()
        extra = make_points(300, seed=12)
        fresh = [p for p in extra if p not in set(points)]
        for j, p in enumerate(fresh):
            tree.insert(p, len(points) + j)
        everything = points + fresh
        got = sorted(tree.range_query(Rect.unit(2)))
        assert got == sorted((p, i) for i, p in enumerate(everything))


class TestDeletion:
    def test_delete_roundtrip(self):
        points = make_points(500, seed=13)
        tree = build(points)
        for i, p in enumerate(points[:400]):
            assert tree.delete(p, i)
        assert len(tree) == 100
        got = sorted(tree.range_query(Rect.unit(2)))
        assert got == sorted((p, i + 400) for i, p in enumerate(points[400:]))

    def test_delete_missing(self):
        tree = build(make_points(50, seed=14))
        assert not tree.delete((0.123456, 0.654321), 999)

    def test_delete_keeps_invariants(self):
        points = make_points(600, seed=15)
        tree = build(points)
        for i, p in enumerate(points[:300]):
            tree.delete(p, i)
        for node in walk_nodes(tree):
            assert len(node.entries) >= 2

    def test_delete_everything_then_reinsert(self):
        points = make_points(120, seed=16)
        tree = build(points)
        for i, p in enumerate(points):
            assert tree.delete(p, i)
        assert len(tree) == 0
        for i, p in enumerate(points):
            tree.insert(p, i)
        check_pam_against_oracle(tree, points, STANDARD_QUERIES)
