"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: script -> CLI arguments keeping the run fast.
SCRIPTS = {
    "quickstart.py": [],
    "gis_cartography.py": ["1500"],
    "cad_layout.py": ["800"],
    "testbed_comparison.py": ["400"],
    "physical_design_advisor.py": [],
    "polygon_regions.py": ["600"],
}


@pytest.mark.parametrize("script", sorted(SCRIPTS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *SCRIPTS[script]],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_advisor_recommends_something():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "physical_design_advisor.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "recommended physical design:" in result.stdout


def test_cad_indexes_agree():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "cad_layout.py"), "600"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "identical component sets" in result.stdout
