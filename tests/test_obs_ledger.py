"""Tests for the performance ledger: records, fingerprints, the gate."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    FingerprintMismatch,
    Ledger,
    LedgerEntry,
    collect_fingerprint,
    compare_entries,
    entry_from_bench_document,
    entry_from_timers,
    fingerprint_digest,
    flatten_metrics,
    gate_run,
    ledger_from_env,
    main,
    resolve_ledger,
)

#: A fixed fingerprint so tests never shell out to git per entry.
FP = {
    "git_commit": "deadbeef",
    "code": "cafe",
    "page_size": 512,
    "scale": 100,
    "seed": 1,
    "workers": 1,
    "vector": "1",
    "vector_promote": "default",
}


def make_entry(build=1.0, query=2.0, fingerprint=None, totals=None, label="run"):
    return entry_from_timers(
        label=label,
        source="test",
        kind="pam",
        timers={"GRID/build": build, "GRID/queries": query},
        totals=totals,
        page_size=512,
        scale=100,
        seed=1,
        fingerprint=fingerprint or FP,
    )


class TestEntry:
    def test_round_trip(self):
        entry = make_entry()
        clone = LedgerEntry.from_dict(entry.to_dict())
        assert clone.to_dict() == entry.to_dict()
        assert clone.digest == entry.digest

    def test_rejects_wrong_schema(self):
        data = make_entry().to_dict()
        data["schema"] = "bogus/v9"
        with pytest.raises(ValueError, match="schema"):
            LedgerEntry.from_dict(data)

    def test_rejects_missing_fields(self):
        data = make_entry().to_dict()
        del data["metrics"]
        with pytest.raises(ValueError, match="metrics"):
            LedgerEntry.from_dict(data)

    def test_schema_constant(self):
        assert make_entry().to_dict()["schema"] == LEDGER_SCHEMA


class TestFingerprint:
    def test_digest_ignores_key_order(self):
        reordered = dict(reversed(list(FP.items())))
        assert fingerprint_digest(FP) == fingerprint_digest(reordered)

    def test_digest_separates_configurations(self):
        assert fingerprint_digest(FP) != fingerprint_digest({**FP, "scale": 200})
        assert fingerprint_digest(FP) != fingerprint_digest({**FP, "vector": "0"})

    def test_collect_carries_commit_and_code(self):
        fp = collect_fingerprint(page_size=512, scale=10, seed=3, workers=2)
        assert set(fp) == set(FP)
        assert fp["workers"] == 2
        assert fp["code"]  # the build cache's source hash

    def test_collect_carries_promotion_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_PROMOTE", raising=False)
        fp = collect_fingerprint(page_size=512, scale=10)
        assert fp["vector_promote"] == "default"
        monkeypatch.setenv("REPRO_VECTOR_PROMOTE", "9")
        tuned = collect_fingerprint(page_size=512, scale=10)
        assert tuned["vector_promote"] == "9"
        # A tuned run must land in its own gating history.
        assert fingerprint_digest(tuned) != fingerprint_digest(fp)


class TestRecordAndRead:
    def test_record_assigns_distinct_run_ids(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        a = ledger.record(make_entry())
        b = ledger.record(make_entry())
        assert a.run_id and b.run_id and a.run_id != b.run_id
        entries, problems = ledger.read()
        assert [e.run_id for e in entries] == [a.run_id, b.run_id]
        assert problems == []

    def test_records_are_single_lines(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(make_entry())
        ledger.record(make_entry())
        lines = (tmp_path / "L.jsonl").read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_missing_file_reads_empty(self, tmp_path):
        assert Ledger(tmp_path / "absent.jsonl").read() == ([], [])

    def test_torn_trailing_line_skipped_and_reported(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        kept = ledger.record(make_entry())
        with (tmp_path / "L.jsonl").open("a") as fh:
            fh.write('{"schema": "repro.obs/ledger/v1", "label"')  # torn write
        entries, problems = ledger.read()
        assert [e.run_id for e in entries] == [kept.run_id]
        assert len(problems) == 1 and "line 2" in problems[0]

    def test_get_by_prefix(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        entry = ledger.record(make_entry())
        assert ledger.get(entry.run_id[:6]).run_id == entry.run_id
        with pytest.raises(KeyError):
            ledger.get("nope")


class TestFlattenAndCompare:
    def test_flatten_paths(self):
        flat = flatten_metrics({"a": 1, "b": {"c": 2.5, "d": {"e": 3}}, "s": "x"})
        assert flat == {"a": 1.0, "b/c": 2.5, "b/d/e": 3.0}

    def test_compare_same_fingerprint(self):
        rows = compare_entries(make_entry(build=1.0), make_entry(build=1.5))
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["structures/GRID/build_seconds"]["delta_pct"] == 50.0

    def test_refuses_differing_fingerprints(self):
        other = make_entry(fingerprint={**FP, "scale": 999, "vector": "0"})
        with pytest.raises(FingerprintMismatch) as exc:
            compare_entries(make_entry(), other)
        assert "scale" in str(exc.value) and "vector" in str(exc.value)


class TestGate:
    def test_identity_passes(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(make_entry())
        ledger.record(make_entry())
        result = gate_run(ledger, max_regression=10)
        assert result.ok and not result.failures

    def test_regression_fails(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(make_entry(build=1.0))
        ledger.record(make_entry(build=3.0))
        result = gate_run(ledger, max_regression=25)
        assert not result.ok
        assert any("build_seconds" in f for f in result.failures)

    def test_improvement_passes(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(make_entry(build=2.0))
        ledger.record(make_entry(build=0.5))
        assert gate_run(ledger, max_regression=25).ok

    def test_only_seconds_metrics_gate(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        slow = make_entry()
        slow.metrics["speedup"] = 1.0
        fast = make_entry()
        fast.metrics["speedup"] = 99.0  # improved ratio must not "regress"
        ledger.record(slow)
        ledger.record(fast)
        assert gate_run(ledger, max_regression=25).ok

    def test_median_of_window_absorbs_one_outlier(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        for build in (1.0, 1.0, 10.0):  # one noisy spike in the history
            ledger.record(make_entry(build=build))
        ledger.record(make_entry(build=1.1))
        assert gate_run(ledger, max_regression=25, window=3).ok

    def test_never_compares_across_fingerprints(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(make_entry(build=0.001))
        ledger.record(make_entry(build=100.0, fingerprint={**FP, "scale": 9}))
        result = gate_run(ledger, max_regression=25)
        assert result.ok  # different fingerprint: no history, nothing to gate
        assert any("no prior runs" in note for note in result.notes)

    def test_empty_ledger_fails(self, tmp_path):
        result = gate_run(Ledger(tmp_path / "L.jsonl"))
        assert not result.ok

    def test_pinned_baseline_overrides_history(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        base = ledger.record(make_entry(build=1.0))
        ledger.record(make_entry(build=50.0))  # would poison the median
        ledger.set_baseline(base.run_id)
        result = gate_run(ledger, max_regression=25)
        assert not result.ok  # latest (50.0) gated against the 1.0 baseline

    def test_totals_drift_fails_outright(self, tmp_path):
        ledger = Ledger(tmp_path / "L.jsonl")
        ledger.record(make_entry(totals={"GRID": {"data_reads": 10}}))
        ledger.record(make_entry(totals={"GRID": {"data_reads": 11}}))
        result = gate_run(ledger, max_regression=1000)
        assert not result.ok
        assert any("drifted" in f for f in result.failures)


class TestResolve:
    def test_explicit_values(self, tmp_path):
        assert resolve_ledger(False) is None
        assert resolve_ledger("0") is None
        ledger = Ledger(tmp_path / "L.jsonl")
        assert resolve_ledger(ledger) is ledger
        assert resolve_ledger(str(tmp_path / "x.jsonl")).path.name == "x.jsonl"

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert resolve_ledger(None) is None
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.jsonl"))
        assert resolve_ledger(None).path.name == "env.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", "off")
        assert ledger_from_env() is None


class TestEntryBuilders:
    def test_from_timers_splits_phases(self):
        entry = make_entry(build=1.5, query=0.5)
        structures = entry.metrics["structures"]
        assert structures["GRID"] == {"build_seconds": 1.5, "query_seconds": 0.5}
        assert entry.metrics["total_seconds"] == 2.0

    def test_from_query_bench_document(self):
        doc = {
            "schema": "repro.query/bench/v1",
            "scale": 100,
            "page_size": 8192,
            "scalar_seconds": 2.0,
            "vector_seconds": 1.0,
            "speedup": 2.0,
            "per_structure": {
                "GRID": {"scalar_seconds": 2.0, "vector_seconds": 1.0}
            },
        }
        entry = entry_from_bench_document(doc)
        assert entry.source == "repro.query.bench"
        assert entry.metrics["total_seconds"] == 1.0
        assert entry.fingerprint["vector"] == "ab"

    def test_from_parallel_bench_document(self):
        doc = {
            "schema": "repro.parallel/bench/v1",
            "scale": 100,
            "page_size": 512,
            "workers": 4,
            "parallel_seconds": 3.0,
            "serial_seconds": 9.0,
        }
        entry = entry_from_bench_document(doc)
        assert entry.source == "repro.parallel.bench"
        assert entry.fingerprint["workers"] == 4

    def test_inflate_scales_only_seconds(self):
        doc = {
            "schema": "repro.query/bench/v1",
            "scale": 100,
            "page_size": 8192,
            "scalar_seconds": 2.0,
            "vector_seconds": 1.0,
            "speedup": 2.0,
            "per_structure": {},
        }
        entry = entry_from_bench_document(doc, inflate=2.0)
        assert entry.metrics["vector_seconds"] == 2.0
        assert entry.meta["speedup"] == 2.0  # ratio untouched
        assert entry.meta["inflate"] == 2.0

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError, match="unrecognised"):
            entry_from_bench_document({"schema": "nope"})


class TestCli:
    def write_bench(self, tmp_path):
        doc = {
            "schema": "repro.query/bench/v1",
            "scale": 100,
            "page_size": 8192,
            "scalar_seconds": 2.0,
            "vector_seconds": 1.0,
            "per_structure": {},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(doc))
        return path

    def test_record_log_gate_loop(self, tmp_path, capsys):
        ledger_arg = ["--ledger", str(tmp_path / "L.jsonl")]
        bench = self.write_bench(tmp_path)
        assert main([*ledger_arg, "record", str(bench)]) == 0
        assert main([*ledger_arg, "record", str(bench)]) == 0
        assert main([*ledger_arg, "gate", "--max-regression", "25"]) == 0
        assert main([*ledger_arg, "record", str(bench), "--inflate", "2"]) == 0
        assert main([*ledger_arg, "gate", "--max-regression", "75"]) == 2
        out = capsys.readouterr()
        assert "gate: OK" in out.out
        assert "FAIL" in out.err

    def test_log_markdown(self, tmp_path, capsys):
        ledger_arg = ["--ledger", str(tmp_path / "L.jsonl")]
        main([*ledger_arg, "record", str(self.write_bench(tmp_path))])
        assert main([*ledger_arg, "log", "--format", "markdown"]) == 0
        assert "| run | when |" in capsys.readouterr().out

    def test_compare_refuses_cross_fingerprint(self, tmp_path, capsys):
        ledger = Ledger(tmp_path / "L.jsonl")
        a = ledger.record(make_entry())
        b = ledger.record(make_entry(fingerprint={**FP, "scale": 7}))
        code = main(
            ["--ledger", str(ledger.path), "compare", a.run_id, b.run_id]
        )
        assert code == 2
        assert "refusing to compare" in capsys.readouterr().err

    def test_compare_markdown(self, tmp_path, capsys):
        ledger = Ledger(tmp_path / "L.jsonl")
        a = ledger.record(make_entry(build=1.0))
        b = ledger.record(make_entry(build=2.0))
        code = main(
            [
                "--ledger",
                str(ledger.path),
                "compare",
                a.run_id,
                b.run_id,
                "--format",
                "markdown",
            ]
        )
        assert code == 0
        assert "| `structures/GRID/build_seconds` |" in capsys.readouterr().out

    def test_baseline_set_and_show(self, tmp_path, capsys):
        ledger = Ledger(tmp_path / "L.jsonl")
        entry = ledger.record(make_entry())
        args = ["--ledger", str(ledger.path)]
        assert main([*args, "baseline", "set", entry.run_id]) == 0
        assert main([*args, "baseline", "show"]) == 0
        assert entry.run_id in capsys.readouterr().out

    def test_record_unreadable_bench(self, tmp_path, capsys):
        code = main(
            ["--ledger", str(tmp_path / "L.jsonl"), "record", str(tmp_path / "no.json")]
        )
        assert code == 1
