"""Tests for the twin grid file (class C2)."""

from repro.geometry.rect import Rect
from repro.pam.gridfile import GridFile
from repro.pam.twingrid import TwinGridFile
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_QUERIES,
    check_pam_against_oracle,
    make_clustered_points,
    make_points,
)


def build(points):
    twin = TwinGridFile(PageStore(), 2)
    for i, p in enumerate(points):
        twin.insert(p, i)
    return twin


class TestCorrectness:
    def test_uniform(self):
        points = make_points(900)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_clusters(self):
        points = make_clustered_points(800, seed=1)
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_diagonal(self):
        points = [(i / 700.0, i / 700.0) for i in range(700)]
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)

    def test_sorted_insertion(self):
        points = sorted(make_points(700, seed=2))
        check_pam_against_oracle(build(points), points, STANDARD_QUERIES)


class TestTwinBehaviour:
    def test_records_in_exactly_one_file(self):
        twin = build(make_points(1200, seed=3))
        seen: set[object] = set()
        for pid in twin.store.page_ids():
            if twin.store.kind(pid) is not PageKind.DATA:
                continue
            for _, rid in twin.store._objects[pid].records:
                assert rid not in seen, "record duplicated across the twins"
                seen.add(rid)
        assert len(seen) == len(twin)

    def test_twin_holds_overflow(self):
        """Some records really do live in the second grid file."""
        twin = build(make_clustered_points(1500, seed=4))
        twin_pids = set(twin._layers[1].boxes)
        overflow = sum(
            len(twin.store._objects[pid].records) for pid in twin_pids
        )
        assert overflow > 0

    def test_capacity_never_exceeded(self):
        twin = build(make_points(1500, seed=5))
        for pid in twin.store.page_ids():
            if twin.store.kind(pid) is PageKind.DATA:
                assert len(twin.store._objects[pid].records) <= twin.record_capacity

    def test_higher_storage_utilization_than_grid_file(self):
        """[HSW 88]: the twin principle is a space optimisation."""
        for seed in (6, 7):
            points = make_points(2500, seed=seed)
            twin = build(points)
            grid = GridFile(PageStore(), 2)
            for i, p in enumerate(points):
                grid.insert(p, i)
            assert (
                twin.metrics().storage_utilization
                > grid.metrics().storage_utilization
            )

    def test_exact_match_touches_both_files(self):
        twin = build(make_points(800, seed=8))
        twin.store.begin_operation()
        twin.store.begin_operation()
        before = twin.store.stats.total
        twin.exact_match((0.123, 0.456))
        # Two directory reads plus two data reads: the twin cost.
        assert 2 <= twin.store.stats.total - before <= 4
