"""Tests for the R+-tree (disjoint regions, clipped data rectangles)."""

from repro.geometry.rect import Rect
from repro.sam.rplustree import RPlusTree, _Inner
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_POINTS,
    STANDARD_QUERIES,
    check_sam_against_oracle,
    make_rects,
)


def build(rects):
    tree = RPlusTree(PageStore(), 2)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    return tree


def walk_inner(tree):
    if tree._root_is_leaf:
        return
    stack = [(Rect.unit(2), tree._root_pid)]
    while stack:
        region, pid = stack.pop()
        node = tree.store._objects[pid]
        yield region, node
        if not node.leaf_children:
            stack.extend(zip(node.regions, node.pids))


class TestCorrectness:
    def test_small_rects(self):
        rects = make_rects(900, seed=1)
        check_sam_against_oracle(build(rects), rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_medium_rects(self):
        rects = make_rects(400, seed=2, max_extent=0.2)
        check_sam_against_oracle(build(rects), rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_degenerate_rects(self):
        rects = [Rect.from_point((i / 300.0, (i * 7 % 300) / 300.0)) for i in range(300)]
        check_sam_against_oracle(build(rects), rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_no_duplicate_results(self):
        rects = make_rects(600, seed=3, max_extent=0.15)
        tree = build(rects)
        for query in STANDARD_QUERIES:
            hits = tree.intersection(query)
            assert len(hits) == len(set(hits))


class TestStructure:
    def test_regions_partition_completely(self):
        tree = build(make_rects(800, seed=4))
        for region, node in walk_inner(tree):
            total = sum(r.area() for r in node.regions)
            assert abs(total - region.area()) < 1e-9
            for i, a in enumerate(node.regions):
                for b in node.regions[i + 1 :]:
                    inter = a.intersection(b)
                    assert inter is None or inter.area() == 0.0

    def test_redundancy_is_at_least_one(self):
        rects = make_rects(600, seed=5)
        tree = build(rects)
        assert tree.stored_entries >= len(rects)

    def test_points_are_never_duplicated(self):
        rects = [Rect.from_point((i / 400.0, (i * 3 % 400) / 400.0)) for i in range(400)]
        tree = build(rects)
        assert tree.stored_entries == len(rects)

    def test_large_rects_multiply_redundancy(self):
        """The clipping trade-off: larger objects, more copies."""
        small = build(make_rects(400, seed=6, max_extent=0.01))
        large = build(make_rects(400, seed=6, max_extent=0.25))
        assert (
            large.stored_entries / len(large)
            > small.stored_entries / len(small)
        )

    def test_point_query_single_path(self):
        """The R+-tree's selling point: no overlap on point queries."""
        rects = make_rects(1500, seed=7, max_extent=0.01)
        tree = build(rects)
        for probe in STANDARD_POINTS:
            tree.store.begin_operation()
            tree.store.begin_operation()
            before = tree.store.stats.total
            tree.point_query(probe)
            # One leaf per level plus boundary neighbours at most.
            assert tree.store.stats.total - before <= 2 * (tree.directory_height + 1)
