"""Units for the durable storage stack: IO shim, WAL, page file, store.

The crash *property* tests live in ``test_crash_recovery.py`` and the
pool invariants in ``test_buffer_pool.py``; this file covers the
mechanics those build on — framing, checksums, fault injection,
lifecycle parity with the simulated store, checkpoint/snapshot export.
"""

from __future__ import annotations

import pickle

import pytest

from repro.storage.disk import (
    AliasingError,
    CorruptionError,
    DiskPageStore,
    PageFile,
    PageOverflowError,
    default_slot_size,
    poison_page,
    restore_method,
    snapshot_method,
)
from repro.storage.io import FaultInjectingIO, InjectedCrash, OsFileIO
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.storage.wal import WriteAheadLog


# -- fault-injecting IO ----------------------------------------------------


class TestFaultInjectingIO:
    def test_counts_writes_without_fail_after(self, tmp_path):
        io = FaultInjectingIO()
        h = io.open(tmp_path / "f")
        h.pwrite(b"abc", 0)
        h.pwrite(b"d", 3)
        assert io.writes == 2
        assert h.pread(4, 0) == b"abcd"
        h.close()

    def test_fail_stop_drops_the_scheduled_write(self, tmp_path):
        io = FaultInjectingIO(fail_after=2, mode="stop")
        h = io.open(tmp_path / "f")
        h.pwrite(b"aaaa", 0)
        with pytest.raises(InjectedCrash):
            h.pwrite(b"bbbb", 4)
        assert h.size() == 4  # the second write never landed

    def test_torn_write_persists_a_strict_prefix(self, tmp_path):
        io = FaultInjectingIO(fail_after=1, mode="torn", seed=3)
        h = io.open(tmp_path / "f")
        with pytest.raises(InjectedCrash):
            h.pwrite(b"x" * 100, 0)
        assert 1 <= h.size() < 100

    def test_bit_flip_persists_corrupted_data(self, tmp_path):
        io = FaultInjectingIO(fail_after=1, mode="flip", seed=5)
        h = io.open(tmp_path / "f")
        with pytest.raises(InjectedCrash):
            h.pwrite(b"\x00" * 64, 0)
        data = (tmp_path / "f").read_bytes()
        assert len(data) == 64
        assert sum(bin(b).count("1") for b in data) == 1  # exactly one bit

    def test_dead_provider_refuses_everything(self, tmp_path):
        io = FaultInjectingIO(fail_after=1)
        h = io.open(tmp_path / "f")
        with pytest.raises(InjectedCrash):
            h.pwrite(b"x", 0)
        with pytest.raises(InjectedCrash):
            h.pread(1, 0)
        with pytest.raises(InjectedCrash):
            io.open(tmp_path / "g")

    def test_determinism_per_seed(self, tmp_path):
        def torn_size(seed):
            io = FaultInjectingIO(fail_after=1, mode="torn", seed=seed)
            h = io.open(tmp_path / f"f{seed}")
            with pytest.raises(InjectedCrash):
                h.pwrite(b"y" * 500, 0)
            return h.size()

        assert torn_size(11) == torn_size(11)


# -- the WAL ----------------------------------------------------------------


class TestWriteAheadLog:
    def test_replay_returns_only_committed_groups(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append("page", 1, "data", b"one")
        wal.commit(next_id=2, pinned=[0])
        wal.append("page", 2, "data", b"two")  # never committed
        wal.close()

        wal = WriteAheadLog(tmp_path / "wal")
        records, end, torn = wal.replay()
        assert [r.kind for r in records] == ["page", "commit"]
        assert records[0].fields == (1, "data", b"one")
        assert records[1].fields == (2, [0])
        assert not torn
        wal.truncate_to(end)
        assert wal.size == end

    def test_torn_tail_is_detected_and_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append("page", 1, "data", b"x" * 50)
        wal.commit(next_id=2, pinned=[])
        end_of_commit = wal.size
        wal.append("page", 2, "data", b"y" * 50)
        wal.commit(next_id=3, pinned=[])
        wal._fh.truncate(wal.size - 7)  # tear the last commit frame
        wal.close()

        wal = WriteAheadLog(tmp_path / "wal")
        records, end, torn = wal.replay()
        assert torn
        assert end == end_of_commit
        assert [r.kind for r in records] == ["page", "commit"]

    def test_corrupt_frame_stops_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append("page", 1, "data", b"clean")
        wal.commit(next_id=2, pinned=[])
        mid = wal.size
        wal.append("page", 2, "data", b"doomed")
        wal.commit(next_id=3, pinned=[])
        # flip one payload byte of the second group
        raw = bytearray((tmp_path / "wal").read_bytes())
        raw[mid + 10] ^= 0xFF
        (tmp_path / "wal").write_bytes(raw)
        wal.close()

        wal = WriteAheadLog(tmp_path / "wal")
        records, end, torn = wal.replay()
        assert torn and end == mid
        assert [r.kind for r in records] == ["page", "commit"]

    def test_reset_empties_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append("meta", b"blob")
        wal.commit(next_id=9, pinned=[])
        wal.reset()
        records, _, torn = wal.replay()
        assert records == [] and not torn

    def test_rejects_foreign_file(self, tmp_path):
        (tmp_path / "wal").write_bytes(b"NOTAWAL!")
        with pytest.raises(ValueError, match="not a WAL"):
            WriteAheadLog(tmp_path / "wal").replay()


# -- the page file ----------------------------------------------------------


class TestPageFile:
    def test_roundtrip_and_crc(self, tmp_path):
        pf = PageFile(tmp_path / "pages", OsFileIO(), 4096, 512)
        crc = pf.write_slot(3, PageKind.DATA, b"payload")
        kind, payload = pf.read_slot(3, expected_crc=crc)
        assert kind is PageKind.DATA and payload == b"payload"

    def test_overflow_is_loud(self, tmp_path):
        pf = PageFile(tmp_path / "pages", OsFileIO(), 4096, 512)
        with pytest.raises(PageOverflowError):
            pf.write_slot(0, PageKind.DATA, b"x" * 4096)

    def test_corrupted_payload_is_detected(self, tmp_path):
        pf = PageFile(tmp_path / "pages", OsFileIO(), 4096, 512)
        pf.write_slot(0, PageKind.DIRECTORY, b"sensitive")
        raw = bytearray((tmp_path / "pages").read_bytes())
        raw[PageFile.HEADER_SIZE + PageFile.SLOT_HEADER] ^= 0x01
        (tmp_path / "pages").write_bytes(raw)
        pf2 = PageFile(tmp_path / "pages", OsFileIO(), 4096, 512)
        with pytest.raises(CorruptionError, match="checksum"):
            pf2.read_slot(0)

    def test_stale_slot_vs_page_table(self, tmp_path):
        pf = PageFile(tmp_path / "pages", OsFileIO(), 4096, 512)
        pf.write_slot(0, PageKind.DATA, b"old")
        with pytest.raises(CorruptionError, match="stale"):
            pf.read_slot(0, expected_crc=0xDEAD)

    def test_default_slot_size_scales_with_page_size(self):
        assert default_slot_size(512) >= 16 * 512
        assert default_slot_size(8192) >= 16 * 8192
        assert default_slot_size(512) % 4096 == 0


# -- the durable store ------------------------------------------------------


def _fresh(tmp_path, **kw):
    kw.setdefault("pool_pages", 8)
    return DiskPageStore(tmp_path / "store", **kw)


class TestDiskPageStore:
    def test_lifecycle_matches_simulated_semantics(self, tmp_path):
        sim, disk = PageStore(), _fresh(tmp_path)
        for store in (sim, disk):
            store.begin_operation()
            a = store.allocate(PageKind.DATA, [1])
            b = store.allocate(PageKind.DIRECTORY, [2])
            store.write(a)
            store.write(b)
            store.begin_operation()
            assert store.read(a) == [1]
            store.free(b)
            assert store.page_ids() == [a]
            assert store.kind(a) is PageKind.DATA
        assert sim.stats == disk.stats

    def test_reopen_recovers_committed_state(self, tmp_path):
        store = _fresh(tmp_path)
        store.begin_operation()
        a = store.allocate(PageKind.DATA, ["alpha"])
        store.write(a)
        store.pin(a)
        store.commit(meta={"tag": 42})
        store.close()

        back = _fresh(tmp_path)
        assert back.recovered
        assert back.meta_blob == {"tag": 42}
        assert back.peek(a) == ["alpha"]
        assert back.is_pinned(a)
        # allocation cursor survives: new pages never reuse ids
        assert back.allocate(PageKind.DATA, []) == a + 1

    def test_uncommitted_tail_is_dropped_on_recovery(self, tmp_path):
        io = FaultInjectingIO()
        store = DiskPageStore(tmp_path / "store", pool_pages=8, io=io)
        store.begin_operation()
        a = store.allocate(PageKind.DATA, ["durable"])
        store.write(a)
        store.commit()
        store.begin_operation()
        store.read(a).append("lost")  # mutation after the last commit
        store.write(a)
        io.crashed = True  # die before the next commit

        back = _fresh(tmp_path)
        assert back.peek(a) == ["durable"]

    def test_peek_is_uncharged_and_never_promotes(self, tmp_path):
        store = _fresh(tmp_path)
        pids = []
        store.begin_operation()
        for i in range(12):  # larger than the pool
            pid = store.allocate(PageKind.DATA, [i])
            store.write(pid)
            pids.append(pid)
        store.commit()
        store.begin_operation()
        extra = store.allocate(PageKind.DATA, ["extra"])  # admission evicts
        store.write(extra)
        evicted = [p for p in pids if p not in store.pool.frames]
        assert evicted, "pool should have evicted something"
        before = store.stats.snapshot()
        target = evicted[0]
        assert store.peek(target) == [pids.index(target)]
        assert store.stats == before
        assert target not in store.pool.frames

    def test_write_without_residency_is_an_aliasing_error(self, tmp_path):
        store = _fresh(tmp_path)
        store.begin_operation()
        a = store.allocate(PageKind.DATA, ["held"])
        store.write(a)
        store.commit()
        store.begin_operation()
        del store.pool.frames[a]  # simulate an eviction of the held page
        store.pool._ring.remove(a)
        with pytest.raises(AliasingError):
            store.write(a)

    def test_silent_mutation_is_committed_not_lost(self, tmp_path):
        store = _fresh(tmp_path)
        store.begin_operation()
        a = store.allocate(PageKind.DATA, ["v1"])
        b = store.allocate(PageKind.DATA, ["other"])
        store.write(a)
        store.write(b)
        store.commit()
        store.begin_operation()
        store.read(a)[0] = "v2"  # mutate WITHOUT store.write(a)
        store.write(b)  # some other write makes the commit happen
        store.commit()
        assert store.pool.silent_dirty == 1
        store.close()
        assert _fresh(tmp_path).peek(a) == ["v2"]

    def test_checkpoint_empties_wal_and_survives_reopen(self, tmp_path):
        store = _fresh(tmp_path)
        store.begin_operation()
        a = store.allocate(PageKind.DATA, list(range(10)))
        store.write(a)
        store.checkpoint()
        assert store._wal.size == store._wal.committed_end
        assert store.checkpoints == 1
        store.close()
        assert _fresh(tmp_path).peek(a) == list(range(10))

    def test_export_snapshot_is_a_complete_store(self, tmp_path):
        store = _fresh(tmp_path)
        store.begin_operation()
        a = store.allocate(PageKind.DATA, ["snap"])
        store.write(a)
        store.export_snapshot(tmp_path / "snap")
        store.begin_operation()
        store.read(a).append("after")  # diverge the original
        store.write(a)
        store.close()

        copy = DiskPageStore(tmp_path / "snap", pool_pages=8)
        assert copy.peek(a) == ["snap"]

    def test_page_overflow_names_the_remedy(self, tmp_path):
        store = DiskPageStore(tmp_path / "store", pool_pages=8, slot_size=4096)
        store.begin_operation()
        a = store.allocate(PageKind.DATA, ["x" * 8000])
        store.write(a)
        with pytest.raises(PageOverflowError, match="slot_size"):
            store.commit()

    def test_page_size_mismatch_is_rejected(self, tmp_path):
        _fresh(tmp_path).close()
        with pytest.raises(ValueError, match="page_size"):
            DiskPageStore(tmp_path / "store", page_size=8192, pool_pages=8)

    def test_store_is_not_picklable(self, tmp_path):
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(_fresh(tmp_path))

    def test_io_stats_shape(self, tmp_path):
        store = _fresh(tmp_path)
        stats = store.io_stats()
        assert stats["backend"] == "disk"
        for section in ("pool", "wal", "pagefile"):
            assert isinstance(stats[section], dict)


# -- method persistence helpers ---------------------------------------------


def test_snapshot_and_restore_method(tmp_path):
    from repro.pam.gridfile import GridFile

    store = _fresh(tmp_path, pool_pages=16)
    grid = GridFile(store)
    for i in range(50):
        grid.insert((i / 50.0, (i * 7 % 50) / 50.0), i)
    blob = pickle.loads(pickle.dumps(snapshot_method(grid)))
    store.commit()

    clone = restore_method(store, blob)
    assert sorted(clone.iter_records()) == sorted(grid.iter_records())
    clone.audit()


def test_poison_page_strips_slots_and_dict():
    class Slotted:
        __slots__ = ("x", "y")

    class Plain:
        pass

    s = Slotted()
    s.x, s.y = 1, 2
    poison_page(s)
    with pytest.raises(AttributeError):
        _ = s.x

    p = Plain()
    p.z = 3
    poison_page(p)
    with pytest.raises(AttributeError):
        _ = p.z
