"""Smoke tests for every ``python -m`` entry point.

The contract: ``--help`` exits 0 and names the module invocation in its
usage line; argparse misuse exits 2; a missing input file exits 1 (for
the CLIs that read one).  These run the real interpreter so runpy
wiring (``if __name__ == "__main__"``, lazy imports, double-import
warnings) is exercised, not just the ``main()`` functions.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

MODULES = (
    "repro.obs.report",
    "repro.obs.ledger",
    "repro.obs.profile",
    "repro.obs.explain",
    "repro.obs.telemetry",
    "repro.verify.fuzz",
    "repro.query.bench",
    "repro.storage.bench",
)

#: CLIs whose first positional is an input file they must fail cleanly on.
FILE_READERS = ("repro.obs.report", "repro.obs.profile", "repro.obs.explain")


def run_module(module: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        timeout=120,
    )


class TestEntryPoints:
    @pytest.mark.parametrize("module", MODULES)
    def test_help_exits_zero_and_names_module(self, module):
        proc = run_module(module, "--help")
        assert proc.returncode == 0, proc.stderr
        assert f"python -m {module}" in proc.stdout
        assert proc.stderr == ""

    @pytest.mark.parametrize("module", MODULES)
    def test_unknown_flag_exits_two(self, module):
        proc = run_module(module, "--definitely-not-a-flag")
        assert proc.returncode == 2
        assert "usage:" in proc.stderr

    @pytest.mark.parametrize("module", FILE_READERS)
    def test_missing_input_exits_one(self, module, tmp_path):
        proc = run_module(module, str(tmp_path / "absent.json"))
        assert proc.returncode == 1
        assert proc.stderr  # a diagnostic, not a traceback spray
        assert "Traceback" not in proc.stderr

    def test_telemetry_validate_missing_file_exits_one(self, tmp_path):
        proc = run_module(
            "repro.obs.telemetry", "validate", str(tmp_path / "absent.jsonl")
        )
        assert proc.returncode == 1
        assert "UNREADABLE" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_ledger_tolerates_missing_file(self, tmp_path):
        proc = run_module(
            "repro.obs.ledger", "--ledger", str(tmp_path / "L.jsonl"), "log"
        )
        assert proc.returncode == 0
        assert "empty" in proc.stdout
