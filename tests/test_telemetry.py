"""Tests for the live storage telemetry layer (ISSUE tentpole).

The contract under test, in order of importance:

1. **Bit-identity** — with telemetry on, every observable artefact
   (query results, charged stats, explain traces, structure snapshots)
   is identical to a telemetry-off run, on both store backends.
2. The flight recorder, slow-operation log and Prometheus exports are
   schema-valid and deterministic where they claim to be (merges).
3. ``DiskPageStore.io_stats()`` keeps its pinned key set, and the
   run-report ``storage`` block round-trips through the report CLI.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.obs.metrics import LATENCY_BUCKETS_SECONDS, MetricsRegistry
from repro.obs.telemetry import (
    IO_STATS_KEYS,
    IO_STATS_PAGEFILE_KEYS,
    IO_STATS_POOL_KEYS,
    IO_STATS_WAL_KEYS,
    SLOW_OP_SCHEMA,
    TIMELINE_SCHEMA,
    FlightRecorder,
    MetricsServer,
    Telemetry,
    active_telemetry,
    main as telemetry_main,
    merge_timelines,
    prometheus_name,
    read_timeline,
    set_telemetry,
    summarise_histogram,
    to_prometheus,
    validate_io_stats,
    validate_slow_op_log,
    validate_timeline,
    write_prometheus,
)
from repro.storage.disk import DiskPageStore
from repro.storage.io import DelayingIO
from repro.storage.page import PageKind
from repro.verify.fuzz import STRUCTURES, make_ops

from tests.test_backend_equivalence import _run_backend


@pytest.fixture(autouse=True)
def _no_leaked_global_telemetry():
    """Whatever a test installs process-wide must not outlive it."""
    yield
    set_telemetry(None)


def _disk_workload(tmp_path, telemetry=None, *, fsync=False):
    """A small canonical disk workload: build, evict, commit, checkpoint."""
    store = DiskPageStore(
        tmp_path / "store",
        page_size=512,
        pool_pages=8,
        fsync=fsync,
        telemetry=telemetry,
    )
    pids = []
    for i in range(32):
        store.begin_operation()  # one op per page: auto-commit keeps the
        pids.append(  # dirty set small, so the pool genuinely evicts
            store.allocate(PageKind.DATA, {"i": i, "pad": list(range(40))})
        )
    store.commit()
    for pid in pids:  # touch everything: 32 pages through an 8-frame pool
        store.begin_operation()
        store.read(pid)
    store.checkpoint()
    for pid in pids:  # post-checkpoint: misses pread the page file, clean
        store.begin_operation()  # frames evict
        store.read(pid)
    return store, pids


class TestTelemetryCore:
    def test_observe_io_fills_histogram_and_byte_counter(self):
        telem = Telemetry()
        telem.observe_io("pread", 0.002, 512)
        telem.observe_io("pread", 0.004, 512)
        telem.observe_io("fsync", 0.01, 0)
        hists = telem.registry.histograms()
        assert hists["storage.io.pread_seconds"].count == 2
        assert hists["storage.io.fsync_seconds"].count == 1
        counters = telem.registry.counters()
        assert counters["storage.io.pread_bytes"].value == 1024
        # zero-byte ops (fsync) never create a bytes counter
        assert "storage.io.fsync_bytes" not in counters

    def test_io_counts_deltas_name_the_op(self):
        telem = Telemetry()
        telem.observe_io("pwrite", 0.001, 64)
        telem.observe_io("pwrite", 0.003, 64)
        counts = telem.io_counts()
        assert counts["pwrite"][0] == 2
        assert counts["pwrite"][1] == pytest.approx(0.004)

    def test_time_context_manager_records_span(self):
        telem = Telemetry()
        with telem.time("storage.commit_seconds") as span:
            pass
        assert span.seconds >= 0.0
        assert telem.registry.histograms()["storage.commit_seconds"].count == 1

    def test_summary_matches_exact_percentiles(self):
        telem = Telemetry()
        hist = telem.histogram("x")
        for v in range(1, 101):
            hist.observe(float(v))
        summary = summarise_histogram(hist)
        assert summary["count"] == 100
        assert summary["p50"] == hist.percentile(50) == 50
        assert summary["p90"] == hist.percentile(90) == 90
        assert summary["p99"] == hist.percentile(99) == 99
        assert summary["min"] == 1 and summary["max"] == 100

    def test_default_buckets_are_the_latency_preset(self):
        telem = Telemetry()
        assert telem.histogram("anything").buckets == LATENCY_BUCKETS_SECONDS

    def test_explicit_instance_beats_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert active_telemetry() is None
        telem = Telemetry()
        set_telemetry(telem)
        assert active_telemetry() is telem
        set_telemetry(None)
        assert active_telemetry() is None

    def test_env_instance_is_a_shared_singleton(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        first = active_telemetry()
        assert first is not None
        assert active_telemetry() is first


class TestSlowOps:
    def test_disabled_without_threshold(self):
        telem = Telemetry()  # no slow_op_ms, no env
        assert telem.slow_op_seconds is None
        assert telem.maybe_slow_op("commit", 100.0) is None
        assert telem.slow_ops == []

    def test_below_threshold_not_recorded(self):
        telem = Telemetry(slow_op_ms=50)
        assert telem.maybe_slow_op("commit", 0.01) is None

    def test_record_shape_pages_and_io(self):
        telem = Telemetry(slow_op_ms=10)
        record = telem.maybe_slow_op(
            "commit",
            0.5,
            pages=list(range(200, 0, -1)),
            io={"fsyncs": 2, "fsync_seconds": 0.4},
            detail={"kind": "range"},
        )
        assert record["op"] == "commit"
        assert record["seconds"] == 0.5
        assert record["threshold_seconds"] == pytest.approx(0.01)
        # the span start clamps at the telemetry epoch
        assert record["started_seconds"] == pytest.approx(
            max(0.0, record["ended_seconds"] - 0.5)
        )
        assert record["page_count"] == 200
        assert record["pages"] == list(range(1, 65))  # sorted, truncated
        assert record["io"]["fsyncs"] == 2
        assert record["detail"] == {"kind": "range"}
        assert record["seq"] == 0

    def test_save_and_validate_log(self, tmp_path):
        telem = Telemetry(slow_op_ms=1, label="unit")
        telem.maybe_slow_op("commit", 0.2, pages=[3, 1])
        telem.maybe_slow_op("query", 0.3)
        path = telem.save_slow_ops(tmp_path / "slow.jsonl")
        assert validate_slow_op_log(path) == []
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["schema"] == SLOW_OP_SCHEMA
        assert lines[0]["count"] == 2
        assert [l["op"] for l in lines[1:]] == ["commit", "query"]

    def test_slow_commit_names_its_fsync(self, tmp_path):
        """ISSUE satellite: a deliberately slowed fsync must produce
        exactly one slow-op record whose span and IO breakdown blame
        the fsync."""
        telem = Telemetry(slow_op_ms=10)
        io = DelayingIO(fsync_delay=0.05)
        store = DiskPageStore(
            tmp_path / "store",
            page_size=512,
            pool_pages=8,
            fsync=True,
            io=io,
            telemetry=telem,
        )
        pid = store.allocate(PageKind.DATA, {"x": 1})
        store.commit()
        commits = [r for r in telem.slow_ops if r["op"] == "commit"]
        assert len(commits) == 1
        record = commits[0]
        assert record["seconds"] >= 0.05
        assert pid in record["pages"]
        assert record["io"]["fsyncs"] >= 1
        assert record["io"]["fsync_seconds"] >= 0.05
        assert record["io"]["wal_records"] >= 1
        assert record["io"]["wal_bytes"] > 0
        assert io.slept["fsync"] >= 1
        store.close()

    def test_fast_commit_records_nothing(self, tmp_path):
        telem = Telemetry(slow_op_ms=60000)
        store, _ = _disk_workload(tmp_path, telem)
        assert [r for r in telem.slow_ops if r["op"] == "commit"] == []
        store.close()


IDENTITY_STRUCTURES = ("GRID-1", "BUDDY+", "R")
N_OPS = 200


class TestBitIdentity:
    """The acceptance criterion: telemetry changes no observable number."""

    @pytest.mark.parametrize("page_size", (512, 8192))
    @pytest.mark.parametrize("name", IDENTITY_STRUCTURES)
    def test_sim_and_disk_identical_with_telemetry_on(
        self, name, page_size, tmp_path
    ):
        spec = STRUCTURES[name]
        ops = make_ops(spec, N_OPS, seed=31)

        from repro.storage.factory import make_store

        baseline_sim = _run_backend(make_store(page_size, backend="sim"), spec, ops)
        baseline_disk = _run_backend(
            DiskPageStore(
                tmp_path / "off", page_size=page_size, pool_pages=8, fsync=False
            ),
            spec,
            ops,
        )

        telem = Telemetry(slow_op_ms=0.0)  # record *everything* as slow
        set_telemetry(telem)  # the query driver also observes
        on_sim = _run_backend(make_store(page_size, backend="sim"), spec, ops)
        disk = DiskPageStore(
            tmp_path / "on",
            page_size=page_size,
            pool_pages=8,
            fsync=False,
            telemetry=telem,
        )
        on_disk = _run_backend(disk, spec, ops)

        for key in baseline_sim:
            assert on_sim[key] == baseline_sim[key], f"sim {key} diverged"
            assert on_disk[key] == baseline_disk[key], f"disk {key} diverged"

        # ...and the instrumentation genuinely measured the disk run.
        counts = telem.io_counts()
        assert counts.get("pwrite", (0, 0))[0] > 0
        assert telem.registry.histograms()["storage.commit_seconds"].count > 0
        assert any(r["op"] == "commit" for r in telem.slow_ops)
        disk.close()


class TestFlightRecorder:
    def test_records_validates_and_finalises(self, tmp_path):
        telem = Telemetry(label="unit")
        path = tmp_path / "timeline.jsonl"
        ops = telem.counter("ops")
        with FlightRecorder(telem, path, interval_seconds=0.01, label="unit"):
            for _ in range(50):
                ops.inc()
                telem.observe("x_seconds", 0.001)
        assert validate_timeline(path) == []
        header, samples = read_timeline(path)
        assert header["schema"] == TIMELINE_SCHEMA
        assert header["interval_seconds"] == 0.01
        assert header["label"] == "unit"
        assert samples[-1]["final"] is True
        assert samples[-1]["counters"]["ops"] == 50
        assert samples[-1]["histograms"]["x_seconds"]["count"] == 50
        assert [s["seq"] for s in samples] == list(range(len(samples)))

    def test_run_shorter_than_interval_still_samples_once(self, tmp_path):
        telem = Telemetry()
        recorder = FlightRecorder(
            telem, tmp_path / "t.jsonl", interval_seconds=60.0
        )
        recorder.start()
        recorder.stop()
        assert recorder.samples_written == 1
        assert validate_timeline(recorder.path) == []

    def test_pool_gauges_appear_in_samples(self, tmp_path):
        telem = Telemetry()
        store, _ = _disk_workload(tmp_path, telem)
        sample = telem.sample()
        assert sample["gauges"]["storage.stores"] == 1
        assert sample["gauges"]["storage.pool.resident"] <= 8
        assert sample["gauges"]["storage.pool.budget"] == 8
        assert sample["gauges"]["storage.wal.bytes_since_checkpoint"] >= 0
        store.close()

    def test_bad_interval_and_double_start_rejected(self, tmp_path):
        telem = Telemetry()
        with pytest.raises(ValueError):
            FlightRecorder(telem, tmp_path / "t.jsonl", interval_seconds=0)
        recorder = FlightRecorder(telem, tmp_path / "t.jsonl").start()
        with pytest.raises(ValueError):
            recorder.start()
        recorder.stop()

    def test_validator_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema":"nope","kind":"header"}\n')
        assert validate_timeline(path)


class TestMergeTimelines:
    def _record(self, tmp_path, worker: str, n: int):
        telem = Telemetry()
        counter = telem.counter("ops")
        path = tmp_path / f"timeline-{worker}.jsonl"
        recorder = FlightRecorder(
            telem, path, interval_seconds=60.0, label=worker, worker=worker
        ).start()
        counter.inc(n)
        recorder.stop()
        return path

    def test_merge_is_deterministic_and_valid(self, tmp_path):
        a = self._record(tmp_path, "w-a", 3)
        b = self._record(tmp_path, "w-b", 5)
        out1 = tmp_path / "merged1.jsonl"
        out2 = tmp_path / "merged2.jsonl"
        header, merged = merge_timelines([a, b], out1)
        merge_timelines([a, b], out2)
        assert out1.read_bytes() == out2.read_bytes()
        assert header["sources"] == ["w-a", "w-b"]
        assert validate_timeline(out1) == []
        assert [s["worker"] for s in merged] == ["w-a", "w-b"]
        assert [s["seq"] for s in merged] == [0, 1]
        assert all("worker_seq" in s for s in merged)

    def test_merge_rejects_non_timeline(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema":"other"}\n')
        with pytest.raises(ValueError):
            merge_timelines([bad])


class TestIoStatsSchema:
    """ISSUE satellite: the io_stats document keys are pinned."""

    def test_keys_pinned_without_telemetry(self, tmp_path):
        store, _ = _disk_workload(tmp_path)
        stats = store.io_stats()
        for key in IO_STATS_KEYS:
            assert key in stats, f"io_stats lost key {key!r}"
        for key in IO_STATS_POOL_KEYS:
            assert key in stats["pool"], f"pool block lost key {key!r}"
        for key in IO_STATS_WAL_KEYS:
            assert key in stats["wal"], f"wal block lost key {key!r}"
        for key in IO_STATS_PAGEFILE_KEYS:
            assert key in stats["pagefile"], f"pagefile block lost {key!r}"
        assert "write_amplification" in stats
        assert validate_io_stats(stats) == []
        assert "latency" not in stats  # additive: telemetry-only
        store.close()

    def test_telemetry_adds_latency_and_slow_ops(self, tmp_path):
        telem = Telemetry(slow_op_ms=0.0)
        store, _ = _disk_workload(tmp_path, telem)
        stats = store.io_stats()
        assert validate_io_stats(stats) == []
        assert stats["slow_ops"] == len(telem.slow_ops) > 0
        latency = stats["latency"]
        assert latency["storage.commit_seconds"]["count"] >= 1
        assert latency["storage.io.pwrite_seconds"]["count"] >= 1
        store.close()

    def test_validator_reports_missing_keys(self):
        assert validate_io_stats({}) != []
        assert validate_io_stats({"backend": "disk"}) != []
        assert validate_io_stats("not a mapping") == ["io_stats is not a mapping"]

    def test_storage_block_round_trips_through_report(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.obs.export import validate_run_report
        from repro.obs.report import main as report_main
        from repro.obs.runner import traced_pam_run
        from repro.pam.twolevelgrid import TwoLevelGridFile

        from tests.conftest import make_points

        monkeypatch.setenv("REPRO_STORE_BACKEND", "disk")
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "stores"))
        _, report = traced_pam_run(
            {"GRID": lambda s, dims=2: TwoLevelGridFile(s, dims)},
            make_points(150, seed=5),
            seed=23,
            label="telemetry-roundtrip",
            ledger=False,
        )
        saved = report.save(tmp_path / "report.json")
        data = json.loads(saved.read_text())
        assert validate_run_report(data) == []
        assert data["structures"]["GRID"]["storage"]["backend"] == "disk"
        assert report_main([str(saved)]) == 0
        out = capsys.readouterr().out
        assert "storage disk" in out
        assert "hit_rate=" in out
        assert report_main([str(saved), "--format", "markdown"]) == 0
        assert "| write amp |" in capsys.readouterr().out


class TestPrometheus:
    def test_name_sanitisation(self):
        assert (
            prometheus_name("storage.io.fsync_seconds")
            == "repro_storage_io_fsync_seconds"
        )
        assert prometheus_name("a b/c-d") == "repro_a_b_c_d"
        assert prometheus_name("UPPER.Case") == "repro_upper_case"

    def test_counter_gauge_histogram_wire_format(self):
        registry = MetricsRegistry()
        registry.counter("storage.io.pread_bytes").inc(4096)
        registry.gauge("storage.pool.resident", lambda: 7)
        hist = registry.histogram("op_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        text = to_prometheus(registry)
        assert "# TYPE repro_storage_io_pread_bytes_total counter" in text
        assert "repro_storage_io_pread_bytes_total 4096" in text
        assert "# TYPE repro_storage_pool_resident gauge" in text
        assert "repro_storage_pool_resident 7" in text
        assert "# TYPE repro_op_seconds histogram" in text
        # buckets are cumulative and +Inf equals the sample count
        assert 'repro_op_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_op_seconds_bucket{le="1"} 2' in text
        assert 'repro_op_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_op_seconds_count 3" in text
        assert "repro_op_seconds_sum 5.55" in text

    def test_storage_metric_set_matches_golden(self, tmp_path):
        """The canonical disk workload exports a pinned metric catalogue
        (names + types).  Values vary run to run; the *set* must not
        drift silently — update the golden when adding metrics."""
        from pathlib import Path

        telem = Telemetry()
        store, _ = _disk_workload(tmp_path, telem, fsync=True)
        store.close()
        type_lines = sorted(
            line
            for line in to_prometheus(telem).splitlines()
            if line.startswith("# TYPE ")
        )
        golden = Path(__file__).parent / "goldens" / "telemetry_storage.prom"
        assert type_lines == golden.read_text().splitlines(), (
            "Prometheus metric catalogue drifted; regenerate "
            "tests/goldens/telemetry_storage.prom if intentional"
        )

    def test_write_prometheus_file(self, tmp_path):
        telem = Telemetry()
        telem.counter("ops").inc(3)
        path = write_prometheus(telem, tmp_path / "m.prom")
        assert path.read_text().endswith("repro_ops_total 3\n")


class TestMetricsServer:
    def test_scrape_metrics_endpoint(self, tmp_path):
        telem = Telemetry()
        store, _ = _disk_workload(tmp_path, telem)
        with MetricsServer(telem) as server:
            with urllib.request.urlopen(server.url, timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode("utf-8")
        assert "repro_storage_io_pwrite_seconds_bucket" in body
        assert "repro_storage_pool_budget 8" in body
        store.close()

    def test_only_metrics_is_served(self):
        telem = Telemetry()
        with MetricsServer(telem) as server:
            url = server.url.replace("/metrics", "/other")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=10)
            assert err.value.code == 404

    def test_serves_concurrent_scrapes(self, tmp_path):
        telem = Telemetry()
        telem.counter("ops").inc()
        errors = []

        def scrape(url):
            try:
                with urllib.request.urlopen(url, timeout=10) as response:
                    assert b"repro_ops_total" in response.read()
            except Exception as exc:  # surfaced below, not swallowed
                errors.append(exc)

        with MetricsServer(telem) as server:
            threads = [
                threading.Thread(target=scrape, args=(server.url,))
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []


class TestCli:
    def _timeline(self, tmp_path):
        telem = Telemetry()
        telem.counter("ops").inc(5)
        telem.observe("x_seconds", 0.01)
        recorder = FlightRecorder(
            telem, tmp_path / "t.jsonl", interval_seconds=60.0, label="cli"
        ).start()
        recorder.stop()
        return recorder.path

    def test_validate_ok_and_mixed_schemas(self, tmp_path, capsys):
        timeline = self._timeline(tmp_path)
        telem = Telemetry(slow_op_ms=1)
        telem.maybe_slow_op("commit", 1.0)
        slow = telem.save_slow_ops(tmp_path / "slow.jsonl")
        assert telemetry_main(["validate", str(timeline), str(slow)]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_validate_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema":"nope"}\n')
        assert telemetry_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_render_sparklines(self, tmp_path, capsys):
        timeline = self._timeline(tmp_path)
        assert telemetry_main(["render", str(timeline)]) == 0
        out = capsys.readouterr().out
        assert "ops" in out and "x_seconds.p50" in out

    def test_render_metric_glob(self, tmp_path, capsys):
        timeline = self._timeline(tmp_path)
        assert telemetry_main(["render", str(timeline), "--metric", "zzz*"]) == 0
        assert "no metrics match" in capsys.readouterr().out

    def test_render_missing_file_exits_one(self, tmp_path, capsys):
        assert telemetry_main(["render", str(tmp_path / "absent.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_diff_reports_deltas(self, tmp_path, capsys):
        old = self._timeline(tmp_path)
        new_dir = tmp_path / "new"
        new_dir.mkdir()
        new = self._timeline(new_dir)
        assert telemetry_main(["diff", str(old), str(new)]) == 0
        assert "ops" in capsys.readouterr().out


class TestDriverAndParallelTelemetry:
    def test_query_driver_observes_latency_and_slow_queries(self):
        from repro.geometry.rect import Rect
        from repro.query.driver import run_query_file
        from repro.storage.factory import make_store

        spec = STRUCTURES["GRID-1"]
        am = spec["factory"](make_store(512, backend="sim"))
        for i in range(50):
            am.insert((i / 50.0, (i * 7 % 50) / 50.0), i)
        telem = Telemetry(slow_op_ms=0.0)
        set_telemetry(telem)
        queries = [Rect((0.0, 0.0), (0.5, 0.5)), Rect((0.2, 0.2), (0.9, 0.9))]
        run_query_file(am, "range", queries, am.range_query)
        assert telem.registry.histograms()["query.latency_seconds"].count == 2
        slow = [r for r in telem.slow_ops if r["op"] == "query"]
        assert len(slow) == 2
        assert slow[0]["detail"]["kind"] == "range"
        assert slow[0]["detail"]["index"] == 0
        assert "cost" in slow[0]["detail"]

    def test_parallel_jobs_write_mergeable_timelines(self, tmp_path, monkeypatch):
        from repro.parallel.runner import run_parallel_experiment

        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        data = [((i % 17) / 17.0, (i % 13) / 13.0) for i in range(120)]
        outcome = run_parallel_experiment(
            "pam", ["GRID", "BUDDY"], data, page_size=512, workers=1
        )
        assert set(outcome.results) == {"GRID", "BUDDY"}
        parts = sorted(tmp_path.glob("timeline-*.jsonl"))
        merged = tmp_path / "timeline-merged.jsonl"
        assert merged in parts
        parts.remove(merged)
        assert len(parts) == 2
        for part in parts + [merged]:
            assert validate_timeline(part) == []
        header, samples = read_timeline(merged)
        assert header["merged"] is True
        assert len(header["sources"]) == 2
        workers = {s["worker"] for s in samples}
        assert len(workers) == 2
