"""Tests for the 512-byte page capacity arithmetic."""

import pytest

from repro.storage import layout


class TestRecordSizes:
    def test_point_record_2d(self):
        # 2 coordinates of 4 bytes plus a 4-byte record pointer.
        assert layout.point_record_size(2) == 12

    def test_point_record_4d(self):
        assert layout.point_record_size(4) == 20

    def test_rect_record_2d(self):
        assert layout.rect_record_size(2) == 20


class TestCapacities:
    def test_2d_data_page_matches_paper_regime(self):
        # 41 point records per 512-byte page.
        assert layout.data_page_capacity(layout.point_record_size(2)) == 41

    def test_4d_data_page(self):
        assert layout.data_page_capacity(layout.point_record_size(4)) == 25

    def test_rect_page(self):
        assert layout.data_page_capacity(layout.rect_record_size(2)) == 25

    def test_scales_with_page_size(self):
        small = layout.data_page_capacity(12, page_size=512)
        large = layout.data_page_capacity(12, page_size=1024)
        assert large > small

    def test_too_small_page_raises(self):
        with pytest.raises(ValueError, match="at least 2 records"):
            layout.data_page_capacity(300, page_size=512)

    def test_directory_payload(self):
        assert layout.directory_page_payload() == 512 - layout.PAGE_HEADER
        assert layout.directory_page_payload(1024) == 1024 - layout.PAGE_HEADER
