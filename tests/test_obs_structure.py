"""Tests for structure snapshots: metrics, drift guard, determinism.

The determinism bar mirrors the parallel runner's: a snapshot of the
same logical build must serialise to byte-identical canonical JSON
whatever the worker count or build-cache temperature, for every
structure config in the fuzz matrix.
"""

from __future__ import annotations

import pytest

from repro.core.comparison import build_pam, build_sam
from repro.obs.structure import (
    SNAPSHOT_SCHEMA,
    PageView,
    compute_snapshot,
    page_parents,
    render_snapshot,
    snapshot_to_json,
    validate_snapshot,
)
from repro.pam.buddytree import BuddyTree
from repro.parallel.cache import BuildCache
from repro.parallel.runner import run_pam_file
from repro.sam.clipping import ClippingSAM
from repro.sam.rtree import RTree
from repro.storage.pagestore import PageStore
from repro.verify.fuzz import STRUCTURES
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file

from tests.conftest import make_points, make_rects

SCALE = 220


@pytest.fixture(scope="module")
def buddy_snapshot():
    points = make_points(300, seed=3)
    pam = build_pam(lambda s, dims=2: BuddyTree(s, dims), points)
    return points, pam, pam.snapshot()


class TestComputeSnapshot:
    def test_validates_and_counts(self, buddy_snapshot):
        points, pam, snap = buddy_snapshot
        assert validate_snapshot(snap) == []
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["structure"] == "BuddyTree"
        assert snap["records"] == len(points)
        assert snap["pages"]["data"] > 0
        assert snap["height"] == pam.directory_height

    def test_snapshot_is_uncharged(self, buddy_snapshot):
        _, pam, _ = buddy_snapshot
        before = pam.store.stats.snapshot()
        compute_snapshot(pam)
        assert pam.store.stats == before

    def test_levels_account_every_page(self, buddy_snapshot):
        _, _, snap = buddy_snapshot
        data = sum(level["data_pages"] for level in snap["levels"])
        directory = sum(level["directory_pages"] for level in snap["levels"])
        assert data == snap["pages"]["data"]
        assert directory == snap["pages"]["directory"]

    def test_one_place_scheme_has_no_duplication(self, buddy_snapshot):
        _, _, snap = buddy_snapshot
        red = snap["redundancy"]
        assert red["duplication_factor"] == 1.0
        assert red["stored_entries"] == snap["records"]
        assert 0.0 < red["utilisation"] <= 1.0

    def test_clipping_duplication_scales_with_budget(self):
        rects = make_rects(150, seed=9)
        factors = []
        for budget in (1, 4):
            sam = build_sam(
                lambda s, dims=2, r=budget: ClippingSAM(s, dims, redundancy=r),
                rects,
            )
            factors.append(sam.snapshot()["redundancy"]["duplication_factor"])
        assert factors[0] == 1.0
        assert factors[1] > 1.0

    def test_rtree_reports_overlap(self):
        rects = make_rects(300, seed=11)
        sam = build_sam(lambda s, dims=2: RTree(s, dims), rects)
        snap = sam.snapshot()
        assert snap["redundancy"]["overlap_volume"] > 0.0
        assert snap["redundancy"]["duplication_factor"] == 1.0

    def test_charging_walk_raises(self, buddy_snapshot):
        """The drift guard: a hook that uses store.read cannot ship."""
        points = make_points(80, seed=2)
        pam = build_pam(lambda s, dims=2: BuddyTree(s, dims), points)
        pid = next(iter(pam.store.page_ids()))

        def charging_walk():
            pam.store.read(pid)
            return iter(())

        pam._snapshot_pages = charging_walk
        with pytest.raises(RuntimeError, match="charged page accesses"):
            compute_snapshot(pam)

    def test_render(self, buddy_snapshot):
        _, _, snap = buddy_snapshot
        text = render_snapshot(snap)
        assert "BuddyTree" in text
        assert "redundancy: duplication" in text
        assert "level 0:" in text


class TestValidateSnapshot:
    def test_not_an_object(self):
        assert validate_snapshot(42) == ["snapshot is not a JSON object"]

    def test_catches_missing_redundancy_key(self, buddy_snapshot):
        _, _, snap = buddy_snapshot
        import json

        broken = json.loads(snapshot_to_json(snap))
        broken["schema"] = "bogus/v0"
        del broken["redundancy"]["dead_space"]
        problems = validate_snapshot(broken)
        assert any("schema" in p for p in problems)
        assert any("dead_space" in p for p in problems)


class TestPageParents:
    def test_first_parent_in_walk_order_wins(self):
        a = PageView(1, "directory", 0, (), 2, 4, children=(3,))
        b = PageView(2, "directory", 0, (), 2, 4, children=(3,))
        assert page_parents([a, b]) == {3: 1}
        assert page_parents([b, a]) == {3: 2}


def build_config(name: str, cfg: dict):
    """Build one fuzz-matrix config on its standard small workload."""
    store = PageStore()
    am = cfg["factory"](store)
    if cfg["kind"] == "pam":
        for rid, point in enumerate(generate_point_file("uniform", SCALE)):
            am.insert(point, rid)
    else:
        for rid, rect in enumerate(
            generate_rect_file("uniform_small", SCALE)
        ):
            am.insert(rect, rid)
    if cfg["pack_every"]:
        am.pack()
    return am


class TestSnapshotDeterminism:
    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_rebuild_is_byte_identical(self, name):
        """Acceptance: same build => byte-identical canonical JSON,
        for every structure config in the fuzz matrix."""
        cfg = STRUCTURES[name]
        first = snapshot_to_json(build_config(name, cfg).snapshot())
        second = snapshot_to_json(build_config(name, cfg).snapshot())
        assert first == second
        import json

        assert validate_snapshot(json.loads(first)) == []

    def test_workers_do_not_change_snapshots(self):
        serial = run_pam_file("uniform", scale=280, workers=1, cache=None)
        parallel = run_pam_file("uniform", scale=280, workers=2, cache=None)
        assert set(serial.snapshots) == set(parallel.snapshots)
        assert serial.snapshots  # BUDDY+ included
        for name, snap in serial.snapshots.items():
            assert snapshot_to_json(snap) == snapshot_to_json(
                parallel.snapshots[name]
            ), name

    def test_warm_cache_replays_identical_snapshots(self, tmp_path):
        cold = run_pam_file(
            "uniform", scale=280, workers=1, cache=BuildCache(tmp_path)
        )
        warm_cache = BuildCache(tmp_path)
        warm = run_pam_file(
            "uniform", scale=280, workers=1, cache=warm_cache
        )
        assert warm_cache.hits > 0 and warm_cache.misses == 0
        assert set(cold.snapshots) == set(warm.snapshots)
        for name, snap in cold.snapshots.items():
            assert snapshot_to_json(snap) == snapshot_to_json(
                warm.snapshots[name]
            ), name
