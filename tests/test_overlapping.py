"""Tests for the overlapping-regions SAM over PLOP hashing."""

from repro.geometry.rect import Rect
from repro.sam.overlapping import OverlappingPlop
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_POINTS,
    STANDARD_QUERIES,
    check_sam_against_oracle,
    make_rects,
)


def build(rects):
    sam = OverlappingPlop(PageStore(), 2)
    for i, r in enumerate(rects):
        sam.insert(r, i)
    return sam


class TestCorrectness:
    def test_small_rects(self):
        rects = make_rects(600, seed=1)
        check_sam_against_oracle(build(rects), rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_large_rects(self):
        rects = make_rects(400, seed=2, max_extent=0.45)
        check_sam_against_oracle(build(rects), rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_degenerate_rects(self):
        rects = [Rect.from_point((i / 250.0, (i * 17 % 250) / 250.0)) for i in range(250)]
        check_sam_against_oracle(build(rects), rects, STANDARD_QUERIES, STANDARD_POINTS)


class TestBehaviour:
    def test_no_directory(self):
        sam = build(make_rects(500, seed=3))
        assert sam.directory_height == 0

    def test_containment_window_equals_intersection_window(self):
        """The paper's PLOP rows: containment cost == intersection cost."""
        rects = make_rects(1200, seed=4, max_extent=0.2)
        sam = build(rects)
        query = Rect((0.3, 0.3), (0.6, 0.6))

        def cost(op):
            sam.store.begin_operation()
            sam.store.begin_operation()
            before = sam.store.stats.total
            op(query)
            return sam.store.stats.total - before

        assert cost(sam.containment) == cost(sam.intersection)

    def test_max_extent_grows_query_window(self):
        """Large stored rectangles make every query expensive."""
        small = build(make_rects(800, seed=5, max_extent=0.01))
        large = build(make_rects(800, seed=5, max_extent=0.45))
        query = Rect((0.45, 0.45), (0.55, 0.55))

        def cost(sam):
            sam.store.begin_operation()
            sam.store.begin_operation()
            before = sam.store.stats.total
            sam.intersection(query)
            return sam.store.stats.total - before

        assert cost(large) > cost(small)

    def test_empty_enclosure_window(self):
        # A query wider than any stored extension can never be enclosed.
        rects = make_rects(300, seed=6, max_extent=0.01)
        sam = build(rects)
        assert sam.enclosure(Rect((0.1, 0.1), (0.9, 0.9))) == []
