"""Self-tests for the in-memory kd-tree oracle."""

import pytest

from repro.geometry.rect import Rect
from repro.pam.kdtree import KdTreeOracle
from tests.conftest import STANDARD_QUERIES, brute_range, make_points


class TestKdTreeOracle:
    def test_empty(self):
        tree = KdTreeOracle(2)
        assert len(tree) == 0
        assert tree.exact_match((0.5, 0.5)) == []
        assert tree.range_query(Rect.unit(2)) == []

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            KdTreeOracle(0)
        tree = KdTreeOracle(2)
        with pytest.raises(ValueError):
            tree.insert((0.5,), 1)

    def test_matches_brute_force(self):
        points = make_points(800)
        tree = KdTreeOracle(2)
        for i, p in enumerate(points):
            tree.insert(p, i)
        for rect in STANDARD_QUERIES:
            assert sorted(tree.range_query(rect)) == brute_range(points, rect)

    def test_exact_match_and_duplicates(self):
        tree = KdTreeOracle(2)
        tree.insert((0.5, 0.5), "a")
        tree.insert((0.5, 0.5), "b")
        tree.insert((0.5, 0.6), "c")
        assert sorted(tree.exact_match((0.5, 0.5))) == ["a", "b"]
        assert tree.exact_match((0.6, 0.5)) == []
        assert len(tree) == 3

    def test_partial_match(self):
        tree = KdTreeOracle(2)
        tree.insert((0.25, 0.1), 1)
        tree.insert((0.25, 0.9), 2)
        tree.insert((0.75, 0.1), 3)
        assert sorted(rid for _, rid in tree.partial_match({0: 0.25})) == [1, 2]
        assert sorted(rid for _, rid in tree.partial_match({1: 0.1})) == [1, 3]

    def test_boundary_coordinates(self):
        tree = KdTreeOracle(2)
        tree.insert((0.5, 0.3), 1)
        tree.insert((0.5, 0.7), 2)  # equal first coordinate goes right
        assert sorted(rid for _, rid in tree.partial_match({0: 0.5})) == [1, 2]
