"""Hypothesis property tests: vectorized kernels equal the scalar oracle.

Every kernel in :mod:`repro.geometry.kernels` — pairwise, batch, and the
fused single-comparison forms the scan helpers actually use — must agree
with the corresponding :class:`~repro.geometry.rect.Rect` predicate on
every (record, query) pair, including degenerate boxes and boxes that
touch exactly on a boundary (the closed-interval edge cases where a
``<`` / ``<=`` slip would first show up).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.query.columnar import _QVEC_BUILDERS
from repro.query.scan import _qvec_single

# A small shared pool of exact values makes coincident boundaries (touching
# and degenerate boxes) common instead of measure-zero.
boundary = st.sampled_from([0.0, 0.125, 0.25, 0.5, 0.75, 1.0])
coordinate = st.one_of(boundary, st.floats(0.0, 1.0, allow_nan=False))

KERNEL_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def boxes(draw, dims, min_size=1, max_size=12):
    n = draw(st.integers(min_size, max_size))
    out = []
    for _ in range(n):
        corners = [
            sorted((draw(coordinate), draw(coordinate))) for _ in range(dims)
        ]
        out.append(
            Rect(tuple(c[0] for c in corners), tuple(c[1] for c in corners))
        )
    return out


@st.composite
def page_and_queries(draw, dims):
    pts = [
        tuple(draw(coordinate) for _ in range(dims))
        for _ in range(draw(st.integers(1, 12)))
    ]
    rects = draw(boxes(dims))
    queries = draw(boxes(dims, max_size=5))
    return pts, rects, queries


def _bounds(rects):
    lo = np.array([r.lo for r in rects])
    hi = np.array([r.hi for r in rects])
    return lo, hi


#: op tag -> scalar oracle (stored rect first, query second), mirroring
#: repro.query.scan._SCALAR_OPS.
ORACLES = {
    "isect": lambda r, q: r.intersects(q),
    "within": lambda r, q: q.contains_rect(r),
    "encl": lambda r, q: r.contains_rect(q),
}

PAIRWISE = {
    "isect": (kernels.boxes_intersect, kernels.boxes_intersect_many),
    "within": (kernels.boxes_within, kernels.boxes_within_many),
    "encl": (kernels.boxes_enclose, kernels.boxes_enclose_many),
}


class TestPairwiseKernels:
    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=2))
    def test_points_in_box_matches_contains_point(self, data):
        pts, _, queries = data
        arr = np.array(pts)
        for q in queries:
            expected = [q.contains_point(p) for p in pts]
            got = kernels.points_in_box(arr, np.array(q.lo), np.array(q.hi))
            assert got.tolist() == expected

    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=2))
    def test_box_kernels_match_rect_predicates(self, data):
        _, rects, queries = data
        lo, hi = _bounds(rects)
        for op, (single, _) in PAIRWISE.items():
            oracle = ORACLES[op]
            for q in queries:
                expected = [oracle(r, q) for r in rects]
                got = single(lo, hi, np.array(q.lo), np.array(q.hi))
                assert got.tolist() == expected, op

    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=4))
    def test_box_kernels_match_in_four_dims(self, data):
        _, rects, queries = data
        lo, hi = _bounds(rects)
        for op, (single, _) in PAIRWISE.items():
            oracle = ORACLES[op]
            for q in queries:
                got = single(lo, hi, np.array(q.lo), np.array(q.hi))
                assert got.tolist() == [oracle(r, q) for r in rects], op


class TestBatchKernels:
    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=2))
    def test_batch_rows_equal_single_query_calls(self, data):
        pts, rects, queries = data
        arr = np.array(pts)
        qlo = np.array([q.lo for q in queries])
        qhi = np.array([q.hi for q in queries])
        batch = kernels.points_in_boxes(arr, qlo, qhi)
        for i, q in enumerate(queries):
            single = kernels.points_in_box(arr, np.array(q.lo), np.array(q.hi))
            assert batch[i].tolist() == single.tolist()
        lo, hi = _bounds(rects)
        for op, (single_k, many_k) in PAIRWISE.items():
            batch = many_k(lo, hi, qlo, qhi)
            for i, q in enumerate(queries):
                row = single_k(lo, hi, np.array(q.lo), np.array(q.hi))
                assert batch[i].tolist() == row.tolist(), op

    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=2))
    def test_nan_query_rows_select_nothing(self, data):
        _, rects, _ = data
        lo, hi = _bounds(rects)
        qlo = np.full((3, 2), np.nan)
        qhi = np.full((3, 2), np.nan)
        for _, many_k in PAIRWISE.values():
            assert not many_k(lo, hi, qlo, qhi).any()


class TestFusedKernels:
    """The single-comparison forms are bit-identical to the pairwise ones."""

    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=2))
    def test_fused_points_match_pairwise(self, data):
        pts, _, queries = data
        arr = np.array(pts)
        fused = kernels.fuse_points(arr)
        for q in queries:
            expected = kernels.points_in_box(arr, np.array(q.lo), np.array(q.hi))
            qvec = np.array(tuple(-c for c in q.lo) + q.hi)
            assert kernels.fused_match(fused, qvec).tolist() == expected.tolist()

    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=2))
    def test_fused_boxes_match_pairwise(self, data):
        _, rects, queries = data
        lo, hi = _bounds(rects)
        fused_by_family = {
            "cover": kernels.fuse_boxes_cover(lo, hi),
            "anti": kernels.fuse_boxes_within(lo, hi),
        }
        family = {"isect": "cover", "encl": "cover", "within": "anti"}
        for op, (single_k, _) in PAIRWISE.items():
            fused = fused_by_family[family[op]]
            for q in queries:
                expected = single_k(lo, hi, np.array(q.lo), np.array(q.hi))
                got = kernels.fused_match(fused, _qvec_single(op, q))
                assert got.tolist() == expected.tolist(), op

    @KERNEL_SETTINGS
    @given(data=page_and_queries(dims=2))
    def test_fused_batch_matches_fused_single(self, data):
        _, rects, queries = data
        lo, hi = _bounds(rects)
        fused = kernels.fuse_boxes_cover(lo, hi)
        qlo = np.array([q.lo for q in queries])
        qhi = np.array([q.hi for q in queries])
        for op in ("isect", "encl"):
            qvecs = _QVEC_BUILDERS[op](qlo, qhi)
            batch = kernels.fused_match_many(fused, qvecs)
            for i, q in enumerate(queries):
                row = kernels.fused_match(fused, _qvec_single(op, q))
                assert batch[i].tolist() == row.tolist(), op

    def test_fused_qvec_builders_agree_with_single(self):
        q = Rect((0.25, 0.5), (0.75, 1.0))
        qlo = np.array([q.lo])
        qhi = np.array([q.hi])
        for op in ("isect", "within", "encl"):
            batch_row = _QVEC_BUILDERS[op](qlo, qhi)[0]
            assert batch_row.tolist() == _qvec_single(op, q).tolist(), op
        pts_row = _QVEC_BUILDERS["pts"](qlo, qhi)[0]
        assert pts_row.tolist() == list(tuple(-c for c in q.lo) + q.hi)
