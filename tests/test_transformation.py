"""Tests for the transformation technique (corner and center)."""

import pytest

from repro.geometry.rect import Rect
from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.sam.transformation import TransformationSAM
from repro.storage.pagestore import PageStore
from tests.conftest import (
    STANDARD_POINTS,
    STANDARD_QUERIES,
    check_sam_against_oracle,
    make_rects,
)


def build(rects, pam=BuddyTree, representation="corner"):
    sam = TransformationSAM(
        PageStore(),
        lambda store, dims: pam(store, dims),
        dims=2,
        representation=representation,
    )
    for i, r in enumerate(rects):
        sam.insert(r, i)
    return sam


class TestCorrectness:
    @pytest.mark.parametrize("representation", ["corner", "center"])
    @pytest.mark.parametrize("pam", [BuddyTree, BangFile])
    def test_all_query_types(self, representation, pam):
        rects = make_rects(500, seed=1)
        sam = build(rects, pam=pam, representation=representation)
        check_sam_against_oracle(sam, rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_large_rectangles(self):
        rects = make_rects(400, seed=2, max_extent=0.45)
        sam = build(rects)
        check_sam_against_oracle(sam, rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_degenerate_rectangles(self):
        rects = [Rect.from_point((i / 250.0, (i * 13 % 250) / 250.0)) for i in range(250)]
        sam = build(rects)
        check_sam_against_oracle(sam, rects, STANDARD_QUERIES, STANDARD_POINTS)

    def test_invalid_representation(self):
        with pytest.raises(ValueError):
            TransformationSAM(
                PageStore(), lambda s, dims: BuddyTree(s, dims), representation="polar"
            )


class TestTransform:
    def test_corner_roundtrip(self):
        sam = TransformationSAM(
            PageStore(), lambda s, dims: BuddyTree(s, dims), representation="corner"
        )
        r = Rect((0.1, 0.2), (0.5, 0.6))
        assert sam._to_point(r) == (0.1, 0.2, 0.5, 0.6)
        assert sam._to_rect((0.1, 0.2, 0.5, 0.6)) == r

    def test_center_roundtrip(self):
        sam = TransformationSAM(
            PageStore(), lambda s, dims: BuddyTree(s, dims), representation="center"
        )
        r = Rect((0.1, 0.2), (0.5, 0.6))
        point = sam._to_point(r)
        assert point == (pytest.approx(0.3), pytest.approx(0.4), pytest.approx(0.2), pytest.approx(0.2))
        back = sam._to_rect(point)
        assert back.lo == (pytest.approx(0.1), pytest.approx(0.2))
        assert back.hi == (pytest.approx(0.5), pytest.approx(0.6))

    def test_metrics_delegate_to_pam(self):
        rects = make_rects(400, seed=3)
        sam = build(rects)
        m = sam.metrics()
        assert m.records == 400
        assert m.data_pages == sam.pam.metrics().data_pages
        assert m.height == sam.pam.directory_height


class TestSeegerFinding:
    def test_corner_beats_center(self):
        """[See 89]: corner representation needs roughly half the accesses."""
        rects = make_rects(2500, seed=4, max_extent=0.03)
        corner = build(rects, representation="corner")
        center = build(rects, representation="center")

        def cost(sam):
            total = 0
            for query in STANDARD_QUERIES[:4]:
                sam.store.begin_operation()
                sam.store.begin_operation()
                before = sam.store.stats.total
                sam.intersection(query)
                total += sam.store.stats.total - before
            return total

        assert cost(corner) < cost(center)
