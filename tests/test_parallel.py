"""Tests for :mod:`repro.parallel` — determinism, caching, wiring.

The acceptance bar for the parallel runner is *bit-equivalence*: with
any worker count, the merged :class:`MethodResult` numbers, the
per-structure :class:`AccessStats` totals, the span histograms and the
rendered tables must be indistinguishable from the serial bench loop.
These tests pin that, plus the build cache's hit/miss/invalidation
behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.comparison import (
    build_pam,
    build_sam,
    normalise,
    run_pam_experiment,
    run_pam_queries,
    run_sam_queries,
)
from repro.core.stats import AccessStats
from repro.core.testbed import (
    run_standard_pam_testbed,
    standard_pam_factories,
    standard_sam_factories,
)
from repro.obs.export import summarise_spans, validate_run_report
from repro.obs.tracer import Tracer
from repro.parallel.cache import BuildCache, code_fingerprint
from repro.parallel.jobs import (
    JobSpec,
    data_digest,
    execute_job,
    pam_file_specs,
    sam_file_specs,
)
from repro.parallel.runner import (
    default_workers,
    merge_outcomes,
    run_pam_file,
    run_parallel_experiment,
    run_sam_file,
    run_specs,
)
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file

PAM_SCALE = 400
SAM_SCALE = 250


# -- serial references (replicating the bench loop step for step) ----------


def serial_pam_reference(file_name: str, scale: int):
    """The bench conftest's serial PAM loop, including BUDDY+ derivation."""
    points = generate_point_file(file_name, scale)
    tracer = Tracer()
    results, totals = {}, {}
    for name, factory in standard_pam_factories().items():
        tracer.set_context(structure=name)
        pam = build_pam(factory, points, tracer=tracer)
        result = run_pam_queries(pam, tracer=tracer)
        result.name = name
        results[name] = result
        totals[name] = pam.store.stats.snapshot()
        if name == "BUDDY":
            before = pam.store.stats.snapshot()
            tracer.set_context(structure="BUDDY+", op="pack")
            pam.pack()
            packed = run_pam_queries(pam, tracer=tracer)
            packed.name = "BUDDY+"
            results["BUDDY+"] = packed
            totals["BUDDY+"] = pam.store.stats - before
    return results, totals, tracer.finish()


def serial_sam_reference(file_name: str, scale: int):
    rects = generate_rect_file(file_name, scale)
    tracer = Tracer()
    results, totals = {}, {}
    for name, factory in standard_sam_factories().items():
        tracer.set_context(structure=name)
        sam = build_sam(factory, rects, tracer=tracer)
        result = run_sam_queries(sam, tracer=tracer)
        result.name = name
        results[name] = result
        totals[name] = sam.store.stats.snapshot()
    return results, totals, tracer.finish()


def assert_outcome_matches(results, totals, spans, outcome):
    """Everything except wall-clock timers must agree exactly."""
    assert list(outcome.results) == list(results)
    for name, reference in results.items():
        merged = outcome.results[name]
        assert merged.name == reference.name
        assert merged.query_costs == reference.query_costs, name
        assert merged.query_results == reference.query_results, name
        assert merged.metrics.as_dict() == reference.metrics.as_dict(), name
        assert outcome.totals[name] == totals[name], name
    reference_hists = summarise_spans(spans)
    merged_hists = summarise_spans(outcome.spans)
    assert set(merged_hists) == set(reference_hists)
    for structure, per_op in reference_hists.items():
        assert set(merged_hists[structure]) == set(per_op)
        for op, hist in per_op.items():
            assert merged_hists[structure][op].as_dict() == hist.as_dict(), (
                structure,
                op,
            )


# -- determinism: parallel == serial ---------------------------------------


@pytest.fixture(scope="module")
def pam_parallel_outcome():
    """One 2-worker PAM run shared by the determinism assertions."""
    return run_pam_file("uniform", scale=PAM_SCALE, workers=2, cache=None)


class TestParallelMatchesSerial:
    def test_pam_grid_cell(self, pam_parallel_outcome):
        results, totals, spans = serial_pam_reference("uniform", PAM_SCALE)
        assert_outcome_matches(results, totals, spans, pam_parallel_outcome)

    def test_pam_tables_identical(self, pam_parallel_outcome):
        """The paper-style normalised table derives identically."""
        results, _, _ = serial_pam_reference("uniform", PAM_SCALE)
        assert normalise(results, "GRID") == normalise(
            pam_parallel_outcome.results, "GRID"
        )

    def test_pam_timers_cover_all_structures(self, pam_parallel_outcome):
        expected = {"HB", "BANG", "BANG*", "GRID", "BUDDY", "BUDDY+"}
        assert {
            key.split("/")[0] for key in pam_parallel_outcome.timers
        } == expected

    def test_sam_grid_cell(self):
        results, totals, spans = serial_sam_reference("uniform_small", SAM_SCALE)
        outcome = run_sam_file(
            "uniform_small", scale=SAM_SCALE, workers=2, cache=None
        )
        assert_outcome_matches(results, totals, spans, outcome)

    def test_inline_data_experiment(self):
        points = generate_point_file("cluster", 300)
        serial = run_pam_experiment(
            {"GRID": standard_pam_factories()["GRID"]}, points
        )
        outcome = run_parallel_experiment("pam", ["GRID"], points, workers=1)
        assert (
            outcome.results["GRID"].query_costs == serial["GRID"].query_costs
        )

    def test_comparison_api_workers(self):
        """run_pam_experiment(workers=2) routes through the pool."""
        points = generate_point_file("uniform", 250)
        serial = run_pam_experiment(standard_pam_factories(), points)
        parallel = run_pam_experiment(standard_pam_factories(), points, workers=2)
        assert list(parallel) == list(serial)
        for name in serial:
            assert parallel[name].query_costs == serial[name].query_costs

    def test_comparison_api_rejects_tracer_with_workers(self):
        with pytest.raises(ValueError, match="tracer"):
            run_pam_experiment(
                standard_pam_factories(), [(0.5, 0.5)], tracer=Tracer(), workers=2
            )

    def test_testbed_parallel_report_matches_serial(self):
        points = generate_point_file("uniform", 250)
        serial_results, serial_report = run_standard_pam_testbed(points, workers=1)
        parallel_results, parallel_report = run_standard_pam_testbed(
            points, workers=2
        )
        assert validate_run_report(parallel_report.to_dict()) == []
        assert parallel_report.access_totals() == serial_report.access_totals()
        assert list(parallel_results) == list(serial_results)


# -- job specs --------------------------------------------------------------


class TestJobSpecs:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="tree", structure="GRID", scale=10, file="uniform")

    def test_needs_file_or_digest(self):
        with pytest.raises(ValueError, match="file name or a data digest"):
            JobSpec(kind="pam", structure="GRID", scale=10)

    def test_unknown_structure_lists_registry(self):
        spec = JobSpec(kind="pam", structure="ZORDER", scale=50, file="uniform")
        with pytest.raises(KeyError, match="registered structures"):
            execute_job(spec)

    def test_standard_grids(self):
        pam = pam_file_specs("uniform", 100)
        assert [s.structure for s in pam] == ["HB", "BANG", "BANG*", "GRID", "BUDDY"]
        assert [s.derive_packed for s in pam] == [False] * 4 + [True]
        sam = sam_file_specs("diagonal", 100)
        assert [s.structure for s in sam] == ["R-Tree", "BANG", "BUDDY", "PLOP"]
        assert all(s.seed is not None for s in pam + sam)

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "6")
        assert default_workers() == 6


# -- the build cache --------------------------------------------------------


class TestBuildCache:
    def specs(self):
        return pam_file_specs("uniform", 120, structures=["GRID", "BUDDY"])

    def test_round_trip_skips_rebuilds(self, tmp_path):
        cache = BuildCache(tmp_path)
        first = run_specs(self.specs(), cache=cache)
        assert (cache.hits, cache.misses, cache.stores) == (0, 2, 2)

        warm = BuildCache(tmp_path)
        second = run_specs(self.specs(), cache=warm)
        assert (warm.hits, warm.misses, warm.stores) == (2, 0, 0)
        merged_first = merge_outcomes(first)
        merged_second = merge_outcomes(second)
        assert list(merged_first.results) == list(merged_second.results)
        for name in merged_first.results:
            assert (
                merged_first.results[name].query_costs
                == merged_second.results[name].query_costs
            )
            assert merged_first.totals[name] == merged_second.totals[name]
        # Even the cached wall-clock timers ride along unchanged.
        assert merged_first.timers == merged_second.timers

    def test_key_covers_every_parameter(self, tmp_path):
        cache = BuildCache(tmp_path)
        base = JobSpec(kind="pam", structure="GRID", scale=100, file="uniform")
        variants = [
            JobSpec(kind="pam", structure="BUDDY", scale=100, file="uniform"),
            JobSpec(kind="pam", structure="GRID", scale=101, file="uniform"),
            JobSpec(kind="pam", structure="GRID", scale=100, file="sinus"),
            JobSpec(
                kind="pam", structure="GRID", scale=100, file="uniform", seed=7
            ),
            JobSpec(
                kind="pam",
                structure="GRID",
                scale=100,
                file="uniform",
                page_size=1024,
            ),
            JobSpec(
                kind="pam",
                structure="GRID",
                scale=100,
                file="uniform",
                derive_packed=True,
            ),
            JobSpec(kind="sam", structure="GRID", scale=100, file="uniform"),
        ]
        keys = {cache.key(spec) for spec in [base, *variants]}
        assert len(keys) == len(variants) + 1

    def test_code_fingerprint_invalidates(self, tmp_path):
        spec = JobSpec(kind="pam", structure="GRID", scale=100, file="uniform")
        old_code = BuildCache(tmp_path, fingerprint="aaaa")
        new_code = BuildCache(tmp_path, fingerprint="bbbb")
        assert old_code.key(spec) != new_code.key(spec)
        current = BuildCache(tmp_path)
        assert current.fingerprint == code_fingerprint()

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = BuildCache(tmp_path)
        spec = self.specs()[0]
        run_specs([spec], cache=cache)
        cache.path_for(spec).write_bytes(b"not a pickle")
        rerun = BuildCache(tmp_path)
        run_specs([spec], cache=rerun)
        assert (rerun.hits, rerun.misses, rerun.stores) == (0, 1, 1)
        fixed = BuildCache(tmp_path)
        assert fixed.load(spec) is not None

    def test_inline_data_is_content_addressed(self, tmp_path):
        points = generate_point_file("uniform", 150)
        digest = data_digest(points)
        assert digest == data_digest(list(points))
        assert digest != data_digest(points[:-1])
        cache = BuildCache(tmp_path)
        run_parallel_experiment("pam", ["GRID"], points, cache=cache)
        assert cache.stores == 1
        warm = BuildCache(tmp_path)
        outcome = run_parallel_experiment("pam", ["GRID"], points, cache=warm)
        assert warm.hits == 1
        assert outcome.results["GRID"].metrics.records == 150
