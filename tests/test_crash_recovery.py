"""Crash-recovery property tests (ISSUE satellite: fault injection).

The harness runs a seeded 200-op fuzz stream against a
:class:`~repro.storage.disk.DiskPageStore`, committing after every
operation with the access-method state riding in the commit's meta
blob.  A :class:`~repro.storage.io.FaultInjectingIO` kills the store at
a chosen write index — fail-stop, torn write, or bit flip — and the
test then recovers from disk with a *fresh* IO provider, restores the
method from the last committed meta blob, audits it, and diffs
``iter_records()`` against an oracle replay of exactly the committed
operation prefix.  Anything the WAL claims was committed must be there,
bit for bit; anything after the crash point must be gone.

Coverage knobs:

* the deterministic sweep tests walk fail points ``1, 1+stride, ...``
  through the whole write budget of the stream; ``stride`` defaults to
  ``writes // 25`` and ``REPRO_CRASH_STRIDE=1`` runs the exhaustive
  every-write-index sweep (the ISSUE's acceptance criterion — minutes,
  not CI material);
* the hypothesis test samples random ``(structure, seed, fail point,
  mode)`` tuples on a shorter stream, so every run explores new crash
  points beyond the deterministic grid.

Structures chosen to cover distinct storage behaviours: ``GRID-1``
(pinned in-core directory + deletes), ``BUDDY+`` (``pack()`` rebuilds —
the silent-mutation path), ``R`` (a SAM with deletes).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.storage.disk import DiskPageStore, restore_method, snapshot_method
from repro.storage.io import FaultInjectingIO, InjectedCrash
from repro.verify.fuzz import STRUCTURES, make_ops

CRASH_STRUCTURES = ("GRID-1", "BUDDY+", "R")
POOL = 8


# -- applying fuzz ops without the differential oracle -----------------------


def _apply(am, kind: str, op: list) -> None:
    tag = op[0]
    if kind == "pam":
        if tag == "insert":
            am.insert(tuple(op[1]), op[2])
        elif tag == "delete":
            am.delete(tuple(op[1]), op[2])
        elif tag == "pack":
            am.pack()
        elif tag == "range":
            am.range_query(Rect(tuple(op[1]), tuple(op[2])))
        elif tag == "exact":
            am.exact_match(tuple(op[1]))
        elif tag == "pm":
            am.partial_match({axis: value for axis, value in op[1]})
        else:  # pragma: no cover - generator bug
            raise ValueError(f"unknown PAM op {tag!r}")
    else:
        if tag == "insert":
            am.insert(Rect(tuple(op[1]), tuple(op[2])), op[3])
        elif tag == "delete":
            am.delete(Rect(tuple(op[1]), tuple(op[2])), op[3])
        elif tag == "point":
            am.point_query(tuple(op[1]))
        elif tag in ("intersection", "containment", "enclosure"):
            getattr(am, tag)(Rect(tuple(op[1]), tuple(op[2])))
        else:  # pragma: no cover - generator bug
            raise ValueError(f"unknown SAM op {tag!r}")


def _committed_records(kind: str, ops: list[list]) -> list[list]:
    """``expected[k]`` = sorted ``iter_records()`` after ``ops[:k]``."""
    shadow: dict[int, object] = {}
    expected = [[]]
    for op in ops:
        if op[0] == "insert":
            if kind == "pam":
                shadow[op[2]] = tuple(op[1])
            else:
                shadow[op[3]] = Rect(tuple(op[1]), tuple(op[2]))
        elif op[0] == "delete":
            shadow.pop(op[2] if kind == "pam" else op[3], None)
        expected.append(sorted(((key, rid) for rid, key in shadow.items()), key=repr))
    return expected


# -- one crash + recovery cycle ----------------------------------------------


def _run_until_crash(path, spec, ops, io) -> None:
    """Apply ``ops`` with a per-op meta commit until the IO dies."""
    store = DiskPageStore(path, pool_pages=POOL, io=io)
    am = spec["factory"](store)
    for i, op in enumerate(ops):
        _apply(am, spec["kind"], op)
        store.commit(meta={"applied": i + 1, "method": snapshot_method(am)})
    store.close()


def _recover_and_check(path, spec, expected) -> int:
    """Reopen with healthy IO; audit; diff records. Returns ops recovered."""
    store = DiskPageStore(path, pool_pages=POOL)
    try:
        blob = store.meta_blob
        if blob is None:
            # Died before the first op's commit (possibly even before
            # the initial sidecar landed): no method to restore, but
            # reopening must still have succeeded cleanly.
            assert store.page_ids() == sorted(store.page_ids())
            return 0
        assert store.recovered
        applied = blob["applied"]
        am = restore_method(store, blob["method"])
        am.audit()
        got = sorted(am.iter_records(), key=repr)
        assert got == expected[applied], (
            f"recovered state diverges from the committed prefix "
            f"(applied={applied})"
        )
        return applied
    finally:
        store.close()


def _crash_cycle(tmp, spec, ops, expected, fail_after, mode, seed) -> int:
    io = FaultInjectingIO(fail_after=fail_after, mode=mode, seed=seed)
    died = False
    try:
        _run_until_crash(tmp, spec, ops, io)
    except InjectedCrash:
        died = True
    assert died, f"stream finished before write #{fail_after}; widen the sweep"
    return _recover_and_check(tmp, spec, expected)


# -- deterministic sweeps ----------------------------------------------------


def _count_writes(tmp, spec, ops) -> int:
    io = FaultInjectingIO(fail_after=None)
    _run_until_crash(tmp, spec, ops, io)
    return io.writes


def _sweep_points(writes: int) -> list[int]:
    stride = int(os.environ.get("REPRO_CRASH_STRIDE", "0") or 0)
    if stride <= 0:
        stride = max(1, writes // 25)
    return list(range(1, writes + 1, stride))


@pytest.mark.parametrize("name", CRASH_STRUCTURES)
def test_crash_sweep_recovers_committed_prefix(name, tmp_path):
    """Fail-stop at every ``stride``-th write index of a 200-op stream."""
    spec = STRUCTURES[name]
    ops = make_ops(spec, 200, seed=42)
    expected = _committed_records(spec["kind"], ops)
    writes = _count_writes(tmp_path / "dry", spec, ops)
    assert writes > 200  # the stream must actually stress the WAL
    recovered_counts = set()
    for i, fail_after in enumerate(_sweep_points(writes)):
        applied = _crash_cycle(
            tmp_path / f"run{i}", spec, ops, expected, fail_after, "stop", seed=1
        )
        recovered_counts.add(applied)
    # Crash points spread over the whole stream: early crashes recover
    # little, late crashes recover almost everything.
    assert min(recovered_counts) < 20
    assert max(recovered_counts) > 150


@pytest.mark.parametrize("mode", ["torn", "flip"])
@pytest.mark.parametrize("name", CRASH_STRUCTURES)
def test_corrupting_crashes_never_surface_bad_data(name, mode, tmp_path):
    """Torn writes and bit flips at sampled indices: the damaged tail is
    detected (checksums) and dropped, never replayed."""
    spec = STRUCTURES[name]
    ops = make_ops(spec, 120, seed=9)
    expected = _committed_records(spec["kind"], ops)
    writes = _count_writes(tmp_path / "dry", spec, ops)
    for i, fail_after in enumerate(range(3, writes, max(1, writes // 8))):
        _crash_cycle(
            tmp_path / f"{mode}{i}", spec, ops, expected, fail_after, mode, seed=i
        )


def test_crash_during_checkpoint_is_recoverable(tmp_path):
    """The checkpoint path (slot flush + sidecar rename + WAL reset) has
    its own write pattern; crash through all of it."""
    spec = STRUCTURES["GRID-1"]
    ops = make_ops(spec, 60, seed=5)
    expected = _committed_records(spec["kind"], ops)

    def run(io):
        store = DiskPageStore(tmp_path / "ckpt", pool_pages=POOL, io=io)
        am = spec["factory"](store)
        for i, op in enumerate(ops):
            _apply(am, spec["kind"], op)
            store.commit(meta={"applied": i + 1, "method": snapshot_method(am)})
            if (i + 1) % 10 == 0:
                store.checkpoint()
        store.close()

    run(FaultInjectingIO(fail_after=None))
    writes = FaultInjectingIO(fail_after=None)
    import shutil

    shutil.rmtree(tmp_path / "ckpt")
    run(writes)
    for i, fail_after in enumerate(range(5, writes.writes, max(1, writes.writes // 12))):
        shutil.rmtree(tmp_path / "ckpt", ignore_errors=True)
        io = FaultInjectingIO(fail_after=fail_after, mode="stop", seed=i)
        try:
            run(io)
        except InjectedCrash:
            pass
        _recover_and_check(tmp_path / "ckpt", spec, expected)


# -- randomized exploration --------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(CRASH_STRUCTURES),
    seed=st.integers(0, 2**16),
    frac=st.floats(0.01, 0.99),
    mode=st.sampled_from(["stop", "torn", "flip"]),
)
def test_crash_recovery_property(tmp_path_factory, name, seed, frac, mode):
    """Random (structure, stream seed, crash point, failure mode)."""
    tmp = tmp_path_factory.mktemp("crash-prop")
    spec = STRUCTURES[name]
    ops = make_ops(spec, 60, seed=seed)
    expected = _committed_records(spec["kind"], ops)
    writes = _count_writes(tmp / "dry", spec, ops)
    fail_after = max(1, int(writes * frac))
    _crash_cycle(tmp / "run", spec, ops, expected, fail_after, mode, seed=seed)
