"""Buffer-pool invariants (ISSUE satellite: pool correctness).

Four guarantees, each pinned by a test:

* a pinned page is never evicted, no matter the pressure;
* the budget bounds *steady-state* residency — between operation
  brackets the pool never holds more clean evictable frames than its
  budget, and a single operation's working set bounds the excursion;
* an uncharged ``peek`` never promotes a page into the pool and never
  perturbs hit/miss accounting;
* a scripted access sequence produces exactly the hit/miss/eviction
  counts the CLOCK policy predicts — the numbers in
  ``test_scripted_sequence_counts`` are hand-traced, so an accidental
  policy change shows up as a counter diff, not a vague slowdown.

A hypothesis shadow-dict test then drives random op streams against the
store and checks contents, residency and recovery all at once.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import DiskPageStore
from repro.storage.page import PageKind

POOL = 4  # the minimum budget; keeps hand traces short


@pytest.fixture
def store(tmp_path):
    s = DiskPageStore(tmp_path / "store", pool_pages=POOL, fsync=False)
    yield s
    if not s._closed:
        s.close()


def _alloc(store, value):
    pid = store.allocate(PageKind.DATA, [value])
    store.write(pid)
    return pid


class TestScriptedCounts:
    def test_scripted_sequence_counts(self, store):
        pool = store.pool
        # Phase 1: fill the pool exactly.  Writes are neither hits nor
        # misses; nothing is evictable while dirty.
        store.begin_operation()
        a, b, c, d = (_alloc(store, v) for v in "abcd")
        store.commit()
        assert (pool.hits, pool.misses, pool.evictions) == (0, 0, 0)

        # Phase 2: admit a fifth page.  The clock clears every ref bit
        # on its first lap (e itself is mid-admission, so exempt) and
        # evicts `a` — the oldest frame — on the second.
        store.begin_operation()
        e = _alloc(store, "e")
        store.commit()
        assert (pool.hits, pool.misses, pool.evictions) == (0, 0, 1)
        assert a not in pool.frames

        # Phase 3: fault `a` back in (miss, evicts `b` whose ref bit is
        # already clear), then re-read `a` and `e` (hits).
        store.begin_operation()
        assert store.read(a) == ["a"]
        assert store.read(a) == ["a"]
        assert store.read(e) == ["e"]
        assert (pool.hits, pool.misses, pool.evictions) == (2, 1, 2)
        assert b not in pool.frames

        # Phase 4: fault `b` back (miss); the hand is parked on `c`,
        # whose ref bit is clear, so `c` goes.
        store.begin_operation()
        assert store.read(b) == ["b"]
        assert (pool.hits, pool.misses, pool.evictions) == (2, 2, 3)
        assert set(pool.frames) == {d, e, a, b}
        assert len(pool.frames) == POOL
        assert (pool.peek_loads, pool.overflows) == (0, 0)

    def test_hit_rate(self, store):
        store.begin_operation()
        a = _alloc(store, 1)
        store.commit()
        store.begin_operation()
        store.read(a)
        assert store.pool.hit_rate == 1.0


class TestPinnedPages:
    def test_pinned_page_survives_any_pressure(self, store):
        store.begin_operation()
        root = _alloc(store, "root")
        store.pin(root)
        store.commit()
        for i in range(5 * POOL):
            store.begin_operation()
            _alloc(store, i)
            store.commit()
            assert root in store.pool.frames, f"pinned page evicted at step {i}"
        assert store.read(root) == ["root"]
        assert store.pool.evictions > 0  # pressure was real

    def test_unpinned_page_becomes_evictable(self, store):
        store.begin_operation()
        root = _alloc(store, "root")
        store.pin(root)
        store.commit()
        store.unpin(root)
        store.commit()
        for i in range(3 * POOL):
            store.begin_operation()
            _alloc(store, i)
            store.commit()
        assert root not in store.pool.frames


class TestBudget:
    def test_steady_state_residency_is_bounded(self, store):
        for i in range(6 * POOL):
            store.begin_operation()
            _alloc(store, i)
            store.commit()
            assert len(store.pool.frames) <= POOL
        assert store.pool.overflows == 0

    def test_single_op_working_set_overflows_loudly(self, store):
        store.begin_operation()
        pids = [_alloc(store, i) for i in range(3 * POOL)]
        # One operation touched 3x the budget: every frame is dirty or
        # op-protected, so the pool grows instead of corrupting.
        assert len(store.pool.frames) == 3 * POOL
        assert store.pool.overflows > 0
        store.commit()
        # The next brackets shrink residency back under budget as
        # admissions find evictable frames again.
        store.begin_operation()
        extra = _alloc(store, "extra")
        store.commit()
        assert len(store.pool.frames) <= POOL
        # Nothing was lost along the way.
        store.begin_operation()
        for i, pid in enumerate(pids):
            assert store.read(pid) == [i]

    def test_budget_floor_is_enforced(self, tmp_path):
        with pytest.raises(ValueError, match="at least 4"):
            DiskPageStore(tmp_path / "store", pool_pages=2)


class TestPeek:
    def test_peek_never_promotes_never_charges(self, store):
        store.begin_operation()
        pids = [_alloc(store, i) for i in range(2 * POOL)]
        store.commit()
        store.begin_operation()
        _alloc(store, "pressure")  # force evictions
        store.commit()
        victim = next(p for p in pids if p not in store.pool.frames)
        before = (
            store.stats.snapshot(),
            store.pool.hits,
            store.pool.misses,
            dict.fromkeys(store.pool.frames),
        )
        assert store.peek(victim) == [pids.index(victim)]
        after = (
            store.stats.snapshot(),
            store.pool.hits,
            store.pool.misses,
            dict.fromkeys(store.pool.frames),
        )
        assert before == after
        assert store.pool.peek_loads == 1

    def test_peek_of_resident_page_reads_the_live_object(self, store):
        store.begin_operation()
        pid = _alloc(store, "live")
        obj = store.read(pid)
        obj.append("mutated")
        store.write(pid)
        assert store.peek(pid) == ["live", "mutated"]
        assert store.pool.peek_loads == 0  # no slot IO for resident pages


# -- randomized shadow-dict property test -----------------------------------


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.just(("alloc",)),
            st.tuples(st.just("write"), st.integers(0, 200), st.integers()),
            st.tuples(st.just("read"), st.integers(0, 200)),
            st.tuples(st.just("free"), st.integers(0, 200)),
            st.tuples(st.just("pin"), st.integers(0, 200)),
            st.just(("commit",)),
        ),
        min_size=5,
        max_size=80,
    )
)
def test_pool_matches_shadow_dict(tmp_path_factory, ops):
    """Random op streams: the pool behaves exactly like a plain dict."""
    tmp = tmp_path_factory.mktemp("pool-shadow")
    store = DiskPageStore(tmp / "store", pool_pages=POOL, fsync=False)
    shadow: dict[int, list] = {}
    counter = 0
    try:
        for op in ops:
            store.begin_operation()
            live = sorted(shadow)
            if op[0] == "alloc":
                pid = store.allocate(PageKind.DATA, [counter])
                store.write(pid)
                shadow[pid] = [counter]
                counter += 1
            elif not live:
                continue
            elif op[0] == "write":
                pid = live[op[1] % len(live)]
                obj = store.read(pid)
                obj.append(op[2])
                store.write(pid)
                shadow[pid].append(op[2])
            elif op[0] == "read":
                pid = live[op[1] % len(live)]
                assert store.read(pid) == shadow[pid]
            elif op[0] == "free":
                pid = live[op[1] % len(live)]
                store.free(pid)
                del shadow[pid]
            elif op[0] == "pin":
                pid = live[op[1] % len(live)]
                store.pin(pid)
            elif op[0] == "commit":
                store.commit()
            # Invariants, every step: pinned and dirty pages resident,
            # page table matches the shadow exactly.
            pool = store.pool
            assert all(p in pool.frames for p in store._pinned)
            assert all(p in pool.frames for p in pool.dirty)
            assert sorted(pool.pages) == sorted(shadow)
        # Everything survives a full close/reopen cycle.
        store.close()
        store = DiskPageStore(tmp / "store", pool_pages=POOL, fsync=False)
        assert sorted(store.page_ids()) == sorted(shadow)
        for pid, value in shadow.items():
            assert store.peek(pid) == value
    finally:
        if not store._closed:
            store.close()
