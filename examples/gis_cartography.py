"""GIS scenario: elevation-line points under map-window queries.

The paper's motivating application: geographic information systems
store digitised elevation lines; a map viewer issues window (range)
queries, and profile tools issue partial-match queries along one axis.
The data arrives in quadtree partitioning order, exactly like the
paper's real cartography file — the situation in which GRID and BANG
degrade while the BUDDY tree stays robust.

Run:  python examples/gis_cartography.py [n_points]
"""

import sys

from repro import PageStore
from repro.core.testbed import standard_pam_factories
from repro.geometry.rect import Rect
from repro.workloads.terrain import generate_cartography_points


def main(n_points: int = 8000) -> None:
    points = generate_cartography_points(n_points)
    print(f"digitised {len(points)} contour points (quadtree insertion order)\n")

    # Three map windows a viewer would pan through, plus a W-E profile.
    windows = [
        Rect((0.10, 0.10), (0.35, 0.35)),
        Rect((0.40, 0.55), (0.55, 0.70)),
        Rect((0.00, 0.00), (1.00, 0.25)),
    ]

    header = f"{'structure':10s}{'build':>8s}{'window1':>9s}{'window2':>9s}{'window3':>9s}{'profile':>9s}"
    print(header)
    for name, factory in standard_pam_factories().items():
        store = PageStore()
        index = factory(store, dims=2)
        for rid, point in enumerate(points):
            index.insert(point, rid)
        build_cost = store.stats.total

        costs = []
        for window in windows:
            before = store.stats.total
            index.range_query(window)
            costs.append(store.stats.total - before)
        before = store.stats.total
        index.partial_match({1: points[0][1]})
        costs.append(store.stats.total - before)

        print(
            f"{name:10s}{build_cost:8d}"
            + "".join(f"{c:9d}" for c in costs)
        )

    print(
        "\nLower is better (disk page accesses).  On contour data the "
        "structures that avoid\npartitioning empty space keep window "
        "queries cheap despite the sorted insertions."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
