"""Run the paper's standardised testbed at a chosen scale.

This is the closing offer of the paper made executable: build the four
compared point access methods (plus BANG* and BUDDY+) on all seven data
files and the four spatial access methods on all five rectangle files,
and print every table normalised exactly like §4/§8.

Run:  python examples/testbed_comparison.py [n_records]
(the paper uses 100 000; the default of 5 000 finishes in about a
minute on a laptop)
"""

import sys

from repro.bench.tables import format_absolute_table, format_normalised_table
from repro.core.comparison import (
    PAM_QUERY_TYPES,
    SAM_QUERY_TYPES,
    normalise,
    run_pam_experiment,
    run_sam_experiment,
)
from repro.core.testbed import standard_pam_factories, standard_sam_factories
from repro.workloads.distributions import POINT_FILES, generate_point_file
from repro.workloads.rect_distributions import RECT_FILES, generate_rect_file


def part_one(n: int) -> None:
    print("=" * 72)
    print("Part I: point access methods (all figures in % of GRID)")
    print("=" * 72)
    for file_name in POINT_FILES:
        points = generate_point_file(file_name, n)
        results = run_pam_experiment(standard_pam_factories(), points)
        norm = normalise(results, "GRID")
        print()
        print(
            format_normalised_table(
                f"{file_name} ({len(points)} records)", results, norm, PAM_QUERY_TYPES
            )
        )


def part_two(n: int) -> None:
    print()
    print("=" * 72)
    print("Part II: spatial access methods (absolute accesses per query)")
    print("=" * 72)
    for file_name in RECT_FILES:
        rects = generate_rect_file(file_name, n)
        results = run_sam_experiment(standard_sam_factories(), rects)
        print()
        print(
            format_absolute_table(
                f"{file_name} ({len(rects)} rectangles)", results, SAM_QUERY_TYPES
            )
        )


if __name__ == "__main__":
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    part_one(scale)
    part_two(scale)
