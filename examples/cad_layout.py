"""CAD scenario: component bounding boxes under interactive queries.

The paper's second motivating application (CAD/CIM): a layout editor
stores the bounding rectangles of thousands of components and issues

* point queries  — "which components are under the cursor?",
* intersections  — "which components touch the selection window?",
* containments   — "which components are fully inside the window?"
  (cut/copy of a region),
* enclosures     — "which enclosing blocks contain this cell?".

Three spatial access methods answer the same session; the R-tree is the
familiar baseline, the corner transformation over a BUDDY tree is the
paper's recommendation, and clipping shows Orenstein's redundancy
approach.

Run:  python examples/cad_layout.py [n_components]
"""

import sys

from repro import BuddyTree, ClippingSAM, PageStore, Rect, RTree, TransformationSAM
from repro.workloads.rect_distributions import generate_rect_file


def build_indexes(rects):
    indexes = {
        "R-tree": RTree(PageStore(), dims=2),
        "BUDDY (corner)": TransformationSAM(
            PageStore(), lambda s, dims: BuddyTree(s, dims), dims=2
        ),
        "clipping (r=4)": ClippingSAM(PageStore(), dims=2, redundancy=4),
    }
    for index in indexes.values():
        for rid, rect in enumerate(rects):
            index.insert(rect, rid)
    return indexes


def main(n_components: int = 4000) -> None:
    # Component footprints cluster around functional blocks, like the
    # paper's Gaussian rectangle files.
    rects = generate_rect_file("gaussian_square", n_components)
    indexes = build_indexes(rects)
    print(f"placed {len(rects)} components\n")

    cursor = (0.52, 0.48)
    window = Rect((0.35, 0.35), (0.6, 0.6))
    cell = rects[17]

    operations = [
        ("cursor pick", lambda index: index.point_query(cursor)),
        ("window touch", lambda index: index.intersection(window)),
        ("window inside", lambda index: index.containment(window)),
        ("enclosing blocks", lambda index: index.enclosure(cell)),
    ]

    header = f"{'operation':18s}" + "".join(f"{name:>18s}" for name in indexes)
    print(header)
    reference = None
    for label, operation in operations:
        row = f"{label:18s}"
        answers = []
        for index in indexes.values():
            before = index.store.stats.total
            result = operation(index)
            cost = index.store.stats.total - before
            answers.append(sorted(result))
            row += f"{len(result):>7d} ({cost:>4d}io)"
        assert all(a == answers[0] for a in answers), "indexes disagree!"
        print(row)
        reference = answers[0]

    print(
        "\nAll three indexes return identical component sets; the "
        "access counts show the\ntrade-offs the paper measured "
        "(transformation wins containment, clipping pays\nredundant "
        "storage for coarse queries)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4000)
