"""Quickstart: index points and rectangles, query them, read the metrics.

Run:  python examples/quickstart.py
"""

from repro import BuddyTree, PageStore, Rect, RTree
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file


def point_index_demo() -> None:
    # Every access method lives on a simulated 512-byte page store that
    # counts disk accesses -- the paper's performance metric.
    store = PageStore()
    index = BuddyTree(store, dims=2)

    for rid, point in enumerate(generate_point_file("cluster", 5000)):
        index.insert(point, rid)

    window = Rect((0.2, 0.2), (0.4, 0.4))
    before = store.stats.total
    hits = index.range_query(window)
    print(f"range query {window}")
    print(f"  {len(hits)} records, {store.stats.total - before} page accesses")

    specified = {0: hits[0][0][0]} if hits else {0: 0.5}
    matches = index.partial_match(specified)
    print(f"partial match x={specified[0]:.4f}: {len(matches)} records")

    m = index.metrics()
    print(
        f"file: {m.records} records, {m.data_pages} data pages, "
        f"{m.directory_pages} directory pages, height {m.height}, "
        f"storage utilisation {m.storage_utilization:.1f} %, "
        f"insert cost {m.insert_cost:.2f} accesses"
    )


def rectangle_index_demo() -> None:
    store = PageStore()
    index = RTree(store, dims=2)

    rects = generate_rect_file("uniform_small", 3000)
    for rid, rect in enumerate(rects):
        index.insert(rect, rid)

    probe = (0.5, 0.5)
    print(f"\npoint query {probe}: {len(index.point_query(probe))} rectangles")
    window = Rect((0.45, 0.45), (0.55, 0.55))
    print(f"intersection {window}: {len(index.intersection(window))} rectangles")
    print(f"containment {window}: {len(index.containment(window))} rectangles")


if __name__ == "__main__":
    point_index_demo()
    rectangle_index_demo()
