"""Physical-design advisor: pick an access method for *your* workload.

The paper's introduction frames the comparison as "the fundamentals of
automatic physical database design tools that would choose a physical
schema".  This example is that tool in miniature: describe a workload as
a mix of query types over a sample of your data, and the advisor builds
every candidate structure, replays the mix, and recommends the cheapest.

Run:  python examples/physical_design_advisor.py
"""

from repro.core.comparison import build_pam, measure
from repro.core.testbed import standard_pam_factories
from repro.workloads.distributions import generate_point_file
from repro.workloads.queries import (
    generate_partial_match_queries,
    generate_range_queries,
)


def advise(points, workload_mix: dict[str, float]) -> None:
    """Print per-structure workload costs and a recommendation.

    ``workload_mix`` maps query kind (``"small_range"``, ``"large_range"``,
    ``"partial_match"``, ``"exact"``) to its relative frequency.
    """
    query_sets = {
        "small_range": [("range", q) for q in generate_range_queries(0.001)],
        "large_range": [("range", q) for q in generate_range_queries(0.10)],
        "partial_match": [("pm", q) for q in generate_partial_match_queries(0)],
        "exact": [("exact", p) for p in points[:: max(1, len(points) // 20)]],
    }
    total_weight = sum(workload_mix.values())

    scores = {}
    print(f"{'structure':10s}" + "".join(f"{k:>15s}" for k in workload_mix) + f"{'weighted':>12s}")
    for name, factory in standard_pam_factories().items():
        pam = build_pam(factory, points)
        weighted = 0.0
        row = f"{name:10s}"
        for kind, weight in workload_mix.items():
            cost = 0
            for op, arg in query_sets[kind]:
                if op == "range":
                    delta, _ = measure(pam.store, lambda a=arg: pam.range_query(a))
                elif op == "pm":
                    delta, _ = measure(pam.store, lambda a=arg: pam.partial_match(a))
                else:
                    delta, _ = measure(pam.store, lambda a=arg: pam.exact_match(a))
                cost += delta
            average = cost / len(query_sets[kind])
            weighted += weight / total_weight * average
            row += f"{average:15.1f}"
        scores[name] = weighted
        print(row + f"{weighted:12.1f}")

    winner = min(scores, key=scores.get)
    print(f"\nrecommended physical design: {winner}")


if __name__ == "__main__":
    print("workload: interactive map browser over clustered data")
    print("(70% small windows, 10% overview windows, 15% profiles, 5% lookups)\n")
    sample = generate_point_file("cluster", 6000)
    advise(
        sample,
        {"small_range": 0.7, "large_range": 0.1, "partial_match": 0.15, "exact": 0.05},
    )
