"""Thematic-map regions: the paper's §9 "further work" made runnable.

"Further work in this area should deal with performance comparisons of
access methods for more complex spatial objects, such as polygons."
This example indexes convex map regions via filter-and-refine over two
of the compared SAMs, runs point-in-region and window queries, and
reports the MBR approximation quality (false-drop counts) alongside the
access counts.

Run:  python examples/polygon_regions.py [n_regions]
"""

import sys

from repro import BuddyTree, PageStore, Rect, RTree, TransformationSAM
from repro.sam.polygons import PolygonIndex
from repro.workloads.polygons import generate_polygon_file


def main(n_regions: int = 3000) -> None:
    regions = generate_polygon_file(n_regions, max_radius=0.05)
    indexes = {
        "R-tree filter": PolygonIndex(
            PageStore(), lambda s, dims: RTree(s, dims)
        ),
        "BUDDY (corner)": PolygonIndex(
            PageStore(),
            lambda s, dims: TransformationSAM(
                s, lambda st, dims: BuddyTree(st, dims), dims=dims
            ),
        ),
    }
    for index in indexes.values():
        for rid, polygon in enumerate(regions):
            index.insert(polygon, rid)
    print(f"indexed {len(regions)} convex map regions\n")

    probes = [(0.25, 0.25), (0.5, 0.5), (0.8, 0.3)]
    windows = [Rect((0.4, 0.4), (0.6, 0.6)), Rect((0.1, 0.7), (0.3, 0.9))]

    header = f"{'query':24s}" + "".join(f"{name:>26s}" for name in indexes)
    print(header)
    for label, run in [
        *(
            (f"point {p}", lambda idx, p=p: idx.point_query(p))
            for p in probes
        ),
        *(
            (f"window {w.lo}", lambda idx, w=w: idx.window_query(w))
            for w in windows
        ),
    ]:
        row = f"{label:24s}"
        answers = []
        for index in indexes.values():
            before = index.store.stats.total
            hits = run(index)
            cost = index.store.stats.total - before
            answers.append(sorted(hits))
            row += f"{len(hits):>8d} hits {index.last_false_drops:>3d}fd {cost:>4d}io"
        assert all(a == answers[0] for a in answers), "indexes disagree!"
        print(row)

    print(
        "\n'fd' counts the false drops of the MBR filter — the price of "
        "approximating a\npolygon by its bounding rectangle (§6), paid as "
        "extra object-page reads in the\nrefinement step."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3000)
