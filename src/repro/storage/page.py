"""Page identities and kinds for the simulated store."""

from __future__ import annotations

import enum

__all__ = ["PageKind"]


class PageKind(enum.Enum):
    """What a page holds; the paper reports directory and data pages separately."""

    DATA = "data"
    DIRECTORY = "directory"
