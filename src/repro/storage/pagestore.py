"""The counted page store.

A :class:`PageStore` hands out page identifiers, keeps each page's
in-memory node object, and counts every read and write, classified by
:class:`~repro.storage.page.PageKind`.  Two buffering rules from §3 of
the paper are built in:

* **Pinned pages** — the root of a tree directory (or, for the 2-level
  grid file, the whole first-level directory) resides in main memory;
  reads and writes of pinned pages are free.  The number of pinned
  pages is reported so that the paper's remark about GRID's in-core
  directory ("up to 45 directory pages for 100 000 records") can be
  reproduced.
* **Search-path buffer** — the most recently accessed search path stays
  buffered; re-reading one of its pages costs nothing.  The buffer is
  re-populated by each operation, so it "dynamically grows and shrinks
  according to the height of the tree".

Access methods bracket every externally visible operation (insert,
delete, query) with :meth:`PageStore.begin_operation`; everything read
or written in between forms the new buffered path.

**Observer hook** — the store accepts an optional :attr:`PageStore.observer`
(see :class:`repro.obs.tracer.StoreObserver`): ``on_operation_begin(store)``
fires at every operation bracket *before* the path buffer rotates, and
``on_access(store, pid, kind, rw, charged, reason)`` fires on every page
touch, whether it was charged or free (``reason`` is one of ``charged``,
``pinned``, ``buffered``, ``path``, ``dedup``).  Observation is purely
passive — it can never change which accesses are charged — and the
default of ``None`` costs only one ``is not None`` test per touch, so
uninstrumented runs are unaffected.
"""

from __future__ import annotations

from typing import Any

from repro.core.stats import AccessStats
from repro.query.columnar import ColumnarCache, vector_enabled
from repro.storage.page import PageKind

__all__ = ["PageStore"]


class PageStore:
    """Allocate, read, write and free simulated disk pages.

    Parameters
    ----------
    page_size:
        Page size in bytes; recorded for reporting.  Capacity decisions
        are taken by the access methods via :mod:`repro.storage.layout`.
    """

    def __init__(
        self,
        page_size: int = 512,
        path_buffer_limit: int = 6,
        vector: bool | None = None,
    ):
        self.page_size = page_size
        #: How many of the most recently accessed pages stay buffered
        #: across operations — the paper's "last accessed search path"
        #: (§3).  Six covers a root-to-leaf path of every structure here;
        #: the 2-level grid file sets it to 2 ("the last two accessed
        #: pages").
        self.path_buffer_limit = path_buffer_limit
        self.stats = AccessStats()
        #: Optional passive observer (``repro.obs.tracer.StoreObserver``);
        #: ``None`` keeps the store on its uninstrumented fast path.
        self.observer: Any = None
        self._objects: dict[int, Any] = {}
        self._kinds: dict[int, PageKind] = {}
        self._pinned: set[int] = set()
        self._buffer_prev: set[int] = set()
        self._buffer_cur: dict[int, None] = {}
        self._written_this_op: set[int] = set()
        self._next_id = 0
        #: Columnar cache backing the vectorized scan helpers
        #: (:mod:`repro.query`).  ``None`` keeps every access method on
        #: its original scalar loops; ``vector=None`` defers to the
        #: ``REPRO_VECTOR`` environment variable (default on).
        if vector is None:
            vector = vector_enabled()
        self.columnar = ColumnarCache() if vector else None

    # -- page lifecycle -------------------------------------------------

    def allocate(self, kind: PageKind, obj: Any) -> int:
        """Create a new page holding ``obj`` and return its identifier.

        Allocation itself is free; the page is charged when it is first
        written.
        """
        pid = self._next_id
        self._next_id += 1
        self._objects[pid] = obj
        self._kinds[pid] = kind
        return pid

    def free(self, pid: int) -> None:
        """Release a page (after a merge); freeing is not a disk access."""
        if self.columnar is not None:
            self.columnar.invalidate(pid)
        del self._objects[pid]
        del self._kinds[pid]
        self._pinned.discard(pid)
        self._buffer_prev.discard(pid)
        self._buffer_cur.pop(pid, None)
        self._written_this_op.discard(pid)

    def kind(self, pid: int) -> PageKind:
        """The :class:`PageKind` of page ``pid``."""
        return self._kinds[pid]

    # -- audit accessors ---------------------------------------------------
    #
    # Auditors (repro.verify) must walk the file without disturbing the
    # access counts or the path buffer, so they get uncharged, unobserved
    # read-only views of the store's state.

    def peek(self, pid: int) -> Any:
        """A page's object without charging a read (audits only)."""
        return self._objects[pid]

    def is_pinned(self, pid: int) -> bool:
        """Whether ``pid`` is pinned (uncharged; audits only)."""
        return pid in self._pinned

    def pinned_ids(self) -> set[int]:
        """The set of pinned page ids (a copy; audits only)."""
        return set(self._pinned)

    def page_ids(self) -> list[int]:
        """All live page identifiers (for audits and metrics)."""
        return list(self._objects)

    def count_pages(self, kind: PageKind) -> int:
        """Number of live pages of the given kind."""
        return sum(1 for k in self._kinds.values() if k is kind)

    # -- pinning ---------------------------------------------------------

    def pin(self, pid: int) -> None:
        """Keep ``pid`` permanently in main memory; its accesses become free."""
        self._pinned.add(pid)

    def unpin(self, pid: int) -> None:
        """Undo :meth:`pin`."""
        self._pinned.discard(pid)

    @property
    def pinned_count(self) -> int:
        """How many pages are pinned (reported as main-memory footprint)."""
        return len(self._pinned)

    # -- operations and the path buffer -----------------------------------

    def begin_operation(self) -> None:
        """Start a new insert/delete/query.

        The *tail* of the previous operation's accesses — at most
        :attr:`path_buffer_limit` pages, i.e. its final search path —
        stays buffered and can be re-read for free.

        The tail is deterministic: pages enter the buffer in the order
        of their *first* touch (read or write) within an operation, and
        later touches of the same page — re-reads, reads after writes,
        deduplicated repeat writes — never reorder it.  "Last
        ``path_buffer_limit`` accessed pages" therefore means the last
        ``path_buffer_limit`` *distinct* pages by first touch, which for
        a tree descent is exactly the final root-to-leaf search path.
        """
        if self.observer is not None:
            self.observer.on_operation_begin(self)
        tail = list(self._buffer_cur)[-self.path_buffer_limit :]
        self._buffer_prev = set(tail)
        self._buffer_cur = {}
        self._written_this_op = set()

    def read(self, pid: int) -> Any:
        """Fetch a page's object, charging a read unless it is buffered."""
        obj = self._objects[pid]
        observer = self.observer
        if pid in self._pinned:
            if observer is not None:
                observer.on_access(
                    self, pid, self._kinds[pid], "read", False, "pinned"
                )
            return obj
        buffer_cur = self._buffer_cur
        if pid in buffer_cur:
            if observer is not None:
                observer.on_access(
                    self, pid, self._kinds[pid], "read", False, "buffered"
                )
            return obj
        buffer_cur[pid] = None
        if pid in self._buffer_prev:
            if observer is not None:
                observer.on_access(
                    self, pid, self._kinds[pid], "read", False, "path"
                )
            return obj
        stats = self.stats
        if self._kinds[pid] is PageKind.DATA:
            stats.data_reads += 1
        else:
            stats.dir_reads += 1
        if observer is not None:
            observer.on_access(
                self, pid, self._kinds[pid], "read", True, "charged"
            )
        return obj

    def write(self, pid: int) -> None:
        """Charge a write for page ``pid`` and keep it on the buffered path.

        Repeated writes of the same page within one operation are charged
        once — a real system flushes each dirty page a single time.
        """
        # Invalidate before any charging decision: pinned and deduplicated
        # writes still mean the page object changed, so its columnar arrays
        # must never survive a write.
        if self.columnar is not None:
            self.columnar.invalidate(pid)
        if pid in self._pinned:
            if self.observer is not None:
                self.observer.on_access(
                    self, pid, self._kinds[pid], "write", False, "pinned"
                )
            return
        if pid in self._written_this_op:
            if self.observer is not None:
                self.observer.on_access(
                    self, pid, self._kinds[pid], "write", False, "dedup"
                )
            return
        self._written_this_op.add(pid)
        self.stats.record_write(self._kinds[pid] is PageKind.DATA)
        self._buffer_cur[pid] = None
        if self.observer is not None:
            self.observer.on_access(
                self, pid, self._kinds[pid], "write", True, "charged"
            )
