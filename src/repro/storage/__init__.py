"""Simulated secondary storage.

The paper's metric is the number of *disk page accesses*; wall-clock time
never appears in its tables.  This package therefore provides a counted,
deterministic page store instead of real I/O:

* :mod:`repro.storage.page` — page identities and kinds.
* :mod:`repro.storage.pagestore` — the counted store, including the
  paper's buffering rules (pinned root / in-core first-level directory,
  plus a buffer holding the most recently accessed search path).
* :mod:`repro.storage.layout` — 512-byte page capacity arithmetic.
"""

from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore

__all__ = ["PageKind", "PageStore"]
