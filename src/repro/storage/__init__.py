"""Simulated secondary storage.

The paper's metric is the number of *disk page accesses*; wall-clock time
never appears in its tables.  This package therefore provides a counted,
deterministic page store instead of real I/O:

* :mod:`repro.storage.page` — page identities and kinds.
* :mod:`repro.storage.pagestore` — the counted store, including the
  paper's buffering rules (pinned root / in-core first-level directory,
  plus a buffer holding the most recently accessed search path).
* :mod:`repro.storage.layout` — 512-byte page capacity arithmetic.

A second, *durable* backend implements the same interface over real
files (ROADMAP item 1) — page accesses then measure actual I/O while
the charged counters stay bit-identical to the simulated store:

* :mod:`repro.storage.io` — the file-IO seam, with deterministic fault
  injection (fail-stop, torn writes, bit flips) for crash testing.
* :mod:`repro.storage.wal` — the write-ahead log (length+CRC framed
  records, fsynced commit boundaries, redo-only replay).
* :mod:`repro.storage.disk` — :class:`~repro.storage.disk.DiskPageStore`:
  a slotted page file behind a bounded CLOCK buffer pool.
* :mod:`repro.storage.factory` — environment-switched store
  construction (``REPRO_STORE_BACKEND=sim|disk``).
"""

from repro.storage.factory import make_store
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore

__all__ = ["PageKind", "PageStore", "make_store"]
