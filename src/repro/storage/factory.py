"""Store construction switched by configuration or environment.

Every place that used to hard-code ``PageStore(page_size)`` builds its
store through :func:`make_store`, so one environment variable flips the
whole system — drivers, fuzzers, tests — onto the durable backend:

* ``REPRO_STORE_BACKEND`` — ``sim`` (default, the counted in-memory
  store) or ``disk`` (:class:`repro.storage.disk.DiskPageStore`).
* ``REPRO_STORE_DIR`` — base directory for disk stores; each store gets
  its own fresh subdirectory.  Defaults to a per-process temporary
  directory removed at exit.
* ``REPRO_STORE_POOL`` — buffer-pool budget in pages (default 256).
* ``REPRO_STORE_POISON`` — ``1`` poisons evicted page objects so stale
  references fail loudly (the aliasing check the tier-1 suite runs
  under in CI).
* ``REPRO_STORE_FSYNC`` — ``0`` skips the commit fsync (benches only).
* ``REPRO_TELEMETRY`` — ``1`` attaches the process-wide
  :class:`repro.obs.telemetry.Telemetry` to every disk store built
  here, so IO latencies, commit/checkpoint timings and pool gauges are
  recorded without touching any call site.  Telemetry never changes
  charged statistics or results.

The simulated backend stays the default everywhere, so existing CI
identity gates are untouched.
"""

from __future__ import annotations

import atexit
import itertools
import os
import shutil
import tempfile
from pathlib import Path

from repro.storage.pagestore import PageStore

__all__ = ["BACKENDS", "backend_name", "make_store"]

BACKENDS = ("sim", "disk")

BACKEND_ENV = "REPRO_STORE_BACKEND"
DIR_ENV = "REPRO_STORE_DIR"
POOL_ENV = "REPRO_STORE_POOL"
POISON_ENV = "REPRO_STORE_POISON"
FSYNC_ENV = "REPRO_STORE_FSYNC"

_counter = itertools.count()
_process_tempdir: str | None = None


def backend_name(backend: str | None = None) -> str:
    """Resolve the effective backend (explicit beats environment)."""
    name = backend or os.environ.get(BACKEND_ENV, "").strip() or "sim"
    if name not in BACKENDS:
        raise ValueError(f"unknown store backend {name!r}; choose from {BACKENDS}")
    return name


def _store_base_dir(directory: str | Path | None) -> Path:
    global _process_tempdir
    if directory is not None:
        return Path(directory)
    env = os.environ.get(DIR_ENV, "").strip()
    if env:
        return Path(env)
    if _process_tempdir is None:
        _process_tempdir = tempfile.mkdtemp(prefix="repro-store-")
        atexit.register(shutil.rmtree, _process_tempdir, ignore_errors=True)
    return Path(_process_tempdir)


def make_store(
    page_size: int = 512,
    *,
    vector: bool | None = None,
    backend: str | None = None,
    directory: str | Path | None = None,
    pool_pages: int | None = None,
    **disk_kwargs,
) -> PageStore:
    """A fresh page store on the configured backend.

    ``disk_kwargs`` (``io``, ``fsync``, ``paranoid``, ``poison``,
    ``slot_size``, ...) pass through to
    :class:`~repro.storage.disk.DiskPageStore`; the simulated backend
    rejects them so a misconfiguration cannot silently degrade to
    in-memory.
    """
    name = backend_name(backend)
    if name == "sim":
        if pool_pages is not None or directory is not None or disk_kwargs:
            raise ValueError(
                "pool_pages/directory/disk options require backend='disk'"
            )
        return PageStore(page_size, vector=vector)
    from repro.storage.disk import DiskPageStore

    base = _store_base_dir(directory)
    path = base / f"store-{os.getpid()}-{next(_counter)}"
    if pool_pages is None:
        pool_pages = int(os.environ.get(POOL_ENV, "256") or "256")
    disk_kwargs.setdefault(
        "poison", os.environ.get(POISON_ENV, "").strip() == "1"
    )
    disk_kwargs.setdefault(
        "fsync", os.environ.get(FSYNC_ENV, "").strip() != "0"
    )
    if "telemetry" not in disk_kwargs:
        from repro.obs.telemetry import active_telemetry

        telemetry = active_telemetry()
        if telemetry is not None:
            disk_kwargs["telemetry"] = telemetry
    return DiskPageStore(
        path, page_size, pool_pages=pool_pages, vector=vector, **disk_kwargs
    )
