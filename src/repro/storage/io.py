"""The file-IO seam under the durable store, with fault injection.

Every byte the durable backend (:mod:`repro.storage.disk`) and its
write-ahead log (:mod:`repro.storage.wal`) move to or from disk goes
through an :class:`IOProvider`.  Production uses :class:`OsFileIO`
(plain ``os.pread``/``os.pwrite``/``os.fsync``); tests wrap it in
:class:`FaultInjectingIO`, which counts writes across all files of a
store and, at a chosen write index, *crashes the process model*:

* **fail-stop** — the scheduled write is not performed at all;
* **torn write** — a seeded prefix of the scheduled write reaches the
  file before the crash (the classic partial sector write);
* **bit flip** — the write lands in full but one seeded bit is
  corrupted (what per-page/record checksums must catch).

After the injected crash every further operation on the provider raises
:class:`InjectedCrash`, so a store cannot accidentally keep running on
the "dead" machine; recovery reopens the files through a fresh
provider.  All randomness comes from one seeded :class:`random.Random`,
so a given ``(seed, fail_after, mode)`` triple always produces the same
torn length / flipped bit — reproducers stay reproducible.

Two further decorators compose around any provider:
:class:`InstrumentedIO` times every ``pread``/``pwrite``/``fsync`` into
a telemetry sink (:mod:`repro.obs.telemetry`), and :class:`DelayingIO`
injects deterministic latency — the slow-disk model the slow-operation
log is tested against.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from random import Random

__all__ = [
    "DelayingIO",
    "FaultInjectingIO",
    "FileHandle",
    "InjectedCrash",
    "InstrumentedIO",
    "IOProvider",
    "OsFileIO",
]


class InjectedCrash(RuntimeError):
    """The simulated machine died; the store must be recovered from disk."""


class FileHandle:
    """A positional-IO file handle (``pread``/``pwrite``, no shared cursor)."""

    def __init__(self, path: str | Path, fd: int):
        self.path = Path(path)
        self._fd = fd

    def pread(self, n: int, offset: int) -> bytes:
        return os.pread(self._fd, n, offset)

    def pwrite(self, data: bytes, offset: int) -> int:
        return os.pwrite(self._fd, data, offset)

    def fsync(self) -> None:
        os.fsync(self._fd)

    def truncate(self, size: int) -> None:
        os.ftruncate(self._fd, size)

    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    @property
    def closed(self) -> bool:
        return self._fd < 0


class IOProvider:
    """Factory/namespace for the file operations a durable store needs."""

    def open(self, path: str | Path) -> FileHandle:
        """Open ``path`` read-write, creating it when absent."""
        raise NotImplementedError

    def exists(self, path: str | Path) -> bool:
        return Path(path).exists()

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomically move ``src`` over ``dst`` (the checkpoint rename)."""
        os.replace(src, dst)

    def remove(self, path: str | Path) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


class OsFileIO(IOProvider):
    """Plain operating-system file IO."""

    def open(self, path: str | Path) -> FileHandle:
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        return FileHandle(path, fd)


class _ForwardingHandle:
    """Base for handle decorators: delegate everything to an inner handle.

    Wrappers compose around *any* handle (an :class:`OsFileIO` one, a
    fault-injecting one, another wrapper), so they hold the inner handle
    by reference instead of stealing its file descriptor.
    """

    def __init__(self, inner: FileHandle):
        self._inner = inner

    @property
    def path(self) -> Path:
        return self._inner.path

    def pread(self, n: int, offset: int) -> bytes:
        return self._inner.pread(n, offset)

    def pwrite(self, data: bytes, offset: int) -> int:
        return self._inner.pwrite(data, offset)

    def fsync(self) -> None:
        self._inner.fsync()

    def truncate(self, size: int) -> None:
        self._inner.truncate(size)

    def size(self) -> int:
        return self._inner.size()

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class _TimingHandle(_ForwardingHandle):
    """Times every ``pread``/``pwrite``/``fsync`` into the telemetry sink."""

    def __init__(self, inner: FileHandle, sink):
        super().__init__(inner)
        self._sink = sink

    def pread(self, n: int, offset: int) -> bytes:
        start = time.perf_counter()
        data = self._inner.pread(n, offset)
        self._sink.observe_io("pread", time.perf_counter() - start, len(data))
        return data

    def pwrite(self, data: bytes, offset: int) -> int:
        start = time.perf_counter()
        out = self._inner.pwrite(data, offset)
        self._sink.observe_io("pwrite", time.perf_counter() - start, len(data))
        return out

    def fsync(self) -> None:
        start = time.perf_counter()
        self._inner.fsync()
        self._sink.observe_io("fsync", time.perf_counter() - start, 0)


class InstrumentedIO(IOProvider):
    """Per-call latency instrumentation around a base :class:`IOProvider`.

    ``sink`` is duck-typed: anything with
    ``observe_io(op, seconds, nbytes)`` works, in practice a
    :class:`repro.obs.telemetry.Telemetry` (this module stays free of
    :mod:`repro.obs` imports so the storage layer never depends on the
    observability stack).  The wrapper composes: production wraps
    :class:`OsFileIO`, the fault-injection tests wrap a
    :class:`FaultInjectingIO`, and the instrumentation sees the same
    calls either way.  When telemetry is disabled no wrapper is
    installed at all, so the uninstrumented path pays nothing.
    """

    def __init__(self, base: IOProvider, sink):
        self.base = base
        self.sink = sink

    def open(self, path: str | Path) -> FileHandle:
        return _TimingHandle(self.base.open(path), self.sink)  # type: ignore[return-value]

    def exists(self, path: str | Path) -> bool:
        return self.base.exists(path)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        start = time.perf_counter()
        self.base.replace(src, dst)
        self.sink.observe_io("replace", time.perf_counter() - start, 0)

    def remove(self, path: str | Path) -> None:
        self.base.remove(path)


class _DelayingHandle(_ForwardingHandle):
    """Sleeps before delegating — a deterministic slow device."""

    def __init__(self, inner: FileHandle, provider: "DelayingIO"):
        super().__init__(inner)
        self._provider = provider

    def pread(self, n: int, offset: int) -> bytes:
        self._provider.sleep("pread")
        return self._inner.pread(n, offset)

    def pwrite(self, data: bytes, offset: int) -> int:
        self._provider.sleep("pwrite")
        return self._inner.pwrite(data, offset)

    def fsync(self) -> None:
        self._provider.sleep("fsync")
        self._inner.fsync()


class DelayingIO(IOProvider):
    """Deterministic latency injection around a base :class:`IOProvider`.

    The timing counterpart of :class:`FaultInjectingIO`: instead of
    crashing at write *N*, every operation of a chosen kind is slowed by
    a fixed delay, which is how tests manufacture a disk whose ``fsync``
    reliably crosses the slow-operation threshold.  Delays are plain
    ``time.sleep`` calls, so they are visible to any latency histogram
    wrapped around this provider and to the wall clock alike.
    """

    def __init__(
        self,
        base: IOProvider | None = None,
        *,
        pread_delay: float = 0.0,
        pwrite_delay: float = 0.0,
        fsync_delay: float = 0.0,
    ):
        self.base = base if base is not None else OsFileIO()
        self.delays = {
            "pread": pread_delay,
            "pwrite": pwrite_delay,
            "fsync": fsync_delay,
        }
        self.slept = {"pread": 0, "pwrite": 0, "fsync": 0}

    def sleep(self, op: str) -> None:
        delay = self.delays.get(op, 0.0)
        if delay > 0.0:
            self.slept[op] += 1
            time.sleep(delay)

    def open(self, path: str | Path) -> FileHandle:
        return _DelayingHandle(self.base.open(path), self)  # type: ignore[return-value]

    def exists(self, path: str | Path) -> bool:
        return self.base.exists(path)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        self.base.replace(src, dst)

    def remove(self, path: str | Path) -> None:
        self.base.remove(path)


class _InjectingHandle(FileHandle):
    """A handle that routes every write through the provider's budget."""

    def __init__(self, path: str | Path, fd: int, provider: "FaultInjectingIO"):
        super().__init__(path, fd)
        self._provider = provider

    def pread(self, n: int, offset: int) -> bytes:
        self._provider.check_alive()
        return super().pread(n, offset)

    def pwrite(self, data: bytes, offset: int) -> int:
        data = self._provider.before_write(data)
        if data:
            super().pwrite(data, offset)
        self._provider.after_write()
        return len(data)

    def fsync(self) -> None:
        self._provider.check_alive()
        self._provider.fsyncs += 1
        if self._provider.real_fsync:
            super().fsync()

    def truncate(self, size: int) -> None:
        self._provider.check_alive()
        super().truncate(size)


class FaultInjectingIO(IOProvider):
    """Deterministic fault injection around a base :class:`IOProvider`.

    Parameters
    ----------
    fail_after:
        Crash at the ``fail_after``-th write (1-based) across *all*
        handles of this provider; ``None`` never crashes (the provider
        then only counts, which is how harnesses size their sweeps).
    mode:
        ``"stop"`` drops the scheduled write entirely, ``"torn"``
        persists a seeded strict prefix of it, ``"flip"`` persists it
        with one seeded bit inverted.  The crash is raised either way.
    seed:
        Seeds the torn length / flipped bit choice.
    real_fsync:
        ``False`` (the default) counts ``fsync`` calls without paying
        for them — the crash model already decides what is durable, so
        tests need not wait on the disk.
    """

    def __init__(
        self,
        base: IOProvider | None = None,
        *,
        fail_after: int | None = None,
        mode: str = "stop",
        seed: int = 0,
        real_fsync: bool = False,
    ):
        if mode not in ("stop", "torn", "flip"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.base = base if base is not None else OsFileIO()
        self.fail_after = fail_after
        self.mode = mode
        self.rng = Random(seed)
        self.real_fsync = real_fsync
        self.writes = 0
        self.fsyncs = 0
        self.crashed = False

    # -- the crash model ---------------------------------------------------

    def check_alive(self) -> None:
        if self.crashed:
            raise InjectedCrash("the store's machine already crashed")

    def before_write(self, data: bytes) -> bytes:
        """Account one write; returns the bytes that actually land."""
        self.check_alive()
        self.writes += 1
        if self.fail_after is None or self.writes < self.fail_after:
            return data
        self.crashed = True
        if self.mode == "torn" and len(data) > 1:
            return data[: self.rng.randrange(1, len(data))]
        if self.mode == "flip" and data:
            i = self.rng.randrange(len(data))
            flipped = data[i] ^ (1 << self.rng.randrange(8))
            return data[:i] + bytes([flipped]) + data[i + 1 :]
        return b""

    def after_write(self) -> None:
        if self.crashed:
            raise InjectedCrash(
                f"injected crash at write #{self.writes} ({self.mode})"
            )

    # -- provider interface ------------------------------------------------

    def open(self, path: str | Path) -> FileHandle:
        self.check_alive()
        inner = self.base.open(path)
        handle = _InjectingHandle(inner.path, inner._fd, self)
        return handle

    def exists(self, path: str | Path) -> bool:
        return self.base.exists(path)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        # A rename is one metadata write: it either happens or it does
        # not, which is exactly the atomicity the checkpoint relies on.
        self.check_alive()
        self.writes += 1
        if self.fail_after is not None and self.writes >= self.fail_after:
            self.crashed = True
            raise InjectedCrash(
                f"injected crash at write #{self.writes} (rename dropped)"
            )
        self.base.replace(src, dst)

    def remove(self, path: str | Path) -> None:
        self.check_alive()
        self.base.remove(path)
