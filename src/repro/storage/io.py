"""The file-IO seam under the durable store, with fault injection.

Every byte the durable backend (:mod:`repro.storage.disk`) and its
write-ahead log (:mod:`repro.storage.wal`) move to or from disk goes
through an :class:`IOProvider`.  Production uses :class:`OsFileIO`
(plain ``os.pread``/``os.pwrite``/``os.fsync``); tests wrap it in
:class:`FaultInjectingIO`, which counts writes across all files of a
store and, at a chosen write index, *crashes the process model*:

* **fail-stop** — the scheduled write is not performed at all;
* **torn write** — a seeded prefix of the scheduled write reaches the
  file before the crash (the classic partial sector write);
* **bit flip** — the write lands in full but one seeded bit is
  corrupted (what per-page/record checksums must catch).

After the injected crash every further operation on the provider raises
:class:`InjectedCrash`, so a store cannot accidentally keep running on
the "dead" machine; recovery reopens the files through a fresh
provider.  All randomness comes from one seeded :class:`random.Random`,
so a given ``(seed, fail_after, mode)`` triple always produces the same
torn length / flipped bit — reproducers stay reproducible.
"""

from __future__ import annotations

import os
from pathlib import Path
from random import Random

__all__ = [
    "FaultInjectingIO",
    "FileHandle",
    "InjectedCrash",
    "IOProvider",
    "OsFileIO",
]


class InjectedCrash(RuntimeError):
    """The simulated machine died; the store must be recovered from disk."""


class FileHandle:
    """A positional-IO file handle (``pread``/``pwrite``, no shared cursor)."""

    def __init__(self, path: str | Path, fd: int):
        self.path = Path(path)
        self._fd = fd

    def pread(self, n: int, offset: int) -> bytes:
        return os.pread(self._fd, n, offset)

    def pwrite(self, data: bytes, offset: int) -> int:
        return os.pwrite(self._fd, data, offset)

    def fsync(self) -> None:
        os.fsync(self._fd)

    def truncate(self, size: int) -> None:
        os.ftruncate(self._fd, size)

    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    @property
    def closed(self) -> bool:
        return self._fd < 0


class IOProvider:
    """Factory/namespace for the file operations a durable store needs."""

    def open(self, path: str | Path) -> FileHandle:
        """Open ``path`` read-write, creating it when absent."""
        raise NotImplementedError

    def exists(self, path: str | Path) -> bool:
        return Path(path).exists()

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomically move ``src`` over ``dst`` (the checkpoint rename)."""
        os.replace(src, dst)

    def remove(self, path: str | Path) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


class OsFileIO(IOProvider):
    """Plain operating-system file IO."""

    def open(self, path: str | Path) -> FileHandle:
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        return FileHandle(path, fd)


class _InjectingHandle(FileHandle):
    """A handle that routes every write through the provider's budget."""

    def __init__(self, path: str | Path, fd: int, provider: "FaultInjectingIO"):
        super().__init__(path, fd)
        self._provider = provider

    def pread(self, n: int, offset: int) -> bytes:
        self._provider.check_alive()
        return super().pread(n, offset)

    def pwrite(self, data: bytes, offset: int) -> int:
        data = self._provider.before_write(data)
        if data:
            super().pwrite(data, offset)
        self._provider.after_write()
        return len(data)

    def fsync(self) -> None:
        self._provider.check_alive()
        self._provider.fsyncs += 1
        if self._provider.real_fsync:
            super().fsync()

    def truncate(self, size: int) -> None:
        self._provider.check_alive()
        super().truncate(size)


class FaultInjectingIO(IOProvider):
    """Deterministic fault injection around a base :class:`IOProvider`.

    Parameters
    ----------
    fail_after:
        Crash at the ``fail_after``-th write (1-based) across *all*
        handles of this provider; ``None`` never crashes (the provider
        then only counts, which is how harnesses size their sweeps).
    mode:
        ``"stop"`` drops the scheduled write entirely, ``"torn"``
        persists a seeded strict prefix of it, ``"flip"`` persists it
        with one seeded bit inverted.  The crash is raised either way.
    seed:
        Seeds the torn length / flipped bit choice.
    real_fsync:
        ``False`` (the default) counts ``fsync`` calls without paying
        for them — the crash model already decides what is durable, so
        tests need not wait on the disk.
    """

    def __init__(
        self,
        base: IOProvider | None = None,
        *,
        fail_after: int | None = None,
        mode: str = "stop",
        seed: int = 0,
        real_fsync: bool = False,
    ):
        if mode not in ("stop", "torn", "flip"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.base = base if base is not None else OsFileIO()
        self.fail_after = fail_after
        self.mode = mode
        self.rng = Random(seed)
        self.real_fsync = real_fsync
        self.writes = 0
        self.fsyncs = 0
        self.crashed = False

    # -- the crash model ---------------------------------------------------

    def check_alive(self) -> None:
        if self.crashed:
            raise InjectedCrash("the store's machine already crashed")

    def before_write(self, data: bytes) -> bytes:
        """Account one write; returns the bytes that actually land."""
        self.check_alive()
        self.writes += 1
        if self.fail_after is None or self.writes < self.fail_after:
            return data
        self.crashed = True
        if self.mode == "torn" and len(data) > 1:
            return data[: self.rng.randrange(1, len(data))]
        if self.mode == "flip" and data:
            i = self.rng.randrange(len(data))
            flipped = data[i] ^ (1 << self.rng.randrange(8))
            return data[:i] + bytes([flipped]) + data[i + 1 :]
        return b""

    def after_write(self) -> None:
        if self.crashed:
            raise InjectedCrash(
                f"injected crash at write #{self.writes} ({self.mode})"
            )

    # -- provider interface ------------------------------------------------

    def open(self, path: str | Path) -> FileHandle:
        self.check_alive()
        inner = self.base.open(path)
        handle = _InjectingHandle(inner.path, inner._fd, self)
        return handle

    def exists(self, path: str | Path) -> bool:
        return self.base.exists(path)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        # A rename is one metadata write: it either happens or it does
        # not, which is exactly the atomicity the checkpoint relies on.
        self.check_alive()
        self.writes += 1
        if self.fail_after is not None and self.writes >= self.fail_after:
            self.crashed = True
            raise InjectedCrash(
                f"injected crash at write #{self.writes} (rename dropped)"
            )
        self.base.replace(src, dst)

    def remove(self, path: str | Path) -> None:
        self.check_alive()
        self.base.remove(path)
