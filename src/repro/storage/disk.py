"""Durable on-disk page store: page file, buffer manager, WAL recovery.

:class:`DiskPageStore` implements the :class:`~repro.storage.pagestore.PageStore`
interface over real files, so builds and queries can run
larger-than-memory while the *charged* access statistics stay
bit-identical to the simulated store.  The identity is by construction:
the base class reads every page object through ``self._objects[pid]`` —
as do the access methods' uncharged fast paths — and this subclass
swaps that dict for a :class:`BufferPool`, a bounded dict-like whose
``__getitem__`` faults pages in from disk.  None of the inherited
charging logic (pinned pages, the search-path buffer, write
deduplication, observer events) is touched, so whether an access is
*charged* never depends on whether it was *physical*.

On disk a store is a directory of three files:

* ``pages.dat`` — fixed-size slots, one per page id (``offset =
  header + pid * slot_size``); each slot holds a length/CRC32/kind
  header plus the pickled page payload.  Page ids are never reused, so
  the file is sparse where pages were freed.
* ``wal.log`` — the write-ahead log (:mod:`repro.storage.wal`).  A
  commit appends full after-images of every page dirtied since the
  last commit, then an fsynced commit record.
* ``store.meta`` — the checkpoint sidecar: the page table (pid →
  kind, CRC, length), the allocation cursor, the pinned set and an
  opaque application blob, rewritten atomically (tmp + rename) at
  every checkpoint.

Write ordering (no-steal / redo-only):

1. Uncommitted dirty pages live only in the buffer pool; they are
   never evicted and never reach the page file.
2. ``commit()`` logs their after-images to the WAL and fsyncs.  From
   here the change is durable; the frames become clean.
3. Clean committed pages may be evicted; eviction writes the page into
   its slot (no fsync needed — the WAL already covers it).
4. ``checkpoint()`` flushes every WAL-only page to its slot, fsyncs the
   page file, atomically rewrites ``store.meta`` and truncates the WAL.

Recovery replays committed WAL records over the page file (full-page
redo is idempotent), truncates any torn or uncommitted tail, restores
the allocation cursor and pinned set from the last commit record and
ends with a checkpoint, so a recovered store is indistinguishable from
one that shut down cleanly at its last commit boundary.

Two safety nets guard the one behaviour a real buffer manager adds over
the simulated store — page objects can *leave* memory:

* **Silent-mutation detection.**  Access methods occasionally mutate a
  page without charging a write (the store cannot see attribute
  assignments).  Commits and evictions therefore re-serialise touched
  clean pages and compare CRCs; a drifted page is re-classified dirty
  and logged, never dropped.
* **Poison mode** (``poison=True``) strips every attribute from an
  evicted page object, so any access method that illegally retained a
  reference across operations fails loudly (``AttributeError``)
  instead of reading stale state.
"""

from __future__ import annotations

import base64
import json
import pickle
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.storage.io import FileHandle, InstrumentedIO, IOProvider, OsFileIO
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.storage.wal import WAL_MAGIC, WriteAheadLog

__all__ = [
    "AliasingError",
    "BufferPool",
    "CorruptionError",
    "DiskPageStore",
    "PageFile",
    "PageOverflowError",
    "default_slot_size",
    "poison_page",
    "restore_method",
    "snapshot_method",
]

#: Pickle protocol for page payloads; fixed so that the CRC of an
#: unchanged object is reproducible within a process and across runs.
_PICKLE_PROTOCOL = 4

META_FORMAT = "repro.storage/disk-meta/v1"


class CorruptionError(RuntimeError):
    """A page failed its checksum and no WAL record can heal it."""


class PageOverflowError(ValueError):
    """A pickled page payload does not fit its fixed-size slot."""


class AliasingError(RuntimeError):
    """``write(pid)`` reached a page whose object is no longer resident.

    The caller mutated a page object obtained in an earlier operation
    after the pool evicted it — the classic mutable-page aliasing bug
    the simulated store can never surface.
    """


def default_slot_size(page_size: int) -> int:
    """Slot bytes for a logical page size.

    Pickled Python payloads are several times larger than the paper's
    packed binary layout (§3 capacities are arithmetic, not physical),
    so slots default to 16x the logical page, rounded up to a 4 KiB
    multiple.
    """
    raw = 16 * page_size + PageFile.SLOT_HEADER
    return max(4096, -(-raw // 4096) * 4096)


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)


def poison_page(obj: Any) -> None:
    """Strip every attribute so stale references fail on first use."""
    for cls in type(obj).__mro__:
        for slot in getattr(cls, "__slots__", ()):
            if isinstance(slot, str) and not slot.startswith("__"):
                try:
                    delattr(obj, slot)
                except AttributeError:
                    pass
    d = getattr(obj, "__dict__", None)
    if d is not None:
        d.clear()


# -- the page file -----------------------------------------------------------


_KIND_BYTES = {PageKind.DATA: 1, PageKind.DIRECTORY: 2}
_BYTE_KINDS = {v: k for k, v in _KIND_BYTES.items()}


class PageFile:
    """Fixed-size slotted page file: ``slot(pid) = header + pid * slot_size``."""

    MAGIC = b"RPGF"
    VERSION = 1
    _FILE_HEADER = struct.Struct("<4sIII")
    HEADER_SIZE = 16
    #: Per-slot header: payload length, CRC32, kind byte, 7 pad bytes.
    _SLOT_HEADER = struct.Struct("<IIB7x")
    SLOT_HEADER = 16

    def __init__(
        self,
        path: str | Path,
        io: IOProvider,
        slot_size: int,
        page_size: int,
        fresh: bool = False,
    ):
        self.path = Path(path)
        self.io = io
        self._fh: FileHandle = io.open(self.path)
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        if fresh and self._fh.size() != 0:
            # A crashed creation can leave a partial (even bit-flipped)
            # header behind; the caller says nothing here was ever
            # committed, so start over instead of validating garbage.
            self._fh.truncate(0)
        if self._fh.size() == 0:
            self.slot_size = slot_size
            self.page_size = page_size
            header = self._FILE_HEADER.pack(
                self.MAGIC, self.VERSION, slot_size, page_size
            )
            self._fh.pwrite(header, 0)
        else:
            header = self._fh.pread(self._FILE_HEADER.size, 0)
            magic, version, file_slot, file_page = self._FILE_HEADER.unpack(header)
            if magic != self.MAGIC or version != self.VERSION:
                raise CorruptionError(f"{self.path}: not a page file")
            self.slot_size = file_slot
            self.page_size = file_page

    @property
    def payload_capacity(self) -> int:
        return self.slot_size - self.SLOT_HEADER

    def _offset(self, pid: int) -> int:
        return self.HEADER_SIZE + pid * self.slot_size

    def write_slot(self, pid: int, kind: PageKind, payload: bytes) -> int:
        """Write one page image; returns the payload's CRC32."""
        if len(payload) > self.payload_capacity:
            raise PageOverflowError(
                f"page {pid}: pickled payload of {len(payload)} bytes exceeds "
                f"the {self.payload_capacity}-byte slot capacity; reopen the "
                f"store with a larger slot_size"
            )
        crc = zlib.crc32(payload)
        slot = self._SLOT_HEADER.pack(len(payload), crc, _KIND_BYTES[kind]) + payload
        self._fh.pwrite(slot, self._offset(pid))
        self.writes += 1
        self.bytes_written += len(slot)
        return crc

    def read_slot(self, pid: int, expected_crc: int | None = None) -> tuple[PageKind, bytes]:
        """Read and checksum one page image."""
        header = self._fh.pread(self.SLOT_HEADER, self._offset(pid))
        if len(header) < self.SLOT_HEADER:
            raise CorruptionError(f"page {pid}: slot missing from {self.path}")
        length, crc, kind_byte = self._SLOT_HEADER.unpack(header)
        if kind_byte not in _BYTE_KINDS or length > self.payload_capacity:
            raise CorruptionError(f"page {pid}: slot header corrupted")
        payload = self._fh.pread(length, self._offset(pid) + self.SLOT_HEADER)
        self.reads += 1
        self.bytes_read += self.SLOT_HEADER + length
        if len(payload) < length or zlib.crc32(payload) != crc:
            raise CorruptionError(f"page {pid}: payload checksum mismatch (torn write?)")
        if expected_crc is not None and crc != expected_crc:
            raise CorruptionError(
                f"page {pid}: slot holds stale or foreign image "
                f"(crc {crc:#x}, page table expects {expected_crc:#x})"
            )
        return _BYTE_KINDS[kind_byte], payload

    def read_raw(self) -> bytes:
        """The whole file (for snapshot export)."""
        return self._fh.pread(self._fh.size(), 0)

    def fsync(self) -> None:
        self._fh.fsync()

    def close(self) -> None:
        self._fh.close()

    def stats(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


# -- the buffer pool ---------------------------------------------------------


class _Frame:
    """One resident page: the live object, its clock bit, its dirt."""

    __slots__ = ("obj", "ref", "dirty")

    def __init__(self, obj: Any, dirty: bool):
        self.obj = obj
        self.ref = True
        self.dirty = dirty


class _PageMeta:
    """Page-table entry: where the page's durable image lives."""

    __slots__ = ("kind", "crc", "length", "on_disk", "durable")

    def __init__(self):
        self.kind: PageKind | None = None
        self.crc: int | None = None
        self.length: int = 0
        #: The page-file slot holds the latest committed image.
        self.on_disk = False
        #: Some durable image exists (slot or WAL) — freeing the page
        #: must therefore be logged.
        self.durable = False


class BufferPool:
    """A bounded, dict-like page cache with CLOCK eviction.

    The pool *is* the store's ``_objects`` mapping: its keys are every
    live page id (the full page table), its values the page objects,
    faulted in from the page file on demand.  Iteration, ``len`` and
    ``in`` therefore see all live pages, exactly like the simulated
    store's plain dict — only *residency* is bounded.

    Eviction rules, in order:

    * pinned pages and dirty (uncommitted) pages are never evicted;
    * pages touched by the current operation are never evicted either:
      the access method may hold their objects right now (and mutate
      them ahead of the ``write`` call), so they stay resident until
      the next operation bracket — the simulated store's read-mutate-
      write-within-an-op contract survives unchanged;
    * every candidate is re-serialised and CRC-checked against its
      committed image (``paranoid`` mode, on by default): a page that
      was silently mutated is re-classified dirty instead of evicted;
    * if no frame at all is evictable the pool overflows (grows past
      its budget) rather than corrupt anything, and counts it — the
      budget bounds steady-state residency, a single operation's
      working set bounds the excursion.
    """

    def __init__(
        self,
        store: "DiskPageStore",
        pagefile: PageFile,
        budget: int,
        *,
        paranoid: bool = True,
        poison: bool = False,
    ):
        if budget < 4:
            raise ValueError("pool budget must be at least 4 pages")
        self.store = store
        self.pagefile = pagefile
        self.budget = budget
        self.paranoid = paranoid
        self.poison = poison
        self.frames: dict[int, _Frame] = {}
        self.pages: dict[int, _PageMeta] = {}
        self.dirty: set[int] = set()
        #: Pages handed out (mutably) since the last commit; commit
        #: CRC-checks the clean resident ones for silent mutations.
        self.touched: set[int] = set()
        #: Pages handed out during the *current operation*.  Their
        #: objects may be held (and mutated ahead of their ``write``)
        #: by the access method right now, so they are unevictable
        #: until the next operation bracket clears the set.
        self.op_touched: set[int] = set()
        #: Durable pages freed since the last commit.
        self.freed: set[int] = set()
        self._ring: list[int] = []
        self._hand = 0
        #: Page currently being faulted in; the caller is about to
        #: receive its object, so the clock must never pick it — even
        #: when every other frame is unevictable and the sweep wraps.
        self._admitting: int | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peek_loads = 0
        self.overflows = 0
        self.silent_dirty = 0

    # -- mapping protocol (what PageStore and access methods use) ----------

    def __getitem__(self, pid: int) -> Any:
        frame = self.frames.get(pid)
        if frame is not None:
            frame.ref = True
            self.hits += 1
            self.touched.add(pid)
            self.op_touched.add(pid)
            return frame.obj
        obj = self._load(pid)
        self.misses += 1
        self.touched.add(pid)
        self.op_touched.add(pid)
        self._admit(pid, obj, dirty=False)
        return obj

    def __setitem__(self, pid: int, obj: Any) -> None:
        self.touched.add(pid)
        self.op_touched.add(pid)
        frame = self.frames.get(pid)
        if frame is not None:
            frame.obj = obj
            frame.ref = True
            frame.dirty = True
            self.dirty.add(pid)
            return
        if pid not in self.pages:
            self.pages[pid] = _PageMeta()
        self._admit(pid, obj, dirty=True)

    def __delitem__(self, pid: int) -> None:
        meta = self.pages.pop(pid)  # KeyError on a dead pid, like a dict
        self.frames.pop(pid, None)
        self.dirty.discard(pid)
        self.touched.discard(pid)
        self.op_touched.discard(pid)
        if meta.durable:
            self.freed.add(pid)

    def __contains__(self, pid: object) -> bool:
        return pid in self.pages

    def __iter__(self) -> Iterator[int]:
        return iter(self.pages)

    def __len__(self) -> int:
        return len(self.pages)

    def keys(self):
        return self.pages.keys()

    # -- faulting and eviction ---------------------------------------------

    def _load(self, pid: int) -> Any:
        meta = self.pages.get(pid)
        if meta is None:
            raise KeyError(pid)
        # Invariant: a non-resident page always has a current slot image
        # (dirty pages are unevictable; WAL-only pages are written to
        # their slot as part of eviction).
        kind, payload = self.pagefile.read_slot(pid, expected_crc=meta.crc)
        return pickle.loads(payload)

    def peek(self, pid: int) -> Any:
        """The page object without promotion: no clock touch, no admission."""
        frame = self.frames.get(pid)
        if frame is not None:
            return frame.obj
        meta = self.pages.get(pid)
        if meta is None:
            raise KeyError(pid)
        _, payload = self.pagefile.read_slot(pid, expected_crc=meta.crc)
        self.peek_loads += 1
        return pickle.loads(payload)

    def mark_dirty(self, pid: int) -> None:
        frame = self.frames[pid]
        frame.dirty = True
        self.dirty.add(pid)

    def _admit(self, pid: int, obj: Any, dirty: bool) -> None:
        self.frames[pid] = _Frame(obj, dirty)
        if dirty:
            self.dirty.add(pid)
        self._ring.append(pid)
        self._admitting = pid
        try:
            while len(self.frames) > self.budget:
                if not self._evict_one():
                    break
        finally:
            self._admitting = None

    def begin_op(self) -> None:
        """New operation bracket: the previous operation's working set
        becomes evictable again."""
        self.op_touched.clear()

    def _unevictable(self, pid: int, frame: _Frame) -> bool:
        return (
            frame.dirty
            or pid == self._admitting
            or pid in self.op_touched
            or pid in self.store._pinned
        )

    def _evict_one(self) -> bool:
        if self._sweep():
            return True
        self.overflows += 1
        return False

    def _sweep(self) -> bool:
        ring = self._ring
        frames = self.frames
        steps = 0
        max_steps = 2 * len(ring) + 1
        while ring and steps < max_steps:
            if self._hand >= len(ring):
                self._hand = 0
            pid = ring[self._hand]
            frame = frames.get(pid)
            if frame is None:  # freed or already evicted; drop the stale entry
                ring.pop(self._hand)
                continue
            steps += 1
            if self._unevictable(pid, frame):
                self._hand += 1
                continue
            if frame.ref:
                frame.ref = False
                self._hand += 1
                continue
            if self._evict(pid, frame):
                ring.pop(self._hand)
                return True
            self._hand += 1
        return False

    def _evict(self, pid: int, frame: _Frame) -> bool:
        telem = self.store._telemetry
        if telem is None:
            return self._evict_inner(pid, frame)
        start = time.perf_counter()
        evicted = self._evict_inner(pid, frame)
        if evicted:
            telem.observe(
                "storage.pool.eviction_seconds", time.perf_counter() - start
            )
        return evicted

    def _evict_inner(self, pid: int, frame: _Frame) -> bool:
        """Write back (if needed) and drop one clean frame.

        Returns ``False`` — and re-classifies the page dirty — when the
        serialise-and-check pass finds the object drifted from its
        committed image (a mutation the store was never told about).
        """
        meta = self.pages[pid]
        payload = None
        if self.paranoid or not meta.on_disk:
            payload = _dumps(frame.obj)
            if zlib.crc32(payload) != meta.crc or len(payload) != meta.length:
                self.silent_dirty += 1
                self.mark_dirty(pid)
                return False
        if not meta.on_disk:
            self.pagefile.write_slot(pid, self.store._kinds[pid], payload)
            meta.on_disk = True
        if self.poison:
            poison_page(frame.obj)
        del self.frames[pid]
        self.dirty.discard(pid)
        self.evictions += 1
        return True

    def flush_to_slots(self) -> None:
        """Write every WAL-only resident page into its slot (checkpoint)."""
        for pid, frame in self.frames.items():
            meta = self.pages[pid]
            if meta.on_disk or frame.dirty:
                continue
            payload = _dumps(frame.obj)
            if zlib.crc32(payload) != meta.crc or len(payload) != meta.length:
                raise AliasingError(
                    f"page {pid} drifted from its committed image during a "
                    f"checkpoint flush; a mutation bypassed write()"
                )
            self.pagefile.write_slot(pid, self.store._kinds[pid], payload)
            meta.on_disk = True

    def stats(self) -> dict[str, int]:
        return {
            "budget": self.budget,
            "resident": len(self.frames),
            "pages": len(self.pages),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "peek_loads": self.peek_loads,
            "overflows": self.overflows,
            "silent_dirty": self.silent_dirty,
        }

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 1.0


# -- the durable store -------------------------------------------------------


class DiskPageStore(PageStore):
    """A :class:`PageStore` whose pages live in a real file behind a pool.

    Parameters
    ----------
    path:
        Directory holding the store's three files; created when absent.
        Reopening a non-empty directory recovers it (WAL replay).
    pool_pages:
        Buffer-pool budget in pages.
    slot_size:
        On-disk bytes per page slot (pickled payloads are larger than
        the logical ``page_size``); adopted from the existing file when
        reopening.  Defaults to :func:`default_slot_size`.
    io:
        An :class:`~repro.storage.io.IOProvider`; tests pass
        :class:`~repro.storage.io.FaultInjectingIO`.
    fsync:
        Whether commits fsync the WAL.  Keep ``True`` wherever
        durability is the point; benches may trade it away.
    paranoid / poison:
        Buffer-pool safety nets, see :class:`BufferPool`.
    wal_checkpoint_bytes:
        Auto-checkpoint once the WAL grows past this size.
    telemetry:
        A :class:`repro.obs.telemetry.Telemetry` (duck-typed — this
        module never imports :mod:`repro.obs`).  When set, the IO
        provider is wrapped in :class:`~repro.storage.io.InstrumentedIO`
        so every pread/pwrite/fsync lands in a latency histogram,
        commits/checkpoints/evictions are timed, the store's pool and
        WAL state is exposed as gauges, and slow operations are logged.
        Telemetry is strictly additive: charged access statistics and
        query results are bit-identical with it on or off.
    """

    def __init__(
        self,
        path: str | Path,
        page_size: int = 512,
        *,
        pool_pages: int = 128,
        slot_size: int | None = None,
        path_buffer_limit: int = 6,
        vector: bool | None = None,
        io: IOProvider | None = None,
        fsync: bool = True,
        paranoid: bool = True,
        poison: bool = False,
        wal_checkpoint_bytes: int = 64 << 20,
        telemetry=None,
    ):
        super().__init__(page_size, path_buffer_limit, vector)
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.io = io if io is not None else OsFileIO()
        self._telemetry = telemetry
        if telemetry is not None:
            self.io = InstrumentedIO(self.io, telemetry)
        self.fsync_on_commit = fsync
        self.wal_checkpoint_bytes = wal_checkpoint_bytes
        self.commits = 0
        self.checkpoints = 0
        self.recovered = False
        self.recovered_torn_tail = False
        #: The opaque blob last committed via ``commit(meta=...)``; after
        #: recovery, the blob of the last committed transaction.
        self.meta_blob: Any = None
        self._pin_dirty = False
        self._closed = False
        self._in_checkpoint = False
        self._last_commit_pages: list[int] = []

        # The sidecar is the store's existence ground truth: it lands
        # (atomically) only after the page file and WAL headers are
        # durable, so without it any pages.dat / wal.log content is
        # debris from a creation that crashed mid-flight.
        had_meta = self.io.exists(self._meta_path)
        self._pagefile = PageFile(
            self.path / "pages.dat",
            self.io,
            slot_size if slot_size is not None else default_slot_size(page_size),
            page_size,
            fresh=not had_meta,
        )
        if self._pagefile.page_size != page_size:
            raise ValueError(
                f"{self.path}: store was created with page_size="
                f"{self._pagefile.page_size}, not {page_size}"
            )
        self._wal = WriteAheadLog(self.path / "wal.log", self.io)
        pool = BufferPool(
            self, self._pagefile, pool_pages, paranoid=paranoid, poison=poison
        )
        self._objects = pool  # type: ignore[assignment]  (dict-like)
        if had_meta:
            self._recover()
        else:
            if self._wal.size > len(WAL_MAGIC) + 4:
                self._wal.reset()  # debris from a crashed creation
            self._write_sidecar()
        if telemetry is not None:
            telemetry.register_store(self)

    # -- paths -------------------------------------------------------------

    @property
    def _meta_path(self) -> Path:
        return self.path / "store.meta"

    @property
    def pool(self) -> BufferPool:
        return self._objects  # type: ignore[return-value]

    # -- PageStore overrides ------------------------------------------------

    def write(self, pid: int) -> None:
        pool = self.pool
        if pid not in pool.frames:
            if pid not in pool.pages:
                raise KeyError(pid)
            raise AliasingError(
                f"write({pid}) after the page was evicted: the caller mutated "
                f"a page object it retained across operations"
            )
        super().write(pid)
        pool.mark_dirty(pid)

    def peek(self, pid: int) -> Any:
        return self.pool.peek(pid)

    def pin(self, pid: int) -> None:
        # A pinned page must be resident (it is unevictable from now on).
        if pid in self.pool.pages and pid not in self.pool.frames:
            self._objects[pid]
        if pid not in self._pinned:
            self._pin_dirty = True
        super().pin(pid)

    def unpin(self, pid: int) -> None:
        if pid in self._pinned:
            self._pin_dirty = True
        super().unpin(pid)

    def begin_operation(self) -> None:
        """Operation brackets are commit boundaries: the previous
        operation's changes become durable before the next one starts,
        and its working set becomes evictable again."""
        self.commit()
        super().begin_operation()
        self.pool.begin_op()

    # -- durability ---------------------------------------------------------

    def _wal_append(self, *args) -> None:
        telem = self._telemetry
        if telem is None:
            self._wal.append(*args)
            return
        start = time.perf_counter()
        self._wal.append(*args)
        telem.observe("storage.wal.append_seconds", time.perf_counter() - start)

    def _io_breakdown(self, wal_before: dict, io_before: dict) -> dict:
        """What physically happened during an operation span: the delta
        of the WAL counters and of every IO-latency histogram."""
        wal_now = self._wal.stats()
        out = {
            "wal_records": wal_now["records"] - wal_before["records"],
            "wal_bytes": wal_now["bytes"] - wal_before["bytes"],
        }
        for op, (count, seconds) in self._telemetry.io_counts().items():
            before_count, before_seconds = io_before.get(op, (0, 0.0))
            if count > before_count:
                out[f"{op}s"] = count - before_count
                out[f"{op}_seconds"] = seconds - before_seconds
        return out

    def commit(self, meta: Any | None = None) -> bool:
        telem = self._telemetry
        if telem is None:
            return self._commit_inner(meta)
        wal_before = self._wal.stats()
        io_before = telem.io_counts()
        start = time.perf_counter()
        committed = self._commit_inner(meta)
        if committed:
            seconds = time.perf_counter() - start
            telem.observe("storage.commit_seconds", seconds)
            telem.maybe_slow_op(
                "commit",
                seconds,
                pages=self._last_commit_pages,
                io=self._io_breakdown(wal_before, io_before),
            )
        return committed

    def _commit_inner(self, meta: Any | None = None) -> bool:
        """Make everything since the last commit durable; returns whether
        a commit record was written (no-change commits are free).

        ``meta`` rides along as an opaque pickled blob — the crash
        harness stores access-method state here so recovery can rebuild
        the method object next to its pages.
        """
        pool = self.pool
        if not (pool.dirty or pool.freed or self._pin_dirty or meta is not None):
            return False
        payloads: dict[int, bytes] = {}
        # Silent-mutation scan: any page handed out since the last commit
        # may have been mutated without a write(); re-serialise the clean
        # resident ones and promote drifted pages to dirty.
        for pid in pool.touched:
            frame = pool.frames.get(pid)
            if frame is None or frame.dirty:
                continue
            meta_entry = pool.pages.get(pid)
            if meta_entry is None:
                continue
            payload = _dumps(frame.obj)
            if (
                zlib.crc32(payload) != meta_entry.crc
                or len(payload) != meta_entry.length
            ):
                pool.silent_dirty += 1
                pool.mark_dirty(pid)
                payloads[pid] = payload
        self._last_commit_pages = sorted(pool.dirty | pool.freed)
        for pid in sorted(pool.dirty):
            payload = payloads.get(pid)
            if payload is None:
                payload = _dumps(pool.frames[pid].obj)
            if len(payload) > self._pagefile.payload_capacity:
                raise PageOverflowError(
                    f"page {pid}: pickled payload of {len(payload)} bytes "
                    f"exceeds the slot capacity "
                    f"{self._pagefile.payload_capacity}; reopen with a "
                    f"larger slot_size"
                )
            kind = self._kinds[pid]
            self._wal_append("page", pid, kind.value, payload)
            entry = pool.pages[pid]
            entry.kind = kind
            entry.crc = zlib.crc32(payload)
            entry.length = len(payload)
            entry.on_disk = False
            entry.durable = True
        for pid in sorted(pool.freed):
            self._wal_append("free", pid)
        if meta is not None:
            self._wal_append("meta", _dumps(meta))
            self.meta_blob = meta
        self._wal.commit(self._next_id, self._pinned, fsync=self.fsync_on_commit)
        for pid in pool.dirty:
            pool.frames[pid].dirty = False
        pool.dirty.clear()
        pool.freed.clear()
        pool.touched.clear()
        self._pin_dirty = False
        self.commits += 1
        if (
            not self._in_checkpoint
            and self._wal.size >= self.wal_checkpoint_bytes
        ):
            self.checkpoint()
        return True

    def checkpoint(self) -> None:
        """Flush everything to the page file, rewrite the sidecar, reset
        the WAL.  After a checkpoint the WAL is empty and every live
        page's slot holds its committed image."""
        telem = self._telemetry
        if telem is None:
            self._checkpoint_inner()
            return
        wal_before = self._wal.stats()
        io_before = telem.io_counts()
        # Every resident page whose slot image is stale (dirty or
        # WAL-only) is what this checkpoint will push to the page file.
        stale = [
            pid
            for pid in self.pool.frames
            if not self.pool.pages[pid].on_disk
        ]
        start = time.perf_counter()
        self._checkpoint_inner()
        seconds = time.perf_counter() - start
        telem.observe("storage.checkpoint_seconds", seconds)
        telem.maybe_slow_op(
            "checkpoint",
            seconds,
            pages=stale,
            io=self._io_breakdown(wal_before, io_before),
        )

    def _checkpoint_inner(self) -> None:
        self._in_checkpoint = True
        try:
            self.commit()
            self.pool.flush_to_slots()
            self._pagefile.fsync()
            self._write_sidecar()
            self._wal.reset()
            self.checkpoints += 1
        finally:
            self._in_checkpoint = False

    def close(self) -> None:
        """Checkpoint and release the file handles."""
        if self._closed:
            return
        self.checkpoint()
        self._wal.close()
        self._pagefile.close()
        self._closed = True

    def __enter__(self) -> "DiskPageStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __reduce__(self):
        raise TypeError(
            "DiskPageStore holds open file handles and cannot be pickled; "
            "use export_snapshot() for a durable copy"
        )

    # -- sidecar and recovery ----------------------------------------------

    def _sidecar_document(self) -> bytes:
        pool = self.pool
        pages = {}
        for pid, entry in pool.pages.items():
            if not entry.durable:
                continue  # never committed: invisible to recovery, like the WAL
            pages[str(pid)] = [entry.kind.value, entry.crc, entry.length]
        doc = {
            "format": META_FORMAT,
            "page_size": self.page_size,
            "slot_size": self._pagefile.slot_size,
            "next_id": self._next_id,
            "pinned": sorted(self._pinned),
            "pages": pages,
            "meta": (
                base64.b64encode(_dumps(self.meta_blob)).decode("ascii")
                if self.meta_blob is not None
                else None
            ),
        }
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    def _write_sidecar(self) -> None:
        tmp = self._meta_path.with_suffix(".meta.tmp")
        self.io.remove(tmp)
        handle = self.io.open(tmp)
        try:
            payload = self._sidecar_document()
            handle.pwrite(payload, 0)
            handle.truncate(len(payload))
            handle.fsync()
        finally:
            handle.close()
        self.io.replace(tmp, self._meta_path)

    def _recover(self) -> None:
        handle = self.io.open(self._meta_path)
        try:
            raw = handle.pread(handle.size(), 0)
        finally:
            handle.close()
        doc = json.loads(raw.decode("utf-8"))
        if doc.get("format") != META_FORMAT:
            raise CorruptionError(f"{self._meta_path}: unknown sidecar format")
        if doc["page_size"] != self.page_size:
            raise ValueError(
                f"{self.path}: store was created with page_size="
                f"{doc['page_size']}, not {self.page_size}"
            )
        pool = self.pool
        for pid_str, (kind_value, crc, length) in doc["pages"].items():
            pid = int(pid_str)
            entry = _PageMeta()
            entry.kind = PageKind(kind_value)
            entry.crc = crc
            entry.length = length
            entry.on_disk = True
            entry.durable = True
            pool.pages[pid] = entry
            self._kinds[pid] = entry.kind
        self._next_id = doc["next_id"]
        self._pinned = set(doc["pinned"])
        if doc.get("meta"):
            self.meta_blob = pickle.loads(base64.b64decode(doc["meta"]))

        committed, commit_end, torn = self._wal.replay()
        self.recovered_torn_tail = torn
        for record in committed:
            if record.kind == "page":
                pid, kind_value, payload = record.fields
                kind = PageKind(kind_value)
                entry = pool.pages.get(pid)
                if entry is None:
                    entry = _PageMeta()
                    pool.pages[pid] = entry
                entry.kind = kind
                entry.crc = self._pagefile.write_slot(pid, kind, payload)
                entry.length = len(payload)
                entry.on_disk = True
                entry.durable = True
                self._kinds[pid] = kind
            elif record.kind == "free":
                (pid,) = record.fields
                pool.pages.pop(pid, None)
                self._kinds.pop(pid, None)
            elif record.kind == "meta":
                (blob,) = record.fields
                self.meta_blob = pickle.loads(blob)
            elif record.kind == "commit":
                next_id, pinned = record.fields
                self._next_id = next_id
                self._pinned = set(pinned)
        self._wal.truncate_to(commit_end)
        # End recovery at a checkpoint: page file current and durable,
        # sidecar rewritten, WAL empty.
        self._pagefile.fsync()
        self._write_sidecar()
        self._wal.reset()
        # Pinned pages are resident by invariant; fault them in without
        # touching the access statistics (nothing is charged yet anyway).
        for pid in sorted(self._pinned):
            if pid in pool.pages and pid not in pool.frames:
                pool._admit(pid, pool._load(pid), dirty=False)
        self.recovered = True

    # -- snapshot export -----------------------------------------------------

    def export_snapshot(self, dest: str | Path) -> Path:
        """Checkpoint, then atomically copy the store into ``dest``.

        The copy (page file + sidecar) is a complete, WAL-free store: a
        ``DiskPageStore(dest)`` opens it read-write as of this moment.
        """
        self.checkpoint()
        dest = Path(dest)
        dest.mkdir(parents=True, exist_ok=True)
        for name, payload in (
            ("pages.dat", self._pagefile.read_raw()),
            ("store.meta", self._sidecar_document()),
        ):
            tmp = dest / (name + ".tmp")
            self.io.remove(tmp)
            handle = self.io.open(tmp)
            try:
                handle.pwrite(payload, 0)
                handle.truncate(len(payload))
                handle.fsync()
            finally:
                handle.close()
            self.io.replace(tmp, dest / name)
        return dest

    # -- observability -------------------------------------------------------

    def io_stats(self) -> dict:
        """Physical-IO counters for reports and the ledger (additive to
        the charged :class:`AccessStats`, never a substitute).

        The core keys are pinned by
        :func:`repro.obs.telemetry.validate_io_stats`.
        ``write_amplification`` — total physical bytes written (WAL plus
        page-file) over the live committed payload bytes — is always
        present and deterministic for a deterministic workload; the
        ``latency`` summaries and ``slow_ops`` count are additive and
        appear only when telemetry is attached.
        """
        pool = self.pool
        live_bytes = sum(
            entry.length for entry in pool.pages.values() if entry.durable
        )
        wal_stats = self._wal.stats()
        physical = wal_stats["bytes"] + self._pagefile.bytes_written
        out = {
            "backend": "disk",
            "pool": {**pool.stats(), "hit_rate": round(pool.hit_rate, 6)},
            "wal": wal_stats,
            "pagefile": self._pagefile.stats(),
            "commits": self.commits,
            "checkpoints": self.checkpoints,
            "write_amplification": round(physical / live_bytes, 4)
            if live_bytes
            else 0.0,
        }
        telem = self._telemetry
        if telem is not None:
            out["latency"] = {
                name: summary
                for name, summary in telem.latency_summaries().items()
                if name.startswith("storage.")
            }
            out["slow_ops"] = len(telem.slow_ops)
        return out


# -- access-method persistence helpers ---------------------------------------


def snapshot_method(method) -> dict:
    """A picklable snapshot of an access method's non-store state.

    Access methods keep only value state (pids, counters, capacities,
    in-core scales) outside the page store, so stripping the ``store``
    attribute leaves a plain picklable dict.  Store it via
    ``DiskPageStore.commit(meta=...)`` and rebuild with
    :func:`restore_method` after recovery.
    """
    state = {k: v for k, v in method.__dict__.items() if k != "store"}
    return {
        "class": type(method),
        "state": state,
        # Store-level configuration the method's constructor applied:
        # the constructor is bypassed on restore, so it must ride along
        # (the 2-level grid file buffers 2 pages, not the default 6).
        "path_buffer_limit": method.store.path_buffer_limit,
    }


def restore_method(store: PageStore, blob: dict):
    """Rebuild an access method from :func:`snapshot_method` output."""
    method = blob["class"].__new__(blob["class"])
    method.__dict__.update(blob["state"])
    method.store = store
    limit = blob.get("path_buffer_limit")
    if limit is not None:
        store.path_buffer_limit = limit
    return method
