"""Capacity arithmetic for 512-byte pages.

Section 3 of the paper fixes the page size for data *and* directory
pages at 512 bytes ("the lower end of realistic page sizes") and argues
that small pages make the measured behaviour representative of much
larger files.  All capacities in this package are derived from the byte
sizes below rather than hard-coded, so experiments with other page sizes
(see the page-size ablation bench) stay consistent.
"""

from __future__ import annotations

__all__ = [
    "PAGE_SIZE",
    "PAGE_HEADER",
    "POINTER_SIZE",
    "COORD_SIZE",
    "point_record_size",
    "rect_record_size",
    "data_page_capacity",
    "directory_page_payload",
]

#: Default page size in bytes, per §3 of the paper.
PAGE_SIZE = 512

#: Bytes reserved per page for bookkeeping (kind, count, sibling links).
PAGE_HEADER = 12

#: Size of a page or record pointer.
POINTER_SIZE = 4

#: Size of one stored coordinate.  The original Modula-2 implementations
#: stored 4-byte REALs; this is what makes the paper's directory/data
#: ratios (2–4 directory pages per 100 data pages) come out: a 2-d point
#: record is 12 bytes (41 per page) and a rectangle directory entry 20
#: bytes (25 per page).
COORD_SIZE = 4


def point_record_size(dims: int) -> int:
    """Bytes of a point record: ``dims`` coordinates plus a record pointer."""
    return dims * COORD_SIZE + POINTER_SIZE


def rect_record_size(dims: int) -> int:
    """Bytes of a rectangle record: two corners plus a record pointer."""
    return 2 * dims * COORD_SIZE + POINTER_SIZE


def data_page_capacity(record_size: int, page_size: int = PAGE_SIZE) -> int:
    """How many records of ``record_size`` bytes fit on one data page."""
    capacity = (page_size - PAGE_HEADER) // record_size
    if capacity < 2:
        raise ValueError(
            f"record of {record_size} bytes leaves capacity {capacity} "
            f"on a {page_size}-byte page; pages must hold at least 2 records"
        )
    return capacity


def directory_page_payload(page_size: int = PAGE_SIZE) -> int:
    """Bytes available for directory entries on one directory page."""
    return page_size - PAGE_HEADER
