"""Struct-of-arrays page payloads.

A :class:`SoAList` is the canonical container for a page's entries: it
keeps the per-page columnar views — the fused NumPy arrays the vectorized
scan and traversal layers consume (:mod:`repro.query.scan`,
:mod:`repro.query.traverse`) — *on the page itself*, instead of in a
pid-keyed side cache.  Two consequences:

* **No side-cache probes.**  A page visit reaches its fused array through
  one attribute access and one dict lookup, with no per-store dictionary
  keyed by page id in the hot path.

* **Per-array invalidation.**  Every mutating list method drops only the
  views of *this* container.  A page that carries several containers (a
  BANG leaf holds its entry list and its data pages hold record lists)
  keeps the directory-bounds arrays intact when a record list changes —
  previously any write rebuilt the whole page's arrays.

Python row objects (``(point, rid)`` / ``(rect, rid)`` tuples) remain
reachable through the ordinary list interface, which is what the scalar
kill-switch path (``REPRO_VECTOR=0``), the auditors, explain and snapshot
walks iterate; the fused arrays are the representation the vectorized
read path actually evaluates.

In-place mutation of *held objects* (e.g. rebinding ``entry.mbr`` on a
BANG directory entry) cannot be observed by the container; such sites
must call :meth:`SoAList.touch` for the affected view tags.  A length
guard in :meth:`SoAList.view` additionally rebuilds a view whose row
count drifted from the container, so a missed length-changing mutation
degrades to a rebuild, never to a stale verdict.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

__all__ = [
    "SoAList",
    "soa_field",
    "fused_points",
    "fused_cover_values",
    "fused_anti_values",
    "fused_cover_boxes",
    "fused_anti_boxes",
]


class SoAList(list):
    """A list of page entries carrying canonical columnar views.

    Views are keyed by tag (``"pts"``, ``"entries:cover"``, …) and built
    on first use by a caller-supplied function of the container; every
    mutating list method invalidates them.  The container pickles as a
    plain reconstruction from its items, so build-cache entries never
    carry derived arrays.
    """

    __slots__ = ("_views",)

    def __init__(self, items: Iterable = ()):
        super().__init__(items)
        self._views: "dict[str, tuple[int, Any]] | None" = None

    # -- columnar views ---------------------------------------------------

    def view(self, tag: str, build: Callable[["SoAList"], Any]) -> Any:
        """The cached view for ``tag``, (re)built when absent or drifted."""
        views = self._views
        if views is None:
            views = self._views = {}
        n = list.__len__(self)
        entry = views.get(tag)
        if entry is not None and entry[0] == n:
            return entry[1]
        arr = build(self)
        views[tag] = (n, arr)
        return arr

    def touch(self, tag: "str | None" = None) -> None:
        """Drop cached views after an in-place mutation of a held object.

        With a ``tag``, only that view is dropped — the per-array
        invalidation that lets unrelated views survive.
        """
        views = self._views
        if views:
            if tag is None:
                views.clear()
            else:
                views.pop(tag, None)

    @property
    def view_builds(self) -> int:
        """How many views are currently materialised (for tests)."""
        return len(self._views) if self._views else 0

    # -- pickling ---------------------------------------------------------

    def __reduce__(self):
        return (type(self), (list(self),))

    # -- mutators (each invalidates this container's views only) ----------

    def append(self, item):
        if self._views:
            self._views.clear()
        list.append(self, item)

    def extend(self, items):
        if self._views:
            self._views.clear()
        list.extend(self, items)

    def insert(self, index, item):
        if self._views:
            self._views.clear()
        list.insert(self, index, item)

    def remove(self, item):
        if self._views:
            self._views.clear()
        list.remove(self, item)

    def pop(self, index=-1):
        if self._views:
            self._views.clear()
        return list.pop(self, index)

    def clear(self):
        if self._views:
            self._views.clear()
        list.clear(self)

    def sort(self, **kwargs):
        if self._views:
            self._views.clear()
        list.sort(self, **kwargs)

    def reverse(self):
        if self._views:
            self._views.clear()
        list.reverse(self)

    def __setitem__(self, index, value):
        if self._views:
            self._views.clear()
        list.__setitem__(self, index, value)

    def __delitem__(self, index):
        if self._views:
            self._views.clear()
        list.__delitem__(self, index)

    def __iadd__(self, other):
        if self._views:
            self._views.clear()
        return list.__iadd__(self, other)

    def __imul__(self, factor):
        if self._views:
            self._views.clear()
        return list.__imul__(self, factor)


class soa_field:
    """A descriptor that keeps a page attribute a :class:`SoAList`.

    Page classes declare ``records = soa_field()`` (with the backing slot
    added to ``__slots__`` automatically via ``__set_name__`` convention:
    the slot is the public name prefixed with an underscore).  Every
    assignment — including rebinds of plain lists produced by slicing or
    comprehensions in split paths — is wrapped into a fresh container, so
    mutation sites cannot accidentally strip the columnar views.
    """

    __slots__ = ("_slot", "_get", "_set")

    def __set_name__(self, owner, name: str) -> None:
        self._slot = "_soa_" + name
        # Slotted owners expose the backing member descriptor on the class
        # the moment type() creates it; binding its raw __get__/__set__
        # here spares every access a getattr/setattr name lookup.
        member = owner.__dict__.get(self._slot)
        if member is not None:
            self._get = member.__get__
            self._set = member.__set__
        else:
            self._get = None
            self._set = None

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        get = self._get
        if get is not None:
            return get(obj)
        return getattr(obj, self._slot)

    def __set__(self, obj, value) -> None:
        if type(value) is not SoAList:
            value = SoAList(value)
        set_ = self._set
        if set_ is not None:
            set_(obj, value)
        else:
            setattr(obj, self._slot, value)


# -- view builders -----------------------------------------------------------
#
# The fused encodings mirror repro.geometry.kernels: every predicate is one
# ``fused <= qvec`` comparison.  Builders take the container so SoAList.view
# can call them without closures.


def fused_points(lst: "SoAList") -> np.ndarray:
    """``[-p, p]`` rows for a container of ``(point, rid)`` records."""
    pts = np.array([rec[0] for rec in lst], dtype=float)
    return np.concatenate([-pts, pts], axis=1)


def fused_cover_values(lst: "SoAList") -> np.ndarray:
    """``[lo, -hi]`` rows for ``(rect, payload)`` pairs (isect/encl)."""
    lo = np.array([v[0].lo for v in lst], dtype=float)
    hi = np.array([v[0].hi for v in lst], dtype=float)
    return np.concatenate([lo, -hi], axis=1)


def fused_anti_values(lst: "SoAList") -> np.ndarray:
    """``[-lo, hi]`` rows for ``(rect, payload)`` pairs (containment)."""
    lo = np.array([v[0].lo for v in lst], dtype=float)
    hi = np.array([v[0].hi for v in lst], dtype=float)
    return np.concatenate([-lo, hi], axis=1)


def fused_cover_boxes(lst: "SoAList") -> np.ndarray:
    """``[lo, -hi]`` rows for a container of :class:`Rect` (isect/encl)."""
    lo = np.array([r.lo for r in lst], dtype=float)
    hi = np.array([r.hi for r in lst], dtype=float)
    return np.concatenate([lo, -hi], axis=1)


def fused_anti_boxes(lst: "SoAList") -> np.ndarray:
    """``[-lo, hi]`` rows for a container of :class:`Rect` (containment)."""
    lo = np.array([r.lo for r in lst], dtype=float)
    hi = np.array([r.hi for r in lst], dtype=float)
    return np.concatenate([-lo, hi], axis=1)
