"""``python -m repro.storage.bench`` — larger-than-pool durable-backend bench.

Builds representative structures at a scale whose page count dwarfs the
buffer pool (default: the pool holds 10% of the final page count), runs
the full §3/§7 query workload on both backends, and

* verifies the durable backend is **bit-identical** to the simulated
  store — same per-query disk-access counts, same per-query results,
  same total :class:`~repro.core.stats.AccessStats`;
* reports wall-clock build/query times for both, plus the physical-IO
  profile of the disk run (pool hit rate, evictions, WAL bytes, page
  file reads/writes);
* writes ``results/BENCH_STORAGE.json`` and, when a ledger is active
  (``--ledger`` / ``REPRO_LEDGER``), records the disk-backend timings
  under source ``storage-bench`` so the CI regression gate tracks the
  out-of-core path like any other hot path;
* with ``--telemetry`` (or ``REPRO_TELEMETRY=1``), runs the whole bench
  under a :mod:`repro.obs.telemetry` flight recorder: the disk phase's
  per-call IO latencies land in histograms (the ``storage`` block of
  every record then carries fsync/pread/pwrite percentiles), a
  validated timeline JSONL and a Prometheus text export are written
  next to the bench JSON, and any slow operations
  (``REPRO_SLOW_OP_MS``) are saved as their own log.  The ledger entry
  gains the deterministic physical-IO totals and gated fsync
  percentile leaves, fingerprinted as a disk-backend run.

Usage::

    PYTHONPATH=src python -m repro.storage.bench --scale 20000
    PYTHONPATH=src python -m repro.storage.bench --scale 100000 --pool-frac 0.1
    PYTHONPATH=src python -m repro.storage.bench --scale 20000 --telemetry
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.query.bench import _run_workload, results_dir
from repro.storage.factory import make_store
from repro.verify.fuzz import STRUCTURES, _point_pool, _rect_pool

__all__ = ["BENCH_SCHEMA", "DEFAULT_STRUCTURES", "bench_structure", "main"]

BENCH_SCHEMA = "repro.storage/bench/v1"

#: One tree SAM and one hashing PAM: different page populations, both
#: representative of how the comparison driver touches the store.
DEFAULT_STRUCTURES = ("R", "GRID")


def _build(spec: dict, data, store) -> object:
    method = spec["factory"](store)
    for rid, item in enumerate(data):
        method.insert(item, rid)
    return method


def bench_structure(
    name: str,
    scale: int,
    *,
    seed: int,
    pool_frac: float,
    page_size: int,
    fsync: bool,
    directory: str | None,
) -> dict:
    """One sim-vs-disk identity-checked timing run; returns the record."""
    spec = STRUCTURES[name]
    data = (
        _point_pool(scale, seed) if spec["kind"] == "pam" else _rect_pool(scale, seed)
    )
    data = data[:scale]

    sim = make_store(page_size, backend="sim")
    t0 = time.perf_counter()
    method = _build(spec, data, sim)
    sim_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    sim_outcomes = _run_workload(method, spec["kind"])
    sim_query = time.perf_counter() - t0
    sim_stats = sim.stats.as_dict()
    total_pages = len(sim.page_ids())

    pool_pages = max(8, int(total_pages * pool_frac))
    disk = make_store(
        page_size,
        backend="disk",
        directory=directory,
        pool_pages=pool_pages,
        fsync=fsync,
    )
    t0 = time.perf_counter()
    method = _build(spec, data, disk)
    disk_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    disk_outcomes = _run_workload(method, spec["kind"])
    disk_query = time.perf_counter() - t0
    disk_stats = disk.stats.as_dict()
    io = disk.io_stats()
    disk.close()

    identical = sim_stats == disk_stats and sim_outcomes == disk_outcomes
    return {
        "structure": name,
        "kind": spec["kind"],
        "scale": len(data),
        "page_size": page_size,
        "pages": total_pages,
        "pool_pages": pool_pages,
        "fsync": fsync,
        "identical": identical,
        "totals": disk_stats,
        "sim": {"build_seconds": sim_build, "query_seconds": sim_query},
        "disk": {"build_seconds": disk_build, "query_seconds": disk_query},
        "storage": io,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.bench",
        description="Larger-than-pool durable-backend identity + timing bench.",
    )
    parser.add_argument("--scale", type=int, default=20000, help="records")
    parser.add_argument("--seed", type=int, default=7, help="data seed")
    parser.add_argument(
        "--pool-frac",
        type=float,
        default=0.1,
        help="buffer pool budget as a fraction of the built page count",
    )
    parser.add_argument("--page-size", type=int, default=512)
    parser.add_argument(
        "--structures",
        default=",".join(DEFAULT_STRUCTURES),
        help="comma-separated fuzz-matrix structure names",
    )
    parser.add_argument(
        "--fsync",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="fsync WAL commits (--no-fsync measures pure CPU/pool cost)",
    )
    parser.add_argument(
        "--store-dir", default=None, help="keep store files here (default: tmp)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: results/BENCH_STORAGE.json)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="ledger destination (1/0/path; default: REPRO_LEDGER)",
    )
    parser.add_argument(
        "--telemetry",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="record IO latency histograms + a flight-recorder timeline "
        "(default: REPRO_TELEMETRY)",
    )
    parser.add_argument(
        "--timeline",
        default=None,
        help="timeline JSONL path (default: results/TELEMETRY_STORAGE.jsonl)",
    )
    parser.add_argument(
        "--prometheus",
        default=None,
        help="Prometheus text export path "
        "(default: results/METRICS_STORAGE.prom)",
    )
    parser.add_argument(
        "--slow-ops",
        default=None,
        help="slow-operation log path "
        "(default: results/SLOW_OPS_STORAGE.jsonl, written when non-empty)",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=0.25,
        help="flight-recorder sampling interval in seconds",
    )
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.structures.split(",") if n.strip()]
    unknown = [n for n in names if n not in STRUCTURES]
    if unknown:
        parser.error(f"unknown structures {unknown}; choose from {sorted(STRUCTURES)}")

    from repro.obs.telemetry import telemetry_enabled

    telemetry_on = (
        args.telemetry if args.telemetry is not None else telemetry_enabled()
    )
    telem = flight = None
    if telemetry_on:
        from repro.obs.telemetry import FlightRecorder, Telemetry, set_telemetry

        telem = Telemetry(label="storage-bench")
        set_telemetry(telem)  # make_store attaches it to every disk store
        timeline_path = (
            Path(args.timeline)
            if args.timeline
            else results_dir() / "TELEMETRY_STORAGE.jsonl"
        )
        flight = FlightRecorder(
            telem,
            timeline_path,
            interval_seconds=args.sample_interval,
            label="storage-bench",
        ).start()

    records = []
    failures = 0
    for name in names:
        record = bench_structure(
            name,
            args.scale,
            seed=args.seed,
            pool_frac=args.pool_frac,
            page_size=args.page_size,
            fsync=args.fsync,
            directory=args.store_dir,
        )
        records.append(record)
        pool = record["storage"]["pool"]
        flag = "ok " if record["identical"] else "DIVERGED"
        print(
            f"{name:8s} {flag} scale={record['scale']} pages={record['pages']} "
            f"pool={record['pool_pages']} hit_rate={pool['hit_rate']:.3f} "
            f"build {record['sim']['build_seconds']:.2f}s sim / "
            f"{record['disk']['build_seconds']:.2f}s disk, "
            f"queries {record['sim']['query_seconds']:.2f}s sim / "
            f"{record['disk']['query_seconds']:.2f}s disk"
        )
        if not record["identical"]:
            failures += 1

    payload = {
        "schema": BENCH_SCHEMA,
        "scale": args.scale,
        "page_size": args.page_size,
        "pool_frac": args.pool_frac,
        "seed": args.seed,
        "structures": records,
    }
    out = Path(args.out) if args.out else results_dir() / "BENCH_STORAGE.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    fsync_summary = None
    if flight is not None:
        from repro.obs.telemetry import (
            set_telemetry,
            validate_timeline,
            write_prometheus,
        )

        flight.stop()
        problems = validate_timeline(flight.path)
        if problems:
            failures += 1
            print(f"timeline {flight.path} INVALID: {'; '.join(problems)}")
        else:
            print(
                f"wrote {flight.path} ({flight.samples_written} samples, OK)"
            )
        prom = write_prometheus(
            telem,
            Path(args.prometheus)
            if args.prometheus
            else results_dir() / "METRICS_STORAGE.prom",
        )
        print(f"wrote {prom}")
        if telem.slow_ops or args.slow_ops:
            slow = telem.save_slow_ops(
                Path(args.slow_ops)
                if args.slow_ops
                else results_dir() / "SLOW_OPS_STORAGE.jsonl"
            )
            print(f"wrote {slow} ({len(telem.slow_ops)} slow ops)")
        fsync_summary = telem.latency_summaries().get("storage.io.fsync_seconds")
        if fsync_summary and fsync_summary["count"]:
            print(
                f"fsync    count={fsync_summary['count']} "
                f"p50={fsync_summary['p50'] * 1e3:.3f}ms "
                f"p99={fsync_summary['p99'] * 1e3:.3f}ms "
                f"max={fsync_summary['max'] * 1e3:.3f}ms"
            )
        set_telemetry(None)

    from repro.obs.ledger import (
        collect_fingerprint,
        entry_from_timers,
        resolve_ledger,
        storage_io_totals,
    )

    ledger = resolve_ledger(args.ledger)
    if ledger is not None and not failures:
        timers = {}
        totals = {}
        for record in records:
            timers[f"{record['structure']}/build"] = record["disk"]["build_seconds"]
            timers[f"{record['structure']}/queries"] = record["disk"]["query_seconds"]
            totals[record["structure"]] = {
                **record["totals"],
                "storage_io": storage_io_totals(record["storage"]),
            }
        entry = entry_from_timers(
            label="storage-disk",
            source="storage-bench",
            kind="storage",
            timers=timers,
            totals=totals,
            page_size=args.page_size,
            scale=args.scale,
            seed=args.seed,
            fingerprint=collect_fingerprint(
                page_size=args.page_size,
                scale=args.scale,
                seed=args.seed,
                storage={
                    "backend": "disk",
                    "pool_frac": args.pool_frac,
                    "fsync": bool(args.fsync),
                },
            ),
            meta={
                "pool_frac": args.pool_frac,
                "fsync": args.fsync,
                "storage": {r["structure"]: r["storage"] for r in records},
            },
        )
        # The fsync distribution is process-wide (all stores share the
        # telemetry), so it lands as top-level gated leaves rather than
        # per-structure ones.
        if fsync_summary and fsync_summary["count"]:
            entry.metrics["fsync_p50_seconds"] = fsync_summary["p50"]
            entry.metrics["fsync_p99_seconds"] = fsync_summary["p99"]
        ledger.record(entry)
        print(f"ledger: recorded {entry.run_id} to {ledger.path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
