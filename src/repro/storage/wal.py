"""Write-ahead log: length+CRC framed records, redo-only recovery.

The durable store (:mod:`repro.storage.disk`) logs every committed
change here *before* it may touch the page file.  The log is a single
append-only file of framed records::

    +--------+-----------------+----------------+
    | header | record frame    | record frame   | ...
    +--------+-----------------+----------------+

    header = b"RWAL" + u32 version
    frame  = u32 payload_len | u32 crc32(payload) | payload

Payloads are pickled tuples; four record types exist:

* ``("page", pid, kind, payload_bytes)`` — a full after-image of one
  page (pages are small, so physical full-page logging beats logical
  deltas in both simplicity and redo idempotence);
* ``("free", pid)`` — the page was released;
* ``("meta", blob)`` — an opaque application blob (the crash harness
  stores pickled access-method state here);
* ``("commit", next_id, pinned)`` — a commit boundary carrying the
  store's allocation cursor and pinned-page set.

Recovery (:meth:`WriteAheadLog.replay`) is redo-only: scan frames in
order, buffer each group until its ``commit`` record, apply only
complete groups, and stop at the first torn frame — a short header, a
length pointing past EOF, or a CRC mismatch.  Everything from the last
commit boundary onward is then truncated, so a torn tail can never
resurrect a half-written transaction.  Full-page redo is idempotent,
which is what makes "replay over whatever the page file holds" safe.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.storage.io import FileHandle, IOProvider, OsFileIO

__all__ = ["WalRecord", "WriteAheadLog", "WAL_MAGIC", "WAL_VERSION"]

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
_HEADER = struct.Struct("<4sI")
_FRAME = struct.Struct("<II")

#: Upper bound on a single record payload; a frame whose length field
#: exceeds it is treated as torn rather than attempted (a corrupted
#: length of, say, 3 GiB must not trigger a 3 GiB read).
_MAX_PAYLOAD = 1 << 28


class WalRecord:
    """One decoded record plus the file offset just past its frame."""

    __slots__ = ("kind", "fields", "end_offset")

    def __init__(self, kind: str, fields: tuple, end_offset: int):
        self.kind = kind
        self.fields = fields
        self.end_offset = end_offset


class WriteAheadLog:
    """Append-only framed log over a :class:`~repro.storage.io.FileHandle`."""

    def __init__(self, path: str | Path, io: IOProvider | None = None):
        self.path = Path(path)
        self.io = io if io is not None else OsFileIO()
        existed = self.io.exists(self.path)
        self._fh: FileHandle = self.io.open(self.path)
        #: Where the next frame goes (end of the valid log).
        self._end = 0
        #: End offset of the last durable commit record.
        self.committed_end = 0
        self.records_written = 0
        self.commits = 0
        self.bytes_written = 0
        if not existed or self._fh.size() == 0:
            self._write_header()
        else:
            self._end = self._fh.size()

    # -- appending ---------------------------------------------------------

    def _write_header(self) -> None:
        header = _HEADER.pack(WAL_MAGIC, WAL_VERSION)
        self._fh.pwrite(header, 0)
        self._end = len(header)
        self.committed_end = self._end

    def append(self, kind: str, *fields: Any) -> None:
        """Frame and append one record (not yet durable)."""
        payload = pickle.dumps((kind, *fields), protocol=4)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._fh.pwrite(frame, self._end)
        self._end += len(frame)
        self.records_written += 1
        self.bytes_written += len(frame)

    def commit(self, next_id: int, pinned: Iterable[int], fsync: bool = True) -> None:
        """Append the commit boundary and (optionally) make it durable."""
        self.append("commit", next_id, sorted(pinned))
        if fsync:
            self._fh.fsync()
        self.committed_end = self._end
        self.commits += 1

    @property
    def size(self) -> int:
        """Bytes of valid log, including the header."""
        return self._end

    # -- replay ------------------------------------------------------------

    def replay(self) -> tuple[list[WalRecord], int, bool]:
        """Scan the log; return ``(committed_records, end, torn)``.

        ``committed_records`` contains every record up to and including
        the last valid ``commit``; records after it (a torn or simply
        uncommitted tail) are dropped.  ``end`` is the file offset just
        past the last commit — the caller truncates there.  ``torn``
        reports whether the scan stopped early on a damaged frame, as
        opposed to a clean EOF.
        """
        file_size = self._fh.size()
        header = self._fh.pread(_HEADER.size, 0)
        if len(header) < _HEADER.size:
            return [], _HEADER.size, len(header) not in (0, _HEADER.size)
        magic, version = _HEADER.unpack(header)
        if magic != WAL_MAGIC or version != WAL_VERSION:
            raise ValueError(
                f"{self.path}: not a WAL file (magic {magic!r}, version {version})"
            )
        records: list[WalRecord] = []
        committed: list[WalRecord] = []
        commit_end = _HEADER.size
        offset = _HEADER.size
        torn = False
        while offset < file_size:
            frame_header = self._fh.pread(_FRAME.size, offset)
            if len(frame_header) < _FRAME.size:
                torn = True
                break
            length, crc = _FRAME.unpack(frame_header)
            if length > _MAX_PAYLOAD or offset + _FRAME.size + length > file_size:
                torn = True
                break
            payload = self._fh.pread(length, offset + _FRAME.size)
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn = True
                break
            try:
                decoded = pickle.loads(payload)
            except Exception:  # corrupted but CRC-colliding payloads
                torn = True
                break
            offset += _FRAME.size + length
            record = WalRecord(decoded[0], tuple(decoded[1:]), offset)
            records.append(record)
            if record.kind == "commit":
                committed.extend(records)
                records.clear()
                commit_end = offset
        self._end = file_size
        self.committed_end = commit_end
        return committed, commit_end, torn

    def truncate_to(self, offset: int) -> None:
        """Drop everything past ``offset`` (the torn / uncommitted tail)."""
        self._fh.truncate(offset)
        self._end = offset
        self.committed_end = min(self.committed_end, offset)

    def reset(self) -> None:
        """Empty the log after a checkpoint: header only, made durable."""
        self._fh.truncate(0)
        self._write_header()
        self._fh.fsync()

    def fsync(self) -> None:
        self._fh.fsync()

    def close(self) -> None:
        self._fh.close()

    def stats(self) -> dict[str, int]:
        return {
            "records": self.records_written,
            "commits": self.commits,
            "bytes": self.bytes_written,
            "size": self._end,
        }
