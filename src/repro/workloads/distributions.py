"""The seven point data files (F1)–(F7) of the PAM comparison (§3).

Every generator is deterministic in ``(n, seed)``, produces
duplicate-free 2-d points in the unit cube and preserves the paper's
*insertion order* characteristics: the cluster file inserts one cluster
at a time, and the cartography file arrives in quadtree partitioning
sequence — the two "sorted insertion" situations (C2 in §5) under which
GRID and BANG degrade while BUDDY stays robust.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.terrain import generate_cartography_points

__all__ = ["POINT_FILES", "generate_point_file"]

Point = tuple[float, ...]


def _dedupe_clip(points: np.ndarray) -> list[Point]:
    """Clip into [0, 1), drop duplicates, keep order."""
    clipped = np.clip(points, 0.0, np.nextafter(1.0, 0.0))
    seen: set[Point] = set()
    out: list[Point] = []
    for row in clipped:
        p = (float(row[0]), float(row[1]))
        if p not in seen:
            seen.add(p)
            out.append(p)
    return out


def _fill(generator, n: int, rng: np.random.Generator) -> list[Point]:
    """Draw from ``generator`` until ``n`` distinct in-cube points exist."""
    out: list[Point] = []
    seen: set[Point] = set()
    while len(out) < n:
        for p in _dedupe_clip(generator(max(n - len(out), 16), rng)):
            if p not in seen:
                seen.add(p)
                out.append(p)
                if len(out) == n:
                    break
    return out


def diagonal(n: int, seed: int = 1) -> list[Point]:
    """(F1) uniform on the main diagonal."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, k)
        return np.column_stack([u, u])

    return _fill(draw, n, rng)


def sinus(n: int, seed: int = 2) -> list[Point]:
    """(F2) x uniform, y Gaussian around ``sin(x)`` (σ = 0.1)."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> np.ndarray:
        x = rng.uniform(0.0, 1.0, k)
        y = rng.normal(np.sin(x), 0.1)
        keep = (y >= 0.0) & (y < 1.0)
        return np.column_stack([x[keep], y[keep]])

    return _fill(draw, n, rng)


def bit_distribution(n: int, seed: int = 3, z: float = 0.15, bits: int = 20) -> list[Point]:
    """(F3) each coordinate bit is 1 with probability ``z`` (bit(0.15))."""
    rng = np.random.default_rng(seed)
    weights = 2.0 ** -(np.arange(1, bits + 1))

    def draw(k: int, rng: np.random.Generator) -> np.ndarray:
        bx = rng.random((k, bits)) < z
        by = rng.random((k, bits)) < z
        return np.column_stack([bx @ weights, by @ weights])

    return _fill(draw, n, rng)


def x_parallel(n: int, seed: int = 4) -> list[Point]:
    """(F4) x uniform, y ~ N(0.5, 0.01)."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> np.ndarray:
        x = rng.uniform(0.0, 1.0, k)
        y = rng.normal(0.5, np.sqrt(0.01), k)
        keep = (y >= 0.0) & (y < 1.0)
        return np.column_stack([x[keep], y[keep]])

    return _fill(draw, n, rng)


def cluster_points(n: int, seed: int = 5, clusters: int = 10, sigma: float = 0.02) -> list[Point]:
    """(F5) Gaussian clusters, inserted one cluster after the other.

    "Almost all of the data occurs in a few relatively small cluster
    points" (§2): the blobs in figure 3.1 are tight, so the per-cluster
    standard deviation defaults to 0.02, leaving most of the data space
    empty — the situation that separates BUDDY (which never partitions
    empty space) from GRID and HB.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15, 0.85, (clusters, 2))
    per_cluster = [n // clusters] * clusters
    for i in range(n - sum(per_cluster)):
        per_cluster[i] += 1
    out: list[Point] = []
    seen: set[Point] = set()
    for center, quota in zip(centers, per_cluster):
        taken = 0
        while taken < quota:
            draw = rng.normal(center, sigma, (max(quota - taken, 16), 2))
            for p in _dedupe_clip(draw):
                if p not in seen:
                    seen.add(p)
                    out.append(p)
                    taken += 1
                    if taken == quota:
                        break
    return out


def uniform(n: int, seed: int = 6) -> list[Point]:
    """(F6) independent uniform."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, 1.0, (k, 2))

    return _fill(draw, n, rng)


def real_data(n: int, seed: int = 7) -> list[Point]:
    """(F7) cartography substitute: contour-line interpolation points.

    The paper's file holds 81 549 points for a nominal 100 000-record
    experiment; the same 0.81549 ratio is applied to ``n``.  Points
    arrive in quadtree partitioning sequence (Morton block order), the
    sorted-insertion property called out in §3.
    """
    count = max(1, round(n * 0.81549))
    return generate_cartography_points(count, seed=seed)


#: name -> generator, in the paper's (F1)–(F7) order.
POINT_FILES = {
    "diagonal": diagonal,
    "sinus": sinus,
    "bit": bit_distribution,
    "x_parallel": x_parallel,
    "cluster": cluster_points,
    "uniform": uniform,
    "real": real_data,
}


def generate_point_file(name: str, n: int, seed: int | None = None) -> list[Point]:
    """Generate the named data file with ``n`` nominal records."""
    if name not in POINT_FILES:
        raise KeyError(f"unknown point file {name!r}; choose from {sorted(POINT_FILES)}")
    if seed is None:
        return POINT_FILES[name](n)
    return POINT_FILES[name](n, seed)
