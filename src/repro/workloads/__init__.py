"""Workload generators: the paper's data and query files.

* :mod:`repro.workloads.distributions` — the seven 2-d point files
  (F1)–(F7) of the PAM comparison.
* :mod:`repro.workloads.rect_distributions` — the five rectangle files
  (F1)–(F5) of the SAM comparison.
* :mod:`repro.workloads.terrain` — the synthetic substitute for the
  paper's real cartography file (see DESIGN.md, substitutions).
* :mod:`repro.workloads.queries` — the query files: (RQ1)–(RQ3),
  (PMQ1)/(PMQ2) and the 160+20 rectangle-query workload of §7.
* :mod:`repro.workloads.files` — plain-text save/load so the testbed
  files can be exchanged, as the authors offer in the paper.
"""

from repro.workloads.distributions import POINT_FILES, generate_point_file
from repro.workloads.queries import (
    generate_partial_match_queries,
    generate_point_queries,
    generate_range_queries,
    generate_rect_query_workload,
)
from repro.workloads.rect_distributions import RECT_FILES, generate_rect_file

__all__ = [
    "POINT_FILES",
    "RECT_FILES",
    "generate_partial_match_queries",
    "generate_point_file",
    "generate_point_queries",
    "generate_range_queries",
    "generate_rect_file",
    "generate_rect_query_workload",
]
