"""Query file generators (§3 for points, §7 for rectangles).

Point query files per data file:

* (RQ1)–(RQ3): 20 square range queries of volume 0.1 %, 1 % and 10 %,
  centers uniform;
* (PMQ1)/(PMQ2): 20 partial-match queries specifying the x- (resp. y-)
  value, the other axis unspecified.

Rectangle query workload per data file (500 queries): 160 query
rectangles — 20 "square shaped" and 20 "slim" rectangles for each of
the sizes 0.1 %, 0.5 %, 1 % and 5 % — used for each of intersection,
enclosure and containment, plus 20 uniform point queries.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect

__all__ = [
    "RANGE_QUERY_VOLUMES",
    "RECT_QUERY_SIZES",
    "generate_range_queries",
    "generate_partial_match_queries",
    "generate_point_queries",
    "generate_query_rectangles",
    "generate_rect_query_workload",
]

#: The paper's three range-query volumes (fractions of the data space).
RANGE_QUERY_VOLUMES = (0.001, 0.01, 0.10)

#: The paper's four query-rectangle sizes for the SAM comparison.
RECT_QUERY_SIZES = (0.001, 0.005, 0.01, 0.05)


def generate_range_queries(
    volume: float, count: int = 20, seed: int = 101, dims: int = 2
) -> list[Rect]:
    """Square (hypercube) range queries of the given volume.

    Centers follow a uniform distribution; queries are clipped to the
    data space, as any implementation must.
    """
    rng = np.random.default_rng(seed + int(volume * 100000))
    side = volume ** (1.0 / dims)
    queries = []
    for _ in range(count):
        center = rng.uniform(0.0, 1.0, dims)
        lo = np.clip(center - side / 2, 0.0, 1.0)
        hi = np.clip(center + side / 2, 0.0, 1.0)
        queries.append(Rect(tuple(lo), tuple(hi)))
    return queries


def generate_partial_match_queries(
    axis: int, count: int = 20, seed: int = 103, dims: int = 2
) -> list[dict[int, float]]:
    """Partial-match queries: a uniform value on ``axis``, rest free."""
    rng = np.random.default_rng(seed + axis)
    return [{axis: float(rng.uniform(0.0, 1.0))} for _ in range(count)]


def generate_point_queries(
    count: int = 20, seed: int = 105, dims: int = 2
) -> list[tuple[float, ...]]:
    """Uniform point queries (for the SAM point-query type)."""
    rng = np.random.default_rng(seed)
    return [tuple(rng.uniform(0.0, 1.0, dims)) for _ in range(count)]


def generate_query_rectangles(
    size: float, shape: str, count: int = 20, seed: int = 107
) -> list[Rect]:
    """Query rectangles of one (size, shape) class per §7.

    ``shape`` is ``"square"`` (length uniform in ``[sqrt(size)/2,
    3*sqrt(size)/2]``) or ``"slim"`` (length uniform in
    ``[sqrt(size)/10, 19*sqrt(size)/10]``); the width is chosen so the
    area equals ``size``; centers are uniform.
    """
    if shape == "square":
        lo_f, hi_f = 0.5, 1.5
    elif shape == "slim":
        lo_f, hi_f = 0.1, 1.9
    else:
        raise ValueError(f"unknown shape {shape!r}")
    rng = np.random.default_rng(seed + int(size * 100000) + (0 if shape == "square" else 1))
    root = float(np.sqrt(size))
    queries = []
    for _ in range(count):
        length = float(rng.uniform(lo_f * root, hi_f * root))
        width = size / length
        center = rng.uniform(0.0, 1.0, 2)
        lo = np.clip(center - np.array([length, width]) / 2, 0.0, 1.0)
        hi = np.clip(center + np.array([length, width]) / 2, 0.0, 1.0)
        queries.append(Rect(tuple(lo), tuple(hi)))
    return queries


def generate_rect_query_workload(
    seed: int = 107, queries_per_class: int = 20
) -> dict[str, list]:
    """The full 500-query workload of §7 (scaled by ``queries_per_class``).

    Returns a dict with keys ``"rectangles"`` (the 160 query rectangles
    used by intersection, enclosure and containment) and ``"points"``
    (the 20 point queries).
    """
    rectangles: list[Rect] = []
    for size in RECT_QUERY_SIZES:
        for shape in ("square", "slim"):
            rectangles.extend(
                generate_query_rectangles(size, shape, queries_per_class, seed)
            )
    return {
        "rectangles": rectangles,
        "points": generate_point_queries(queries_per_class, seed + 999),
    }
