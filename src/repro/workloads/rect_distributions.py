"""The five rectangle data files (F1)–(F5) of the SAM comparison (§7).

Rectangles are characterised by their center and per-axis extension
from the center; everything is clipped into the unit cube, which some
of the compared SAMs require.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect

__all__ = ["RECT_FILES", "generate_rect_file"]


def _build(centers: np.ndarray, ext_x: np.ndarray, ext_y: np.ndarray) -> list[Rect]:
    lo_x = np.clip(centers[:, 0] - ext_x, 0.0, 1.0)
    hi_x = np.clip(centers[:, 0] + ext_x, 0.0, 1.0)
    lo_y = np.clip(centers[:, 1] - ext_y, 0.0, 1.0)
    hi_y = np.clip(centers[:, 1] + ext_y, 0.0, 1.0)
    out: list[Rect] = []
    seen: set[tuple] = set()
    for coords in zip(lo_x, lo_y, hi_x, hi_y):
        key = tuple(float(c) for c in coords)
        if key not in seen:
            seen.add(key)
            out.append(Rect((key[0], key[1]), (key[2], key[3])))
    return out


def _fill(draw, n: int, rng: np.random.Generator) -> list[Rect]:
    out: list[Rect] = []
    seen: set[Rect] = set()
    while len(out) < n:
        for rect in draw(max(n - len(out), 16), rng):
            if rect not in seen:
                seen.add(rect)
                out.append(rect)
                if len(out) == n:
                    break
    return out


def uniform_small(n: int, seed: int = 11) -> list[Rect]:
    """(F1) uniform centers, extensions uniform in [0, 0.005]."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> list[Rect]:
        centers = rng.uniform(0.0, 1.0, (k, 2))
        return _build(
            centers, rng.uniform(0.0, 0.005, k), rng.uniform(0.0, 0.005, k)
        )

    return _fill(draw, n, rng)


def uniform_large(n: int, seed: int = 12) -> list[Rect]:
    """(F2) uniform centers, extensions uniform in [0, 0.5]."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> list[Rect]:
        centers = rng.uniform(0.0, 1.0, (k, 2))
        return _build(centers, rng.uniform(0.0, 0.5, k), rng.uniform(0.0, 0.5, k))

    return _fill(draw, n, rng)


def gaussian_square(n: int, seed: int = 13) -> list[Rect]:
    """(F3) Gaussian centers N(0.5, 0.25), extensions uniform in [0, 0.05]."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> list[Rect]:
        centers = rng.normal(0.5, np.sqrt(0.25), (k, 2))
        keep = np.all((centers >= 0.0) & (centers <= 1.0), axis=1)
        centers = centers[keep]
        k = len(centers)
        return _build(centers, rng.uniform(0.0, 0.05, k), rng.uniform(0.0, 0.05, k))

    return _fill(draw, n, rng)


def gaussian_slim(n: int, seed: int = 14) -> list[Rect]:
    """(F4) Gaussian centers, x-extension in [0, 0.05], y in [0, 0.25]."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> list[Rect]:
        centers = rng.normal(0.5, np.sqrt(0.25), (k, 2))
        keep = np.all((centers >= 0.0) & (centers <= 1.0), axis=1)
        centers = centers[keep]
        k = len(centers)
        return _build(centers, rng.uniform(0.0, 0.05, k), rng.uniform(0.0, 0.25, k))

    return _fill(draw, n, rng)


def diagonal_rects(n: int, seed: int = 15) -> list[Rect]:
    """(F5) centers Gaussian around the main diagonal, extensions [0, 0.2]."""
    rng = np.random.default_rng(seed)

    def draw(k: int, rng: np.random.Generator) -> list[Rect]:
        u = rng.uniform(0.0, 1.0, k)
        centers = np.column_stack(
            [u + rng.normal(0.0, 0.05, k), u + rng.normal(0.0, 0.05, k)]
        )
        keep = np.all((centers >= 0.0) & (centers <= 1.0), axis=1)
        centers = centers[keep]
        k = len(centers)
        return _build(centers, rng.uniform(0.0, 0.2, k), rng.uniform(0.0, 0.2, k))

    return _fill(draw, n, rng)


#: name -> generator, in the paper's (F1)–(F5) order.
RECT_FILES = {
    "uniform_small": uniform_small,
    "uniform_large": uniform_large,
    "gaussian_square": gaussian_square,
    "gaussian_slim": gaussian_slim,
    "diagonal": diagonal_rects,
}


def generate_rect_file(name: str, n: int, seed: int | None = None) -> list[Rect]:
    """Generate the named rectangle file with ``n`` records."""
    if name not in RECT_FILES:
        raise KeyError(f"unknown rect file {name!r}; choose from {sorted(RECT_FILES)}")
    if seed is None:
        return RECT_FILES[name](n)
    return RECT_FILES[name](n, seed)
