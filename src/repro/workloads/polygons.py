"""Convex-polygon workloads for the §9 polygon extension."""

from __future__ import annotations

import numpy as np

from repro.geometry.polygon import ConvexPolygon

__all__ = ["generate_polygon_file"]


def generate_polygon_file(
    n: int, seed: int = 31, max_radius: float = 0.04, sides: tuple[int, int] = (3, 8)
) -> list[ConvexPolygon]:
    """``n`` distinct convex polygons inside the unit square.

    Each polygon is a randomly rotated, radius-perturbed regular
    polygon (3–8 sides), the usual stand-in for digitised map regions.
    """
    rng = np.random.default_rng(seed)
    polygons: list[ConvexPolygon] = []
    seen: set[ConvexPolygon] = set()
    while len(polygons) < n:
        radius = float(rng.uniform(0.005, max_radius))
        center = rng.uniform(radius, 1.0 - radius, 2)
        k = int(rng.integers(sides[0], sides[1] + 1))
        rotation = float(rng.uniform(0.0, 2.0 * np.pi))
        base = ConvexPolygon.regular((float(center[0]), float(center[1])), radius, k, rotation)
        # Perturb the radii a little while keeping convexity via the hull.
        jitter = rng.uniform(0.7, 1.0, len(base.vertices))
        verts = [
            (
                float(center[0] + (x - center[0]) * j),
                float(center[1] + (y - center[1]) * j),
            )
            for (x, y), j in zip(base.vertices, jitter)
        ]
        try:
            polygon = ConvexPolygon(verts)
        except ValueError:
            polygon = base
        if polygon not in seen:
            seen.add(polygon)
            polygons.append(polygon)
    return polygons
