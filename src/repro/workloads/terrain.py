"""Synthetic substitute for the paper's real cartography file (F7).

The original file — 81 549 interpolation points of elevation lines in a
"rolling-hill-type" area of the Sauerland, provided by the
Landesvermessungsamt NRW — is not available.  The substitution (see
DESIGN.md) reproduces its two load-bearing properties:

1. the points lie on the *contour lines* of a smooth rolling-hill
   terrain, so they form strongly correlated one-dimensional curves in
   the plane with empty space between them;
2. the points arrive in *quadtree partitioning order* ("the data is
   originally stored in a quad-tree, it is inserted in a sorted
   sequence"), reproduced by ordering along the Morton curve.

The terrain is a fixed sum of smooth cosine bumps; contour points are
extracted with a marching-squares pass over a sampled height grid.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.zorder import z_value

__all__ = ["generate_cartography_points", "rolling_hills_height"]


def rolling_hills_height(x: np.ndarray, y: np.ndarray, seed: int = 7) -> np.ndarray:
    """Height field of the synthetic rolling-hill terrain in ``[0, 1]``.

    A sum of randomly placed smooth bumps, normalised to the unit
    interval; deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    bumps = rng.uniform(0.0, 1.0, (9, 2))
    widths = rng.uniform(0.08, 0.25, 9)
    heights = rng.uniform(0.4, 1.0, 9)
    z = np.zeros_like(x, dtype=float)
    for (cx, cy), w, h in zip(bumps, widths, heights):
        z = z + h * np.exp(-((x - cx) ** 2 + (y - cy) ** 2) / (2 * w * w))
    z -= z.min()
    peak = z.max()
    if peak > 0:
        z /= peak
    return z


def _contour_points(grid: int, levels: int, seed: int) -> list[tuple[float, float]]:
    """Marching-squares interpolation points of all contour levels."""
    axis = np.linspace(0.0, 1.0, grid)
    xs, ys = np.meshgrid(axis, axis, indexing="ij")
    z = rolling_hills_height(xs, ys, seed=seed)
    points: list[tuple[float, float]] = []
    level_values = np.linspace(z.min(), z.max(), levels + 2)[1:-1]
    for level in level_values:
        # Edge crossings: horizontal edges (i,j)-(i+1,j) and vertical
        # edges (i,j)-(i,j+1); the crossing point is linearly
        # interpolated, exactly how elevation-line interpolation points
        # are digitised.
        za, zb = z[:-1, :], z[1:, :]
        cross = (za < level) != (zb < level)
        t = (level - za) / np.where(zb != za, zb - za, 1.0)
        xi = xs[:-1, :] + t * (xs[1:, :] - xs[:-1, :])
        yi = ys[:-1, :]
        for cx, cy in zip(xi[cross].ravel(), yi[cross].ravel()):
            points.append((float(cx), float(cy)))
        za, zb = z[:, :-1], z[:, 1:]
        cross = (za < level) != (zb < level)
        t = (level - za) / np.where(zb != za, zb - za, 1.0)
        yi = ys[:, :-1] + t * (ys[:, 1:] - ys[:, :-1])
        xi = xs[:, :-1]
        for cx, cy in zip(xi[cross].ravel(), yi[cross].ravel()):
            points.append((float(cx), float(cy)))
    return points


def generate_cartography_points(
    n: int, seed: int = 7, levels: int = 24
) -> list[tuple[float, float]]:
    """``n`` distinct contour points in quadtree (Morton) insertion order."""
    grid = 96
    points: list[tuple[float, float]] = []
    while True:
        raw = _contour_points(grid, levels, seed)
        seen: set[tuple[float, float]] = set()
        points = []
        for p in raw:
            q = (min(p[0], np.nextafter(1.0, 0.0)), min(p[1], np.nextafter(1.0, 0.0)))
            if q not in seen:
                seen.add(q)
                points.append(q)
        if len(points) >= n:
            break
        grid = grid * 2
        if grid > 4096:
            raise ValueError(f"cannot generate {n} contour points")
    # Deterministic thinning to exactly n, then quadtree ordering.
    stride = len(points) / n
    chosen = [points[int(i * stride)] for i in range(n)]
    deduped = list(dict.fromkeys(chosen))
    extra = (p for p in points if p not in set(deduped))
    while len(deduped) < n:
        deduped.append(next(extra))
    deduped.sort(key=lambda p: z_value(p, 2, 16))
    return deduped
