"""Plain-text exchange format for testbed data and query files.

The paper closes by offering its data and query files "to each designer
of a new point or spatial access method".  Ours are reproducible from
seeds, but these helpers write and read them in a simple line format so
the exact files can be shipped alongside results:

* point file — one ``x y`` pair per line;
* rectangle file — one ``lox loy hix hiy`` quadruple per line.
"""

from __future__ import annotations

from pathlib import Path

from repro.geometry.rect import Rect

__all__ = ["save_points", "load_points", "save_rects", "load_rects"]


def save_points(path: str | Path, points: list[tuple[float, ...]]) -> None:
    """Write a point file (one whitespace-separated point per line)."""
    with open(path, "w", encoding="ascii") as handle:
        for point in points:
            handle.write(" ".join(repr(c) for c in point) + "\n")


def load_points(path: str | Path) -> list[tuple[float, ...]]:
    """Read a point file written by :func:`save_points`."""
    points = []
    with open(path, encoding="ascii") as handle:
        for line in handle:
            parts = line.split()
            if parts:
                points.append(tuple(float(c) for c in parts))
    return points


def save_rects(path: str | Path, rects: list[Rect]) -> None:
    """Write a rectangle file (``lo... hi...`` per line)."""
    with open(path, "w", encoding="ascii") as handle:
        for rect in rects:
            coords = list(rect.lo) + list(rect.hi)
            handle.write(" ".join(repr(c) for c in coords) + "\n")


def load_rects(path: str | Path) -> list[Rect]:
    """Read a rectangle file written by :func:`save_rects`."""
    rects = []
    with open(path, encoding="ascii") as handle:
        for line in handle:
            parts = [float(c) for c in line.split()]
            if parts:
                half = len(parts) // 2
                rects.append(Rect(tuple(parts[:half]), tuple(parts[half:])))
    return rects
