"""Binary-partition *blocks* of the unit cube.

Both the BANG file and the BUDDY hash tree partition the data space
``[0,1)^d`` by *recursive halving with cyclic axes*: the first cut halves
axis 0, the second axis 1, ..., the (d+1)-th halves axis 0 again, and so
on.  Every region reachable this way is a **block** and is identified by
the sequence of halving decisions that produces it — a tuple of bits
where bit ``j`` selects the lower (0) or upper (1) half of axis
``j % d``.

The empty tuple is the whole data space.  Block ``a`` contains block
``b`` iff ``a`` is a prefix of ``b``; two blocks are either nested or
disjoint, which is exactly the property the BANG file's nested regions
and the BUDDY tree's buddy rectangles rely on.

All coordinates are binary fractions with at most :data:`MAX_DEPTH`
halvings per block, so the float arithmetic below is exact.
"""

from __future__ import annotations

import math

from functools import lru_cache
from typing import Sequence

from repro.geometry.rect import Rect

__all__ = [
    "MAX_DEPTH",
    "Bits",
    "block_rect",
    "bits_of_point",
    "is_prefix",
    "common_prefix",
    "min_enclosing_block",
    "split_axis",
]

#: Maximum total number of halvings of a block address.  48 bits across
#: two dimensions gives 24 bits of resolution per axis, far below the 52
#: mantissa bits of a float, so block boundaries are computed exactly.
MAX_DEPTH = 48

#: A block address: tuple of 0/1 halving decisions.
Bits = tuple[int, ...]

# Precomputed negative powers of two, exact as floats.
_POW2 = [2.0 ** -k for k in range(MAX_DEPTH + 2)]


def split_axis(bits: Bits, dims: int) -> int:
    """Axis that the *next* halving of block ``bits`` cuts."""
    return len(bits) % dims


@lru_cache(maxsize=1 << 16)
def block_rect(bits: Bits, dims: int) -> Rect:
    """The axis-parallel rectangle covered by block ``bits``.

    The rectangle is returned as a closed :class:`Rect`; callers that
    need half-open semantics (a point on a shared boundary belongs to
    the *upper* block) should locate points with :func:`bits_of_point`
    rather than with geometric containment.

    The function is pure over immutable arguments, and the BANG/BUDDY
    scan paths recompute the same few thousand block rectangles for
    every query, so results are memoized (``Rect`` is immutable, sharing
    is safe).
    """
    lo = [0.0] * dims
    width = [1.0] * dims
    for j, bit in enumerate(bits):
        axis = j % dims
        width[axis] *= 0.5
        if bit:
            lo[axis] += width[axis]
    hi = tuple(l + w for l, w in zip(lo, width))
    return Rect._make(tuple(lo), hi)


def bits_of_point(point: Sequence[float], dims: int, depth: int) -> Bits:
    """Address of the depth-``depth`` block containing ``point``.

    ``point`` must lie in ``[0,1)`` per axis; boundary points belong to
    the upper half (half-open convention).
    """
    if depth > MAX_DEPTH:
        raise ValueError(f"depth {depth} exceeds MAX_DEPTH={MAX_DEPTH}")
    # Quantize each axis once; bit k (from the most significant) of the
    # quantized value is the k-th halving decision for that axis.
    per_axis = (depth + dims - 1) // dims
    scale = 1 << per_axis
    quantized = []
    for c in point:
        q = math.floor(c * scale)
        if q >= scale:  # c == 1.0 or float round-up: clamp into the cube
            q = scale - 1
        if q < 0:
            raise ValueError(f"coordinate {c} outside the unit cube")
        quantized.append(q)
    bits = []
    for j in range(depth):
        axis = j % dims
        k = j // dims  # halving index within that axis, MSB first
        bits.append((quantized[axis] >> (per_axis - 1 - k)) & 1)
    return tuple(bits)


def is_prefix(a: Bits, b: Bits) -> bool:
    """True iff block ``a`` contains block ``b`` (prefix containment)."""
    return len(a) <= len(b) and b[: len(a)] == a


def common_prefix(a: Bits, b: Bits) -> Bits:
    """The smallest block containing both ``a`` and ``b``."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return a[:n]


def min_enclosing_block(rect: Rect, dims: int, max_depth: int = MAX_DEPTH) -> Bits:
    """Smallest block (longest address) whose rectangle contains ``rect``.

    This is the *buddy rectangle* operation of the BUDDY hash tree: the
    block is found as the longest common prefix of the addresses of the
    rectangle's lower and upper corners.  The upper corner is nudged
    inside the half-open cube so that a rectangle touching ``1.0`` still
    resolves.
    """
    lo_bits = bits_of_point(rect.lo, dims, max_depth)
    hi_point = tuple(min(c, 1.0 - _POW2[MAX_DEPTH + 1]) for c in rect.hi)
    hi_bits = bits_of_point(hi_point, dims, max_depth)
    return common_prefix(lo_bits, hi_bits)
