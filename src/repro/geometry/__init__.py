"""Geometric primitives shared by every access method.

The sub-modules are deliberately free of any storage concerns:

* :mod:`repro.geometry.rect` — d-dimensional axis-parallel rectangles.
* :mod:`repro.geometry.blocks` — binary-partition blocks (recursive
  cyclic halving of the unit cube), the common substrate of the BANG
  file and the BUDDY hash tree.
* :mod:`repro.geometry.zorder` — Morton (z-order) codes and z-region
  decomposition used by the z-B+-tree and the clipping technique.
* :mod:`repro.geometry.regioncover` — exact rectangle-union coverage
  tests used for nested-region pruning in the BANG file.
"""

from repro.geometry.rect import Rect

__all__ = ["Rect"]
