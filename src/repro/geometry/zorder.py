"""Morton (z-order) codes and redundant z-region decomposition.

The z-order maps a d-dimensional point to a single integer by
interleaving the bits of its quantized coordinates.  A *z-region* is a
prefix of such codes — geometrically exactly a binary-partition block in
the sense of :mod:`repro.geometry.blocks` — and corresponds to one
contiguous interval of z-values.  Storing the z-regions of an object in
a one-dimensional B+-tree is the classic technique of Orenstein & Merrett
[OM 84]; decomposing an object into *several* z-regions trades
**redundancy** for query precision, the trade-off studied by Orenstein's
companion paper in the same proceedings volume.
"""

from __future__ import annotations

import math

from typing import Sequence

from repro.geometry.blocks import Bits, block_rect
from repro.geometry.rect import Rect

__all__ = [
    "z_value",
    "z_interval",
    "decompose_rect",
]


#: dims -> 256-entry table spreading a byte's bits ``dims`` apart:
#: bit ``i`` of the byte lands at bit ``i * dims`` of the entry.
_SPREAD_TABLES: dict[int, list[int]] = {}


def _spread_table(dims: int) -> list[int]:
    table = _SPREAD_TABLES.get(dims)
    if table is None:
        table = _SPREAD_TABLES[dims] = [
            sum(((byte >> i) & 1) << (i * dims) for i in range(8))
            for byte in range(256)
        ]
    return table


# Warm the tables for every dimensionality the testbed reaches: 2-d for
# the native structures, 4-d for the transformation technique (2-d rects
# mapped to 4-d points), 3-d for completeness.  First-query latency then
# never includes table construction.
for _dims in (2, 3, 4):
    _spread_table(_dims)
del _dims


def z_value(point: Sequence[float], dims: int, bits_per_axis: int = 16) -> int:
    """Morton code of ``point`` with ``bits_per_axis`` bits per axis.

    Coordinates must lie in ``[0, 1]``; the value ``1.0`` is clamped to
    the last cell.  Interleaving is cyclic starting with axis 0, matching
    the halving order of :mod:`repro.geometry.blocks`.

    Instead of assembling the code bit by bit (``dims * bits_per_axis``
    shift-or steps), each quantized coordinate is spread through a
    precomputed 256-entry table — one lookup per 8 coordinate bits —
    and the spread axes are or-ed together: bit ``j`` of axis ``a``
    lands at position ``j * dims + (dims - 1 - a)``, exactly the cyclic
    MSB-first interleaving of the reference loop.
    """
    scale = 1 << bits_per_axis
    quantized = []
    for c in point:
        q = math.floor(c * scale)
        if q >= scale:
            q = scale - 1
        if q < 0:
            raise ValueError(f"coordinate {c} outside the unit cube")
        quantized.append(q)
    table = _spread_table(dims)
    z = 0
    for axis in range(dims):
        q = quantized[axis]
        spread = table[q & 0xFF]
        chunk = 0
        q >>= 8
        while q:
            chunk += 1
            spread |= table[q & 0xFF] << (8 * chunk * dims)
            q >>= 8
        z |= spread << (dims - 1 - axis)
    return z


def z_interval(bits: Bits, dims: int, bits_per_axis: int = 16) -> tuple[int, int]:
    """Half-open interval ``[lo, hi)`` of z-values falling in block ``bits``."""
    total = dims * bits_per_axis
    if len(bits) > total:
        raise ValueError(f"block deeper ({len(bits)}) than the z resolution ({total})")
    prefix = 0
    for bit in bits:
        prefix = (prefix << 1) | bit
    shift = total - len(bits)
    return prefix << shift, (prefix + 1) << shift


def decompose_rect(
    rect: Rect,
    dims: int,
    max_regions: int = 4,
    max_depth: int = 20,
) -> list[Bits]:
    """Cover ``rect`` with at most ``max_regions`` z-regions (blocks).

    This is the redundancy-controlled decomposition: with
    ``max_regions=1`` the object is approximated by its single minimal
    enclosing block (no redundancy, poor precision); larger budgets
    refine the cover greedily, splitting the block whose overshoot
    (covered volume outside the object) is largest, which is how a
    clipping-based spatial access method controls its redundancy.
    """
    if max_regions < 1:
        raise ValueError("max_regions must be at least 1")

    def overshoot(bits: Bits) -> float:
        block = block_rect(bits, dims)
        inter = block.intersection(rect)
        covered = inter.area() if inter is not None else 0.0
        return block.area() - covered

    # Start from the minimal enclosing block of the object.
    from repro.geometry.blocks import min_enclosing_block

    cover = [min_enclosing_block(rect, dims, max_depth)]
    while len(cover) < max_regions:
        # Split the block with the largest overshoot whose children still
        # intersect the object; stop when nothing profitable remains.
        best_idx, best_gain = -1, 0.0
        for i, bits in enumerate(cover):
            if len(bits) >= max_depth:
                continue
            gain = overshoot(bits)
            if gain > best_gain:
                best_idx, best_gain = i, gain
        if best_idx < 0:
            break
        bits = cover.pop(best_idx)
        for child in (bits + (0,), bits + (1,)):
            child_rect = block_rect(child, dims)
            if child_rect.intersects(rect):
                cover.append(child)
    return cover
