"""Axis-parallel d-dimensional rectangles.

A :class:`Rect` is the closed box ``[lo[i], hi[i]]`` in every dimension.
All access methods in this package, including the 4-dimensional
transformation technique, share this one type.  Instances are immutable
and hashable so they can serve as dictionary keys in directories and in
test oracles.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Rect"]


class Rect:
    """A closed axis-parallel box ``[lo, hi]`` in ``d`` dimensions.

    ``lo`` and ``hi`` are tuples of equal length with ``lo[i] <= hi[i]``.
    Degenerate boxes (``lo[i] == hi[i]``) are allowed; they represent
    points and are used as the minimal bounding rectangle of a single
    record.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo = tuple(lo)
        hi = tuple(hi)
        if len(lo) != len(hi):
            raise ValueError(f"dimension mismatch: {len(lo)} != {len(hi)}")
        if any(l > h for l, h in zip(lo, hi)):
            raise ValueError(f"inverted interval in Rect({lo}, {hi})")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # Rect is conceptually frozen; block attribute rebinding.
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    # -- constructors -------------------------------------------------

    @classmethod
    def unit(cls, dims: int) -> "Rect":
        """The unit cube ``[0, 1]^dims`` — the paper's data space."""
        return cls((0.0,) * dims, (1.0,) * dims)

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """The degenerate rectangle covering exactly ``point``."""
        p = tuple(point)
        return cls(p, p)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """Minimal bounding rectangle of a non-empty set of rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("bounding() of an empty set")
        dims = rects[0].dims
        lo = tuple(min(r.lo[i] for r in rects) for i in range(dims))
        hi = tuple(max(r.hi[i] for r in rects) for i in range(dims))
        return cls(lo, hi)

    @classmethod
    def bounding_points(cls, points: Iterable[Sequence[float]]) -> "Rect":
        """Minimal bounding rectangle of a non-empty set of points."""
        pts = [tuple(p) for p in points]
        if not pts:
            raise ValueError("bounding_points() of an empty set")
        dims = len(pts[0])
        lo = tuple(min(p[i] for p in pts) for i in range(dims))
        hi = tuple(max(p[i] for p in pts) for i in range(dims))
        return cls(lo, hi)

    # -- basic properties ---------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def center(self) -> tuple[float, ...]:
        """Geometric center of the box."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def extent(self, axis: int) -> float:
        """Side length along ``axis``."""
        return self.hi[axis] - self.lo[axis]

    def area(self) -> float:
        """d-dimensional volume (the paper calls it *volume*)."""
        v = 1.0
        for l, h in zip(self.lo, self.hi):
            v *= h - l
        return v

    def margin(self) -> float:
        """Sum of side lengths — the *margin* minimised by split policies."""
        return sum(h - l for l, h in zip(self.lo, self.hi))

    # -- predicates ----------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        """True iff ``point`` lies inside the closed box."""
        return all(l <= c <= h for l, c, h in zip(self.lo, point, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely inside this box."""
        return all(l <= ol for l, ol in zip(self.lo, other.lo)) and all(
            oh <= h for oh, h in zip(other.hi, self.hi)
        )

    def intersects(self, other: "Rect") -> bool:
        """True iff the two closed boxes share at least one point."""
        return all(l <= oh for l, oh in zip(self.lo, other.hi)) and all(
            ol <= h for ol, h in zip(other.lo, self.hi)
        )

    # -- constructive operations ----------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The common box, or ``None`` when the boxes are disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def union(self, other: "Rect") -> "Rect":
        """Minimal bounding rectangle of the two boxes."""
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def expanded_to_point(self, point: Sequence[float]) -> "Rect":
        """Minimal bounding rectangle of this box and ``point``."""
        lo = tuple(min(a, c) for a, c in zip(self.lo, point))
        hi = tuple(max(a, c) for a, c in zip(self.hi, point))
        return Rect(lo, hi)

    def enlargement(self, other: "Rect") -> float:
        """Extra volume needed to also cover ``other`` (R-tree heuristic)."""
        return self.union(other).area() - self.area()

    def split_at(self, axis: int, coordinate: float) -> tuple["Rect", "Rect"]:
        """Cut the box with the hyperplane ``x[axis] == coordinate``."""
        if not self.lo[axis] <= coordinate <= self.hi[axis]:
            raise ValueError(
                f"split coordinate {coordinate} outside [{self.lo[axis]}, {self.hi[axis]}]"
            )
        left_hi = list(self.hi)
        left_hi[axis] = coordinate
        right_lo = list(self.lo)
        right_lo[axis] = coordinate
        return Rect(self.lo, tuple(left_hi)), Rect(tuple(right_lo), self.hi)

    # -- dunder -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rect) and self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({self.lo}, {self.hi})"
