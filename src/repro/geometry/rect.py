"""Axis-parallel d-dimensional rectangles.

A :class:`Rect` is the closed box ``[lo[i], hi[i]]`` in every dimension.
All access methods in this package, including the 4-dimensional
transformation technique, share this one type.  Instances are immutable
and hashable so they can serve as dictionary keys in directories and in
test oracles.
"""

from __future__ import annotations

from typing import Iterable, Sequence

try:  # numpy accelerates the bulk constructors; scalar fallbacks remain.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["Rect"]

#: Below this many inputs the scalar ``min``/``max`` loops beat the cost of
#: materialising a NumPy array (micro-benchmarked in bench_micro_geometry).
_VECTOR_MIN = 16


class Rect:
    """A closed axis-parallel box ``[lo, hi]`` in ``d`` dimensions.

    ``lo`` and ``hi`` are tuples of equal length with ``lo[i] <= hi[i]``.
    Degenerate boxes (``lo[i] == hi[i]``) are allowed; they represent
    points and are used as the minimal bounding rectangle of a single
    record.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo = tuple(lo)
        hi = tuple(hi)
        if len(lo) != len(hi):
            raise ValueError(f"dimension mismatch: {len(lo)} != {len(hi)}")
        if any(l > h for l, h in zip(lo, hi)):
            raise ValueError(f"inverted interval in Rect({lo}, {hi})")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # Rect is conceptually frozen; block attribute rebinding.
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    # The default slots pickling path rebuilds via __setattr__, which is
    # blocked; reconstruct through the validating constructor instead.
    def __reduce__(self):
        return (Rect, (self.lo, self.hi))

    # -- constructors -------------------------------------------------

    @classmethod
    def _make(cls, lo: tuple[float, ...], hi: tuple[float, ...]) -> "Rect":
        """Internal constructor for *known-valid* tuples.

        Skips the tuple re-wrap and the inversion check of ``__init__``;
        only for callers that construct ``lo``/``hi`` as equal-length
        tuples with ``lo[i] <= hi[i]`` by construction.
        """
        rect = object.__new__(cls)
        object.__setattr__(rect, "lo", lo)
        object.__setattr__(rect, "hi", hi)
        return rect

    @classmethod
    def unit(cls, dims: int) -> "Rect":
        """The unit cube ``[0, 1]^dims`` — the paper's data space."""
        return cls._make((0.0,) * dims, (1.0,) * dims)

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """The degenerate rectangle covering exactly ``point``."""
        p = tuple(point)
        return cls._make(p, p)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """Minimal bounding rectangle of a non-empty set of rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("bounding() of an empty set")
        if _np is not None and len(rects) >= _VECTOR_MIN:
            lo = tuple(_np.min([r.lo for r in rects], axis=0).tolist())
            hi = tuple(_np.max([r.hi for r in rects], axis=0).tolist())
        else:
            lo = tuple(map(min, zip(*(r.lo for r in rects))))
            hi = tuple(map(max, zip(*(r.hi for r in rects))))
        return cls._make(lo, hi)

    @classmethod
    def bounding_points(cls, points: Iterable[Sequence[float]]) -> "Rect":
        """Minimal bounding rectangle of a non-empty set of points."""
        pts = [tuple(p) for p in points]
        if not pts:
            raise ValueError("bounding_points() of an empty set")
        if _np is not None and len(pts) >= _VECTOR_MIN:
            arr = _np.asarray(pts)
            lo = tuple(arr.min(axis=0).tolist())
            hi = tuple(arr.max(axis=0).tolist())
        else:
            lo = tuple(map(min, zip(*pts)))
            hi = tuple(map(max, zip(*pts)))
        return cls._make(lo, hi)

    # -- basic properties ---------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def center(self) -> tuple[float, ...]:
        """Geometric center of the box."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def extent(self, axis: int) -> float:
        """Side length along ``axis``."""
        return self.hi[axis] - self.lo[axis]

    def area(self) -> float:
        """d-dimensional volume (the paper calls it *volume*)."""
        v = 1.0
        for l, h in zip(self.lo, self.hi):
            v *= h - l
        return v

    def margin(self) -> float:
        """Sum of side lengths — the *margin* minimised by split policies."""
        return sum(h - l for l, h in zip(self.lo, self.hi))

    # -- predicates ----------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        """True iff ``point`` lies inside the closed box."""
        for l, c, h in zip(self.lo, point, self.hi):
            if not l <= c <= h:
                return False
        return True

    def contains_rect(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely inside this box."""
        for l, h, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            if not (l <= ol and oh <= h):
                return False
        return True

    def intersects(self, other: "Rect") -> bool:
        """True iff the two closed boxes share at least one point.

        Single pass with an early exit — the first separating axis
        settles it, where the old per-axis generator pairs always walked
        ``lo`` completely before looking at ``hi``.
        """
        for l, h, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            if not (l <= oh and ol <= h):
                return False
        return True

    # -- constructive operations ----------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The common box, or ``None`` when the boxes are disjoint."""
        lo = tuple(map(max, self.lo, other.lo))
        hi = tuple(map(min, self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect._make(lo, hi)

    def union(self, other: "Rect") -> "Rect":
        """Minimal bounding rectangle of the two boxes."""
        return Rect._make(
            tuple(map(min, self.lo, other.lo)), tuple(map(max, self.hi, other.hi))
        )

    def expanded_to_point(self, point: Sequence[float]) -> "Rect":
        """Minimal bounding rectangle of this box and ``point``."""
        return Rect._make(
            tuple(map(min, self.lo, point)), tuple(map(max, self.hi, point))
        )

    def enlargement(self, other: "Rect") -> float:
        """Extra volume needed to also cover ``other`` (R-tree heuristic)."""
        return self.union(other).area() - self.area()

    def split_at(self, axis: int, coordinate: float) -> tuple["Rect", "Rect"]:
        """Cut the box with the hyperplane ``x[axis] == coordinate``."""
        if not self.lo[axis] <= coordinate <= self.hi[axis]:
            raise ValueError(
                f"split coordinate {coordinate} outside [{self.lo[axis]}, {self.hi[axis]}]"
            )
        left_hi = list(self.hi)
        left_hi[axis] = coordinate
        right_lo = list(self.lo)
        right_lo[axis] = coordinate
        return (
            Rect._make(self.lo, tuple(left_hi)),
            Rect._make(tuple(right_lo), self.hi),
        )

    # -- dunder -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rect) and self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({self.lo}, {self.hi})"
