"""Vectorized predicate kernels over coordinate arrays.

These are the NumPy counterparts of the scalar :class:`~repro.geometry.rect.Rect`
predicates.  Every kernel evaluates a whole page of records — and, in the
``*_many`` variants, a whole batch of queries — in one call, replacing the
per-record Python loops inside visited pages.

Exactness contract: the kernels compare float64 values with ``<=``/``>=``
only, never arithmetic, so a kernel's verdict on any (record, query) pair is
bit-identical to the scalar predicate on the same Python floats.  NaN rows
(used to mark unavailable batch queries) compare false everywhere, matching
"never selected".

Shapes
------
``pts``            ``(n, d)``   page of points
``lo``, ``hi``     ``(n, d)``   page of boxes (lower/upper corners)
``qlo``, ``qhi``   ``(d,)``     one query box, or ``(Q, d)`` for a batch

Single-query kernels return a boolean mask of shape ``(n,)``; batch kernels
return ``(Q, n)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "points_in_box",
    "points_in_boxes",
    "boxes_intersect",
    "boxes_intersect_many",
    "boxes_within",
    "boxes_within_many",
    "boxes_enclose",
    "boxes_enclose_many",
    "fuse_points",
    "fuse_boxes_cover",
    "fuse_boxes_within",
    "fused_match",
    "fused_match_many",
]


# -- point pages ------------------------------------------------------------


def points_in_box(pts: np.ndarray, qlo: np.ndarray, qhi: np.ndarray) -> np.ndarray:
    """Mask of points inside the closed box ``[qlo, qhi]`` (range query)."""
    return ((pts >= qlo) & (pts <= qhi)).all(axis=1)


def points_in_boxes(pts: np.ndarray, qlo: np.ndarray, qhi: np.ndarray) -> np.ndarray:
    """Batch variant: ``(Q, n)`` mask of points inside each query box."""
    p = pts[None, :, :]
    return ((p >= qlo[:, None, :]) & (p <= qhi[:, None, :])).all(axis=2)


# -- box pages --------------------------------------------------------------


def boxes_intersect(
    lo: np.ndarray, hi: np.ndarray, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """Mask of stored boxes sharing at least one point with the query box."""
    return ((lo <= qhi) & (qlo <= hi)).all(axis=1)


def boxes_intersect_many(
    lo: np.ndarray, hi: np.ndarray, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """Batch variant of :func:`boxes_intersect` — ``(Q, n)``."""
    l, h = lo[None, :, :], hi[None, :, :]
    return ((l <= qhi[:, None, :]) & (qlo[:, None, :] <= h)).all(axis=2)


def boxes_within(
    lo: np.ndarray, hi: np.ndarray, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """Mask of stored boxes entirely inside the query box (containment)."""
    return ((qlo <= lo) & (hi <= qhi)).all(axis=1)


def boxes_within_many(
    lo: np.ndarray, hi: np.ndarray, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """Batch variant of :func:`boxes_within` — ``(Q, n)``."""
    l, h = lo[None, :, :], hi[None, :, :]
    return ((qlo[:, None, :] <= l) & (h <= qhi[:, None, :])).all(axis=2)


def boxes_enclose(
    lo: np.ndarray, hi: np.ndarray, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """Mask of stored boxes that entirely contain the query box (enclosure).

    With a degenerate query box this is exactly ``contains_point``.
    """
    return ((lo <= qlo) & (qhi <= hi)).all(axis=1)


def boxes_enclose_many(
    lo: np.ndarray, hi: np.ndarray, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """Batch variant of :func:`boxes_enclose` — ``(Q, n)``."""
    l, h = lo[None, :, :], hi[None, :, :]
    return ((l <= qlo[:, None, :]) & (qhi[:, None, :] <= h)).all(axis=2)


# -- fused form --------------------------------------------------------------
#
# Every kernel above is a conjunction of ``<=`` comparisons, half of them
# with the operands swapped.  Since IEEE-754 negation is exact and
# ``a <= b  <=>  -b <= -a`` for every float pair (NaN compares false on
# both sides), each predicate can be rewritten as ONE comparison of a
# per-page "fused" array against a per-query vector:
#
#   point in box:       [-p, p]   <= [-qlo, qhi]
#   boxes intersect:    [lo, -hi] <= [qhi, -qlo]
#   box within query:   [-lo, hi] <= [-qlo, qhi]
#   box encloses query: [lo, -hi] <= [qlo, -qhi]
#
# Two NumPy dispatches (compare + all) instead of four, with verdicts
# bit-identical to the pairwise kernels — the hot-path form used by
# :mod:`repro.query.scan`.  Intersection and enclosure share the
# ``[lo, -hi]`` page array ("cover"); containment needs ``[-lo, hi]``.


def fuse_points(pts: np.ndarray) -> np.ndarray:
    """``(n, 2d)`` fused page array ``[-p, p]`` for point-in-box tests."""
    return np.concatenate([-pts, pts], axis=1)


def fuse_boxes_cover(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """``(n, 2d)`` fused array ``[lo, -hi]`` (intersection / enclosure)."""
    return np.concatenate([lo, -hi], axis=1)


def fuse_boxes_within(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """``(n, 2d)`` fused array ``[-lo, hi]`` (containment)."""
    return np.concatenate([-lo, hi], axis=1)


def fused_match(fused: np.ndarray, qvec: np.ndarray) -> np.ndarray:
    """``(n,)`` mask of fused page rows entirely ``<=`` the query vector."""
    return (fused <= qvec).all(axis=1)


def fused_match_many(fused: np.ndarray, qvecs: np.ndarray) -> np.ndarray:
    """Batch variant of :func:`fused_match` — ``(Q, n)``."""
    return (fused[None, :, :] <= qvecs[:, None, :]).all(axis=2)
