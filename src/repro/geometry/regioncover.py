"""Exact rectangle-union coverage tests.

The BANG file stores *nested* regions: the region of a block is its
rectangle minus the rectangles of the blocks nested inside it.  During
range queries a page can be pruned when the part of the query falling
into its block is entirely covered by nested sibling blocks.  The test
"is rectangle T covered by the union of rectangles C1..Ck" is answered
exactly here by coordinate compression: the boundaries of the covering
rectangles cut T into a small grid, and T is covered iff every grid cell
center is inside some covering rectangle.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from typing import Iterable, Sequence

import numpy as np

from repro.geometry.rect import Rect

__all__ = ["CoverSet", "is_covered"]


def is_covered(target: Rect, covers: Iterable[Rect]) -> bool:
    """True iff ``target`` is entirely covered by the union of ``covers``.

    Zero-volume targets count as covered when some cover contains them.
    The cost is the product over axes of the number of distinct cover
    boundaries inside the target, which is tiny for the entry counts of
    a 512-byte page.
    """
    covers = [c for c in covers if c.intersects(target)]
    if not covers:
        return False
    if any(c.contains_rect(target) for c in covers):
        return True
    dims = target.dims
    # Per-axis sorted breakpoints: target boundaries plus every cover
    # boundary strictly inside the target.
    axes_cuts: list[list[float]] = []
    for axis in range(dims):
        cuts = {target.lo[axis], target.hi[axis]}
        for c in covers:
            for v in (c.lo[axis], c.hi[axis]):
                if target.lo[axis] < v < target.hi[axis]:
                    cuts.add(v)
        axes_cuts.append(sorted(cuts))

    # Walk the grid of cells; a cell is represented by its center.
    def cell_centers(axis: int) -> list[float]:
        cuts = axes_cuts[axis]
        if len(cuts) == 1:  # degenerate axis: the single coordinate
            return [cuts[0]]
        return [(a + b) / 2.0 for a, b in zip(cuts, cuts[1:])]

    centers_per_axis = [cell_centers(axis) for axis in range(dims)]
    index = [0] * dims
    while True:
        center = tuple(centers_per_axis[a][index[a]] for a in range(dims))
        if not any(c.contains_point(center) for c in covers):
            return False
        # Advance the mixed-radix counter over grid cells.
        axis = 0
        while axis < dims:
            index[axis] += 1
            if index[axis] < len(centers_per_axis[axis]):
                break
            index[axis] = 0
            axis += 1
        if axis == dims:
            return True


class CoverSet:
    """A fixed cover list preprocessed for repeated coverage queries.

    :meth:`covers` answers exactly what :func:`is_covered` answers over
    the same cover list, but amortises the per-call work across queries.
    The constructor compresses the covers once into their full boundary
    grid — per-axis sorted cut lists plus a boolean array holding each
    grid cell's "center inside some cover" verdict.  A query target then
    reduces to two bisections per axis and one contiguous ``.all()``
    over the touched cell box:

    * a target sticking out of the covers' bounding box contains an
      uncovered corner — rejected before touching the grid;
    * interior target cells coincide with precomputed grid cells, and
      the two edge cells per axis share their grid cell's verdict
      because no cover boundary crosses a grid cell's interior.

    Equivalence to the per-call coordinate compression holds whenever
    every tested cell center lies strictly inside its grid interval.
    The constructor verifies this for the precomputed centers and
    :meth:`covers` verifies it for the query-clipped edge cells; the
    degenerate cases (zero-width targets, or interval endpoints so close
    that their midpoint rounds onto a boundary) fall back to
    :func:`is_covered` on the original cover list, so the verdict is the
    scalar one by construction there too.

    The BANG file's nesting-coverage prune asks this question once per
    (leaf entry, query) pair against the entry's fixed nested siblings —
    the dominant per-query cost at 512-byte pages before this class.
    """

    __slots__ = (
        "_covers",
        "_ulo",
        "_uhi",
        "_cuts",
        "_cells",
        "_exact",
        "_full",
        "_flat",
        "_strides",
    )

    def __init__(self, covers: Sequence[Rect]):
        covers = list(covers)
        self._covers = covers
        dims = covers[0].dims
        self._ulo = tuple(min(c.lo[a] for c in covers) for a in range(dims))
        self._uhi = tuple(max(c.hi[a] for c in covers) for a in range(dims))
        cuts = [
            sorted({v for c in covers for v in (c.lo[a], c.hi[a])})
            for a in range(dims)
        ]
        self._cuts = cuts
        exact = True
        centers = []
        for axis in cuts:
            mids = [(a + b) / 2.0 for a, b in zip(axis, axis[1:])]
            if any(m <= a or m >= b for m, a, b in zip(mids, axis, axis[1:])):
                # Adjacent-float boundaries: a midpoint collapsed onto a
                # cut, so cell interiors are not representable — every
                # query must take the scalar path.
                exact = False
                break
            centers.append(mids)
        self._exact = exact
        self._full = False
        if not exact:
            self._cells = None
            self._flat = None
            self._strides = None
            return
        lo = np.array([c.lo for c in covers])
        hi = np.array([c.hi for c in covers])
        pts = np.stack(
            [g.ravel() for g in np.meshgrid(*centers, indexing="ij")], axis=1
        )
        inside = (pts[:, None, :] >= lo) & (pts[:, None, :] <= hi)
        self._cells = (
            inside.all(axis=2)
            .any(axis=1)
            .reshape([len(m) for m in centers])
        )
        # Every cell center covered means every closed cell is inside some
        # cover (membership is constant on cell interiors and covers are
        # closed), so the whole bounding box is covered: targets passing
        # the bounding-box gate are covered outright, degenerate or not —
        # exactly what the scalar test would conclude.
        self._full = bool(self._cells.all())
        # Row-major flat copy plus per-axis strides: query boxes touching
        # only a handful of cells (the common case — a clipped block spans
        # one or two cuts per axis) are answered by plain list indexing,
        # sparing the fancy-index + reduction round trip through NumPy.
        self._flat = self._cells.ravel().tolist()
        strides = []
        acc = 1
        for n in reversed(self._cells.shape):
            strides.append(acc)
            acc *= n
        self._strides = tuple(reversed(strides))

    def covers(self, target: Rect) -> bool:
        """True iff ``target`` is entirely covered by the union (exact)."""
        return self.covers_bounds(target.lo, target.hi)

    def covers_bounds(
        self, tlo: tuple[float, ...], thi: tuple[float, ...]
    ) -> bool:
        """:meth:`covers` on raw corner tuples, sparing the Rect object.

        The BANG leaf filter clips its block to the query inline; only
        the rare scalar fallbacks materialise a :class:`Rect`.
        """
        for l, h, lo, hi in zip(tlo, thi, self._ulo, self._uhi):
            # Target sticks out of every cover on this axis: the scalar
            # test's outermost cell center lies beyond every cover too,
            # *provided* the midpoint doesn't round back onto the covers'
            # edge (1-ulp overhangs) — there the scalar verdict can go
            # either way, so re-derive it.
            if lo > l:
                if l == h or (l + lo) / 2.0 < lo:
                    return False
                return is_covered(Rect._make(tlo, thi), self._covers)
            if hi < h:
                if l == h or (hi + h) / 2.0 > hi:
                    return False
                return is_covered(Rect._make(tlo, thi), self._covers)
        if self._full:
            return True
        if not self._exact:
            return is_covered(Rect._make(tlo, thi), self._covers)
        box = []
        total = 1
        for l, h, cuts in zip(tlo, thi, self._cuts):
            if l == h:
                return is_covered(Rect._make(tlo, thi), self._covers)
            # The bounding-box gate guarantees cuts[0] <= l < h <= cuts[-1].
            p = bisect_right(cuts, l) - 1
            q = bisect_left(cuts, h) - 1
            # Edge cells clipped by the target share their grid cell's
            # verdict only while their midpoint stays strictly inside the
            # cell; full-width edge cells are the precomputed cells
            # themselves (same floats, same verdict, no check needed).
            if p == q:
                if l != cuts[p] or h != cuts[p + 1]:
                    m = (l + h) / 2.0
                    if not cuts[p] < m < cuts[p + 1]:
                        return is_covered(Rect._make(tlo, thi), self._covers)
            else:
                if l != cuts[p]:
                    m = (l + cuts[p + 1]) / 2.0
                    if not cuts[p] < m < cuts[p + 1]:
                        return is_covered(Rect._make(tlo, thi), self._covers)
                if h != cuts[q + 1]:
                    m = (cuts[q] + h) / 2.0
                    if not cuts[q] < m < cuts[q + 1]:
                        return is_covered(Rect._make(tlo, thi), self._covers)
            box.append((p, q + 1))
            total *= q + 1 - p
        if total <= 8:
            flat = self._flat
            base = 0
            offs = [0]
            for (p, q1), st in zip(box, self._strides):
                base += p * st
                w = q1 - p
                if w > 1:
                    offs = [o + i * st for o in offs for i in range(w)]
            if total == 1:
                return flat[base]
            return all(flat[base + o] for o in offs)
        return bool(
            self._cells[tuple(slice(p, q1) for p, q1 in box)].all()
        )
