"""Exact rectangle-union coverage tests.

The BANG file stores *nested* regions: the region of a block is its
rectangle minus the rectangles of the blocks nested inside it.  During
range queries a page can be pruned when the part of the query falling
into its block is entirely covered by nested sibling blocks.  The test
"is rectangle T covered by the union of rectangles C1..Ck" is answered
exactly here by coordinate compression: the boundaries of the covering
rectangles cut T into a small grid, and T is covered iff every grid cell
center is inside some covering rectangle.
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.rect import Rect

__all__ = ["is_covered"]


def is_covered(target: Rect, covers: Iterable[Rect]) -> bool:
    """True iff ``target`` is entirely covered by the union of ``covers``.

    Zero-volume targets count as covered when some cover contains them.
    The cost is the product over axes of the number of distinct cover
    boundaries inside the target, which is tiny for the entry counts of
    a 512-byte page.
    """
    covers = [c for c in covers if c.intersects(target)]
    if not covers:
        return False
    if any(c.contains_rect(target) for c in covers):
        return True
    dims = target.dims
    # Per-axis sorted breakpoints: target boundaries plus every cover
    # boundary strictly inside the target.
    axes_cuts: list[list[float]] = []
    for axis in range(dims):
        cuts = {target.lo[axis], target.hi[axis]}
        for c in covers:
            for v in (c.lo[axis], c.hi[axis]):
                if target.lo[axis] < v < target.hi[axis]:
                    cuts.add(v)
        axes_cuts.append(sorted(cuts))

    # Walk the grid of cells; a cell is represented by its center.
    def cell_centers(axis: int) -> list[float]:
        cuts = axes_cuts[axis]
        if len(cuts) == 1:  # degenerate axis: the single coordinate
            return [cuts[0]]
        return [(a + b) / 2.0 for a, b in zip(cuts, cuts[1:])]

    centers_per_axis = [cell_centers(axis) for axis in range(dims)]
    index = [0] * dims
    while True:
        center = tuple(centers_per_axis[a][index[a]] for a in range(dims))
        if not any(c.contains_point(center) for c in covers):
            return False
        # Advance the mixed-radix counter over grid cells.
        axis = 0
        while axis < dims:
            index[axis] += 1
            if index[axis] < len(centers_per_axis[axis]):
                break
            index[axis] = 0
            axis += 1
        if axis == dims:
            return True
