"""Convex polygons — the "more complex spatial objects" of §9.

The paper closes with: "Further work in this area should deal with
performance comparisons of access methods for more complex spatial
objects, such as polygons".  This module supplies the geometry for that
step: convex polygons with exact point containment, rectangle
intersection (separating-axis test) and the minimal bounding rectangle
used by every MBR-based access method of §6.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.rect import Rect

__all__ = ["ConvexPolygon", "convex_hull"]


def convex_hull(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """Convex hull in counter-clockwise order (Andrew's monotone chain)."""
    pts = sorted(set(points))
    if len(pts) < 3:
        return list(pts)

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[tuple[float, float]] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[tuple[float, float]] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


class ConvexPolygon:
    """An immutable convex polygon with counter-clockwise vertices."""

    __slots__ = ("vertices",)

    def __init__(self, vertices: Sequence[tuple[float, float]]):
        verts = [(float(x), float(y)) for x, y in vertices]
        if len(verts) < 3:
            raise ValueError("a polygon needs at least three vertices")
        hull = convex_hull(verts)
        if len(hull) != len(verts):
            raise ValueError("vertices must be convex and in general position")
        object.__setattr__(self, "vertices", tuple(hull))

    def __setattr__(self, name, value):
        raise AttributeError("ConvexPolygon is immutable")

    # -- constructors -----------------------------------------------------

    @classmethod
    def regular(cls, center: tuple[float, float], radius: float, sides: int,
                rotation: float = 0.0) -> "ConvexPolygon":
        """A regular ``sides``-gon around ``center``."""
        if sides < 3:
            raise ValueError("at least three sides")
        return cls(
            [
                (
                    center[0] + radius * math.cos(rotation + 2 * math.pi * k / sides),
                    center[1] + radius * math.sin(rotation + 2 * math.pi * k / sides),
                )
                for k in range(sides)
            ]
        )

    # -- basic measures ---------------------------------------------------------

    def bounding_rect(self) -> Rect:
        """The minimal bounding rectangle used by the access methods."""
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return Rect((min(xs), min(ys)), (max(xs), max(ys)))

    def area(self) -> float:
        """Shoelace area (positive: vertices are counter-clockwise)."""
        total = 0.0
        verts = self.vertices
        for (x1, y1), (x2, y2) in zip(verts, verts[1:] + verts[:1]):
            total += x1 * y2 - x2 * y1
        return total / 2.0

    # -- predicates -----------------------------------------------------------------

    def contains_point(self, point: tuple[float, float]) -> bool:
        """Exact point-in-convex-polygon (boundary counts as inside)."""
        px, py = point
        verts = self.vertices
        for (x1, y1), (x2, y2) in zip(verts, verts[1:] + verts[:1]):
            if (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1) < 0:
                return False
        return True

    def intersects_rect(self, rect: Rect) -> bool:
        """Exact polygon/rectangle intersection via the separating-axis test."""
        if not self.bounding_rect().intersects(rect):
            return False
        # Axis-aligned axes are covered by the bounding-rect check; test
        # the polygon's edge normals.
        corners = [
            (rect.lo[0], rect.lo[1]),
            (rect.hi[0], rect.lo[1]),
            (rect.hi[0], rect.hi[1]),
            (rect.lo[0], rect.hi[1]),
        ]
        verts = self.vertices
        for (x1, y1), (x2, y2) in zip(verts, verts[1:] + verts[:1]):
            nx, ny = y1 - y2, x2 - x1  # outward is irrelevant; interval test
            poly_proj = [nx * vx + ny * vy for vx, vy in verts]
            rect_proj = [nx * cx + ny * cy for cx, cy in corners]
            if max(poly_proj) < min(rect_proj) or max(rect_proj) < min(poly_proj):
                return False
        return True

    def contained_in_rect(self, rect: Rect) -> bool:
        """True iff every vertex lies inside ``rect``."""
        return all(rect.contains_point(v) for v in self.vertices)

    # -- dunder -------------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, ConvexPolygon) and self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(self.vertices)

    def __repr__(self) -> str:
        return f"ConvexPolygon({len(self.vertices)} vertices)"
