"""Content-addressed on-disk cache of finished build+query jobs.

Every experiment cell of the paper's grid is a pure function of its
:class:`~repro.parallel.jobs.JobSpec` — the data file generators are
deterministic in ``(name, n, seed)``, the structures are deterministic
in their insertion sequence, and the query files are fixed by seed.  A
finished :class:`~repro.parallel.jobs.JobResult` can therefore be
cached on disk under a digest of the spec plus a *code fingerprint*
(a hash over every ``repro`` source file), so a repeated bench session
skips all rebuilds and any change to the code base invalidates every
entry automatically.

The cache location comes from ``REPRO_BUILD_CACHE``:

* unset — ``results/.build_cache`` next to the installed tree's repo
  root (or the current directory's ``results/``, whichever exists);
* a path — use that directory;
* ``0`` / ``off`` / ``none`` / empty — disable caching entirely.

Entries are written atomically (temp file + rename) so concurrent
sessions sharing one cache directory never observe torn pickles.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

__all__ = [
    "BuildCache",
    "cache_from_env",
    "code_fingerprint",
    "default_results_root",
]

_DISABLED_VALUES = {"0", "off", "none", "no", "false"}

_fingerprint_cache: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Any edit anywhere in the package — an access method, the page
    store's charging rules, a workload generator — changes the
    fingerprint and with it every cache key, which is the only safe
    default for a simulation whose output *is* its code's behaviour.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
        _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


def cache_from_env(env: str = "REPRO_BUILD_CACHE") -> "BuildCache | None":
    """The cache configured by the environment (``None`` when disabled)."""
    value = os.environ.get(env)
    if value is not None and value.strip().lower() in _DISABLED_VALUES | {""}:
        return None
    if value:
        return BuildCache(Path(value))
    return BuildCache(_default_root())


def default_results_root() -> Path:
    """The repo's ``results/`` directory when run from a checkout.

    Shared by every artefact writer (build cache, benches, the
    performance ledger) so they all agree on one location; falls back
    to ``./results`` outside a checkout.
    """
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "results").is_dir() or (parent / "pyproject.toml").is_file():
            return parent / "results"
    return Path.cwd() / "results"


def _default_root() -> Path:
    """``<repo>/results/.build_cache`` when run from a checkout."""
    return default_results_root() / ".build_cache"


class BuildCache:
    """Pickle store of :class:`~repro.parallel.jobs.JobResult` objects.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first :meth:`store`).
    fingerprint:
        Override of :func:`code_fingerprint`, for tests that pin key
        sensitivity without editing source files.
    """

    def __init__(self, root: str | Path, fingerprint: str | None = None):
        self.root = Path(root)
        self._fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    # -- keys --------------------------------------------------------------

    def key(self, spec) -> str:
        """Hex digest addressing ``spec`` under the current code."""
        payload = dict(spec.cache_fields())
        payload["code"] = self.fingerprint
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def path_for(self, spec) -> Path:
        return self.root / f"{self.key(spec)}.pkl"

    # -- access ------------------------------------------------------------

    def load(self, spec):
        """The cached :class:`JobResult` for ``spec``, or ``None``.

        A hit requires the stored spec to equal the requested one — a
        digest collision (or a truncated entry) degrades to a miss.
        """
        path = self.path_for(spec)
        try:
            with path.open("rb") as fh:
                stored_spec, result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            self.misses += 1
            return None
        if stored_spec != spec:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec, result) -> Path:
        """Persist ``result`` for ``spec`` atomically and return its path."""
        path = self.path_for(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((spec, result), fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BuildCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
