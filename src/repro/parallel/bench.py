"""``python -m repro.parallel.bench`` — the paper grid, timed end to end.

Runs the complete Part I/II comparison (every point file × the standard
PAMs, every rectangle file × the standard SAMs) twice — once serially
in-process, once fanned out over ``--workers`` processes — verifies the
two passes produced identical tables and access totals, optionally
replays the parallel pass against the now-warm build cache, and records
the wall-clock numbers in ``results/BENCH_PARALLEL.json``::

    PYTHONPATH=src python -m repro.parallel.bench --workers 4 --scale 2000

The emitted JSON (schema ``repro.parallel/bench/v1``) is the repo's
first perf-trajectory artefact: serial seconds, parallel seconds,
speedup, warm-cache seconds and the cache hit counters, plus enough
metadata (scale, page size, cpu count) to compare runs across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core.testbed import testbed_scale
from repro.parallel.cache import BuildCache, cache_from_env
from repro.parallel.jobs import JobSpec, pam_file_specs, sam_file_specs
from repro.parallel.runner import ExperimentOutcome, merge_outcomes, run_specs

__all__ = ["BENCH_SCHEMA", "build_grid", "compare_outcomes", "main", "results_dir"]

#: Schema identifier of results/BENCH_PARALLEL.json.
BENCH_SCHEMA = "repro.parallel/bench/v1"


def results_dir() -> Path:
    """The repo's ``results/`` directory (falls back to ``./results``)."""
    for parent in Path(__file__).resolve().parents:
        if (parent / "results").is_dir() or (parent / "pyproject.toml").is_file():
            return parent / "results"
    return Path.cwd() / "results"


def build_grid(
    pam_files: list[str],
    sam_files: list[str],
    scale: int,
    page_size: int,
) -> dict[str, list[JobSpec]]:
    """experiment id (``pam/uniform``, ``sam/diagonal`` …) -> its specs."""
    grid: dict[str, list[JobSpec]] = {}
    for name in pam_files:
        grid[f"pam/{name}"] = pam_file_specs(name, scale, page_size=page_size)
    for name in sam_files:
        grid[f"sam/{name}"] = sam_file_specs(name, scale, page_size=page_size)
    return grid


def compare_outcomes(
    reference: dict[str, ExperimentOutcome],
    candidate: dict[str, ExperimentOutcome],
) -> list[str]:
    """Differences between two grid runs ([] when identical).

    Compares everything the paper's tables are made of — per-structure
    build metrics, per-query-type costs and result counts — plus the
    exact :class:`~repro.core.stats.AccessStats` totals that the run
    reports carry.  Wall-clock timers are excluded by design.
    """
    problems: list[str] = []
    if list(reference) != list(candidate):
        return [f"experiment sets differ: {list(reference)} vs {list(candidate)}"]
    for exp_id, ref in reference.items():
        out = candidate[exp_id]
        if list(ref.results) != list(out.results):
            problems.append(
                f"{exp_id}: structure order {list(out.results)} != {list(ref.results)}"
            )
            continue
        for name, ref_result in ref.results.items():
            result = out.results[name]
            where = f"{exp_id}:{name}"
            if ref_result.metrics.as_dict() != result.metrics.as_dict():
                problems.append(f"{where}: build metrics differ")
            if ref_result.query_costs != result.query_costs:
                problems.append(f"{where}: query costs differ")
            if ref_result.query_results != result.query_results:
                problems.append(f"{where}: query result counts differ")
            if ref.totals[name] != out.totals[name]:
                problems.append(
                    f"{where}: access totals {out.totals[name]} != {ref.totals[name]}"
                )
    return problems


def _run_grid(
    grid: dict[str, list[JobSpec]],
    *,
    workers: int,
    cache: BuildCache | None,
) -> tuple[dict[str, ExperimentOutcome], float]:
    """Run every experiment of the grid, returning outcomes and seconds.

    The whole grid is submitted as one flat spec list so the pool stays
    saturated across file boundaries; outcomes are re-grouped afterwards.
    """
    flat: list[JobSpec] = []
    slices: dict[str, tuple[int, int]] = {}
    for exp_id, specs in grid.items():
        slices[exp_id] = (len(flat), len(flat) + len(specs))
        flat.extend(specs)
    started = time.perf_counter()
    job_results = run_specs(flat, workers=workers, cache=cache)
    seconds = time.perf_counter() - started
    outcomes = {
        exp_id: merge_outcomes(job_results[lo:hi])
        for exp_id, (lo, hi) in slices.items()
    }
    return outcomes, seconds


def main(argv: list[str] | None = None) -> int:
    from repro.workloads.distributions import POINT_FILES
    from repro.workloads.rect_distributions import RECT_FILES

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.bench",
        description="Time the full paper grid serially vs in parallel.",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, os.cpu_count() or 2),
        help="process count for the parallel pass (default: cpu count)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="records per data file (default: REPRO_BENCH_SCALE or 10000)",
    )
    parser.add_argument("--page-size", type=int, default=512)
    parser.add_argument(
        "--pam-files",
        default=",".join(POINT_FILES),
        help="comma-separated point files (default: all seven)",
    )
    parser.add_argument(
        "--sam-files",
        default=",".join(RECT_FILES),
        help="comma-separated rectangle files (default: all five)",
    )
    parser.add_argument(
        "--no-serial",
        action="store_true",
        help="skip the serial reference pass (no speedup, no verification)",
    )
    parser.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the warm-cache replay pass",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="build-cache directory (default: REPRO_BUILD_CACHE or "
        "results/.build_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="run the parallel pass uncached"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON (default: results/BENCH_PARALLEL.json)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="record the run to the performance ledger (a path, or '1' for "
        "results/LEDGER.jsonl; default: off unless REPRO_LEDGER is set)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else testbed_scale()
    pam_files = [f for f in args.pam_files.split(",") if f]
    sam_files = [f for f in args.sam_files.split(",") if f]
    grid = build_grid(pam_files, sam_files, scale, args.page_size)
    jobs = sum(len(specs) for specs in grid.values())
    print(
        f"grid: {len(pam_files)} point files x PAMs + {len(sam_files)} "
        f"rectangle files x SAMs = {jobs} jobs at scale {scale}"
    )

    if args.no_cache:
        cache = None
    elif args.cache is not None:
        cache = BuildCache(args.cache)
    else:
        cache = cache_from_env()

    serial: dict[str, ExperimentOutcome] | None = None
    serial_seconds = None
    if not args.no_serial:
        serial, serial_seconds = _run_grid(grid, workers=1, cache=None)
        print(f"serial   ({jobs} jobs, 1 process):   {serial_seconds:8.2f}s")

    cold_hits = cache.hits if cache is not None else 0
    parallel, parallel_seconds = _run_grid(grid, workers=args.workers, cache=cache)
    cache_hits = (cache.hits - cold_hits) if cache is not None else 0
    print(
        f"parallel ({jobs} jobs, {args.workers} workers): {parallel_seconds:8.2f}s"
        + (f"  [{cache_hits} cache hits]" if cache_hits else "")
    )

    verified = None
    if serial is not None:
        problems = compare_outcomes(serial, parallel)
        verified = not problems
        for problem in problems:
            print(f"MISMATCH: {problem}")
        print(
            "verification: parallel outcome "
            + ("identical to serial" if verified else "DIFFERS from serial")
        )

    warm_seconds = None
    if cache is not None and not args.no_warm:
        _, warm_seconds = _run_grid(grid, workers=args.workers, cache=cache)
        print(f"warm cache replay:                  {warm_seconds:8.2f}s")

    speedup = (
        serial_seconds / parallel_seconds
        if serial_seconds is not None and parallel_seconds > 0
        else None
    )
    document = {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "page_size": args.page_size,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "pam_files": pam_files,
        "sam_files": sam_files,
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "warm_cache_seconds": warm_seconds,
        "warm_cache_speedup": (
            serial_seconds / warm_seconds
            if serial_seconds is not None and warm_seconds
            else None
        ),
        "cache": (
            {
                "root": str(cache.root),
                "hits": cache.hits,
                "misses": cache.misses,
                "stores": cache.stores,
            }
            if cache is not None
            else None
        ),
        "verified": verified,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    output = Path(args.output) if args.output else results_dir() / "BENCH_PARALLEL.json"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    from repro.obs.ledger import entry_from_bench_document, resolve_ledger

    ledger = resolve_ledger(args.ledger)
    if ledger is not None:
        entry = ledger.record(entry_from_bench_document(document, path=str(output)))
        print(f"ledger: recorded {entry.run_id} -> {ledger.path}")
    if speedup is not None:
        print(f"speedup: {speedup:.2f}x over serial")
    return 0 if verified in (True, None) else 1


if __name__ == "__main__":
    raise SystemExit(main())
