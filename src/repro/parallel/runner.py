"""The process-pool experiment runner and its deterministic merge.

The paper's comparison grid is embarrassingly parallel: every
``(data file, structure)`` cell builds on its own
:class:`~repro.storage.pagestore.PageStore` from fixed seeds, so cells
share no state whatsoever.  :func:`run_specs` fans the cells out over a
``spawn``-based :class:`~concurrent.futures.ProcessPoolExecutor`
(consulting the :class:`~repro.parallel.cache.BuildCache` first) and
:func:`merge_outcomes` folds the per-job results back **in spec order**,
so the merged tables, totals, timers and tracer spans are identical to
a serial run regardless of which worker finished first.

``workers=1`` executes the specs inline in the calling process — no
pool, no pickling — which keeps the default bench path bit-identical
to the historical serial code.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.comparison import MethodResult
from repro.core.stats import AccessStats
from repro.obs.tracer import Span
from repro.parallel.cache import BuildCache, cache_from_env
from repro.parallel.jobs import (
    PAM_SEED,
    SAM_SEED,
    JobResult,
    JobSpec,
    data_digest,
    execute_job,
    pam_file_specs,
    sam_file_specs,
)

__all__ = [
    "ExperimentOutcome",
    "default_workers",
    "run_specs",
    "merge_outcomes",
    "run_pam_file",
    "run_sam_file",
    "run_parallel_experiment",
    "traced_parallel_run",
]


def default_workers(env: str = "REPRO_BENCH_WORKERS") -> int:
    """Worker count from the environment (1 = serial, the default)."""
    try:
        return max(1, int(os.environ.get(env, "1")))
    except ValueError:
        return 1


@dataclass
class ExperimentOutcome:
    """A serial-equivalent experiment result, merged from jobs.

    ``results`` preserves the structure order of the submitted specs
    (with derived rows such as BUDDY+ directly after their parent), so
    tables rendered from it match the serial loop's ordering exactly.
    """

    results: dict[str, MethodResult] = field(default_factory=dict)
    totals: dict[str, AccessStats] = field(default_factory=dict)
    timers: dict[str, float] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)

    @property
    def records(self) -> int:
        """Records in the underlying data file (from the build metrics)."""
        for result in self.results.values():
            return result.metrics.records
        return 0

    @property
    def snapshots(self) -> dict[str, dict]:
        """Per-structure snapshots carried by the merged results.

        Results replayed from a build cache written before snapshots
        existed are simply absent.
        """
        return {
            name: result.snapshot
            for name, result in self.results.items()
            if getattr(result, "snapshot", None) is not None
        }

    def to_report(
        self,
        *,
        label: str,
        kind: str,
        page_size: int,
        seed: int | None,
        meta: dict | None = None,
    ):
        """Assemble the run's :class:`~repro.obs.export.RunReport`."""
        from repro.obs.export import build_run_report

        return build_run_report(
            label=label,
            kind=kind,
            scale=self.records,
            page_size=page_size,
            seed=seed,
            results=self.results,
            totals=self.totals,
            spans=self.spans,
            timers=self.timers,
            meta=meta,
        )


def _resolve_cache(cache) -> BuildCache | None:
    if cache == "auto":
        return cache_from_env()
    return cache


def run_specs(
    specs: Sequence[JobSpec],
    *,
    workers: int = 1,
    cache: BuildCache | str | None = None,
    data: Sequence | None = None,
) -> list[JobResult]:
    """Execute the specs — cached, pooled, or inline — in spec order.

    ``cache`` is a :class:`BuildCache`, ``None`` (no caching) or the
    string ``"auto"`` (resolve from ``REPRO_BUILD_CACHE``).  ``data``
    ships an inline record sequence to every spec whose ``file`` is
    ``None``.  The returned list is ordered like ``specs`` no matter
    how execution interleaved.
    """
    cache = _resolve_cache(cache)
    outcomes: dict[int, JobResult] = {}
    pending: list[tuple[int, JobSpec]] = []
    for i, spec in enumerate(specs):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            outcomes[i] = cached
        else:
            pending.append((i, spec))

    if pending:
        job_data = [data if spec.file is None else None for _, spec in pending]
        if workers > 1 and len(pending) > 1:
            import multiprocessing

            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)), mp_context=context
            ) as pool:
                futures = [
                    pool.submit(execute_job, spec, payload)
                    for (_, spec), payload in zip(pending, job_data)
                ]
                finished = [future.result() for future in futures]
        else:
            finished = [
                execute_job(spec, payload)
                for (_, spec), payload in zip(pending, job_data)
            ]
        for (i, spec), result in zip(pending, finished):
            outcomes[i] = result
            if cache is not None:
                cache.store(spec, result)
        _merge_job_timelines()

    return [outcomes[i] for i in range(len(specs))]


def _merge_job_timelines() -> None:
    """Fold per-job flight-recorder files into one merged timeline.

    Runs only when ``REPRO_TELEMETRY`` + ``REPRO_TELEMETRY_DIR`` are
    both set (each executed job then recorded a
    ``timeline-<label>.jsonl``).  Sources are taken in sorted filename
    order — a pure function of the job labels — so the merged document
    is deterministic no matter how the pool interleaved the workers.
    """
    from repro.obs.telemetry import (
        TIMELINE_DIR_ENV,
        merge_timelines,
        telemetry_enabled,
    )

    raw = os.environ.get(TIMELINE_DIR_ENV, "").strip()
    if not raw or not telemetry_enabled():
        return
    directory = Path(raw)
    merged = directory / "timeline-merged.jsonl"
    parts = sorted(
        path
        for path in directory.glob("timeline-*.jsonl")
        if path != merged
    )
    if parts:
        merge_timelines(parts, merged)


def merge_outcomes(job_results: Sequence[JobResult]) -> ExperimentOutcome:
    """Fold job results into one serial-equivalent outcome, in order."""
    outcome = ExperimentOutcome()
    for job in job_results:
        for row in job.structures:
            outcome.results[row.name] = row.result
            outcome.totals[row.name] = row.totals
            outcome.timers[f"{row.name}/build"] = row.build_seconds
            outcome.timers[f"{row.name}/queries"] = row.query_seconds
        outcome.spans.extend(job.spans)
    return outcome


def run_pam_file(
    file_name: str,
    *,
    scale: int,
    workers: int = 1,
    page_size: int = 512,
    seed: int = PAM_SEED,
    structures: Sequence[str] | None = None,
    cache: BuildCache | str | None = None,
) -> ExperimentOutcome:
    """The full standard-PAM comparison on one data file (plus BUDDY+)."""
    specs = pam_file_specs(
        file_name, scale, structures=structures, page_size=page_size, seed=seed
    )
    return merge_outcomes(run_specs(specs, workers=workers, cache=cache))


def run_sam_file(
    file_name: str,
    *,
    scale: int,
    workers: int = 1,
    page_size: int = 512,
    seed: int = SAM_SEED,
    structures: Sequence[str] | None = None,
    cache: BuildCache | str | None = None,
) -> ExperimentOutcome:
    """The full standard-SAM comparison on one rectangle file."""
    specs = sam_file_specs(
        file_name, scale, structures=structures, page_size=page_size, seed=seed
    )
    return merge_outcomes(run_specs(specs, workers=workers, cache=cache))


def run_parallel_experiment(
    kind: str,
    structures: Sequence[str],
    data: Sequence,
    *,
    seed: int | None = None,
    page_size: int = 512,
    workers: int = 1,
    cache: BuildCache | str | None = None,
) -> ExperimentOutcome:
    """Fan an in-memory experiment out by structure name.

    The counterpart of :func:`repro.core.comparison.run_pam_experiment`
    for ad-hoc data: records are shipped to the workers and the cache
    key uses their content digest instead of a file name.
    """
    digest = data_digest(data)
    specs = [
        JobSpec(
            kind=kind,
            structure=name,
            scale=len(data),
            page_size=page_size,
            seed=seed,
            digest=digest,
        )
        for name in structures
    ]
    return merge_outcomes(run_specs(specs, workers=workers, cache=cache, data=data))


def traced_parallel_run(
    kind: str,
    structures: Sequence[str],
    data: Sequence,
    *,
    seed: int | None = None,
    label: str = "parallel run",
    page_size: int = 512,
    workers: int = 1,
    cache: BuildCache | str | None = None,
    meta: dict | None = None,
    ledger=None,
):
    """Parallel counterpart of :func:`repro.obs.runner.traced_pam_run`.

    Returns ``(results, report)`` with the same shapes as the serial
    traced runners, so callers can switch on a worker count alone.
    The merged spans and timers are bit-identical to a serial run, so
    a ledger entry or profile derived here matches one from workers=1.
    """
    outcome = run_parallel_experiment(
        kind,
        structures,
        data,
        seed=seed,
        page_size=page_size,
        workers=workers,
        cache=cache,
    )
    report = outcome.to_report(
        label=label, kind=kind, page_size=page_size, seed=seed, meta=meta
    )
    from repro.obs.runner import record_to_ledger

    record_to_ledger(report, ledger=ledger, workers=workers)
    return outcome.results, report
