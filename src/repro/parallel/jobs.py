"""Picklable job specs and the worker-side executor.

One :class:`JobSpec` names one independent cell of the paper's
comparison grid — a ``(data file, structure)`` pair together with every
parameter that determines its outcome (scale, page size, query seed).
Specs carry *names*, never callables, so they cross a ``spawn`` process
boundary; the worker resolves the structure through the standard
testbed registries and regenerates the data file from its deterministic
generator.  :func:`execute_job` then replays exactly the serial bench
sequence — build, query files, and for BUDDY the derived BUDDY+ pack —
under a private :class:`~repro.obs.tracer.Tracer`, so the merged spans,
:class:`~repro.core.comparison.MethodResult` numbers and
:class:`~repro.core.stats.AccessStats` totals are identical to a
single-process run.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.core.comparison import (
    MethodResult,
    build_pam,
    build_sam,
    run_pam_queries,
    run_sam_queries,
)
from repro.core.stats import AccessStats
from repro.obs.tracer import Span, Tracer

__all__ = [
    "PAM_SEED",
    "SAM_SEED",
    "JobSpec",
    "StructureOutcome",
    "JobResult",
    "data_digest",
    "execute_job",
    "load_job_data",
    "resolve_factory",
    "pam_file_specs",
    "sam_file_specs",
]

#: Query seeds of the serial benches (`run_pam_queries`/`run_sam_queries`).
PAM_SEED = 101
SAM_SEED = 107


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines one build+query cell, by value.

    ``file`` names a registered data file (regenerated in the worker);
    for ad-hoc data shipped inline, ``file`` is ``None`` and
    ``digest`` content-addresses the pickled records instead, so the
    build cache stays sound either way.  ``derive_packed`` makes the
    worker also produce the BUDDY+ row (pack + re-query on the same
    store), which the serial bench derives from the built BUDDY file.
    """

    kind: str  # "pam" | "sam"
    structure: str
    scale: int
    page_size: int = 512
    seed: int | None = None
    file: str | None = None
    digest: str | None = None
    derive_packed: bool = False

    def __post_init__(self):
        if self.kind not in ("pam", "sam"):
            raise ValueError(f"kind must be 'pam' or 'sam', not {self.kind!r}")
        if self.file is None and self.digest is None:
            raise ValueError("a JobSpec needs a file name or a data digest")

    @property
    def query_seed(self) -> int:
        return self.seed if self.seed is not None else (
            PAM_SEED if self.kind == "pam" else SAM_SEED
        )

    def cache_fields(self) -> dict:
        """The key material for :class:`~repro.parallel.cache.BuildCache`."""
        return {
            "kind": self.kind,
            "structure": self.structure,
            "scale": self.scale,
            "page_size": self.page_size,
            "seed": self.query_seed,
            "file": self.file,
            "digest": self.digest,
            "derive_packed": self.derive_packed,
        }

    def label(self) -> str:
        return f"{self.kind}:{self.file or self.digest[:8]}:{self.structure}"


@dataclass
class StructureOutcome:
    """One table row produced by a job: result, totals and timings."""

    name: str
    result: MethodResult
    totals: AccessStats
    build_seconds: float
    query_seconds: float


@dataclass
class JobResult:
    """Everything a worker sends back for one spec (all picklable)."""

    spec: JobSpec
    structures: list[StructureOutcome]
    spans: list[Span] = field(default_factory=list)


def data_digest(data: Sequence) -> str:
    """Content address of an inline data sequence (points or rects)."""
    return hashlib.sha256(
        pickle.dumps(list(data), protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def resolve_factory(kind: str, structure: str):
    """Look a structure name up in the standard testbed registries.

    Parallel execution ships names, not closures, so only registered
    structures can run in workers; anything else raises a ``KeyError``
    that lists the valid names.
    """
    from repro.core.testbed import standard_pam_factories, standard_sam_factories

    registry = standard_pam_factories() if kind == "pam" else standard_sam_factories()
    try:
        return registry[structure]
    except KeyError:
        raise KeyError(
            f"unknown {kind.upper()} structure {structure!r}; parallel jobs can "
            f"only run registered structures {sorted(registry)}"
        ) from None


def load_job_data(spec: JobSpec):
    """Regenerate the spec's data file from its deterministic generator."""
    if spec.file is None:
        raise ValueError(f"spec {spec.label()} carries inline data, nothing to load")
    if spec.kind == "pam":
        from repro.workloads.distributions import generate_point_file

        return generate_point_file(spec.file, spec.scale)
    from repro.workloads.rect_distributions import generate_rect_file

    return generate_rect_file(spec.file, spec.scale)


def _job_telemetry(spec: JobSpec):
    """The process-wide telemetry plus (optionally) a per-job recorder.

    Workers inherit ``REPRO_TELEMETRY`` through the environment, so a
    parallel run instruments exactly like a serial one.  When
    ``REPRO_TELEMETRY_DIR`` also names a directory, each job records
    its own ``timeline-<label>.jsonl`` flight-recorder file there —
    label-derived names are deterministic, so the runner can merge the
    per-worker timelines into one reproducible document afterwards.
    """
    from repro.obs.telemetry import (
        TIMELINE_DIR_ENV,
        FlightRecorder,
        active_telemetry,
    )

    telem = active_telemetry()
    if telem is None:
        return None, None
    raw = os.environ.get(TIMELINE_DIR_ENV, "").strip()
    if not raw:
        return telem, None
    safe = "".join(
        ch if ch.isalnum() or ch in "+-." else "_" for ch in spec.label()
    )
    recorder = FlightRecorder(
        telem,
        Path(raw) / f"timeline-{safe}.jsonl",
        interval_seconds=0.1,
        label=spec.label(),
        worker=safe,
    )
    return telem, recorder.start()


def execute_job(spec: JobSpec, data: Sequence | None = None) -> JobResult:
    """Run one build+query cell and return its complete outcome.

    This is the function a pool worker runs; it mirrors the serial
    bench loop of ``benchmarks/conftest.py`` step for step (same
    builders, same query seeds, same BUDDY+ derivation and same tracer
    context labels), which is what makes the merged outcome
    indistinguishable from a serial session.

    Each outcome's :class:`MethodResult` carries the structure's
    post-build snapshot (:mod:`repro.obs.structure`); snapshots are
    uncharged walks, so totals stay identical to pre-snapshot runs.
    With ``REPRO_EXPLAIN`` set, the worker also writes one
    :mod:`repro.obs.explain` trace per structure — workers inherit the
    environment, so a parallel run traces exactly like a serial one
    (structures replayed from a warm build cache skip execution and
    write no trace).
    """
    from repro.core.comparison import _explain_dir, _trace_path

    if data is None:
        data = load_job_data(spec)
    factory = resolve_factory(spec.kind, spec.structure)
    build = build_pam if spec.kind == "pam" else build_sam
    run_queries = run_pam_queries if spec.kind == "pam" else run_sam_queries
    explain_to = _explain_dir()
    if explain_to is not None and spec.file:
        # One subdirectory per data file, mirroring the serial bench:
        # without it, each file's traces would overwrite the last.
        explain_to = explain_to / spec.file

    def recorder(name: str):
        if explain_to is None:
            return None
        from repro.obs.explain import ExplainRecorder

        return ExplainRecorder(name)

    telem, flight = _job_telemetry(spec)
    try:
        tracer = Tracer()
        tracer.set_context(structure=spec.structure)
        started = time.perf_counter()
        method = build(factory, data, page_size=spec.page_size, tracer=tracer)
        build_seconds = time.perf_counter() - started
        explain = recorder(spec.structure)
        started = time.perf_counter()
        result = run_queries(
            method, seed=spec.query_seed, tracer=tracer, explain=explain
        )
        query_seconds = time.perf_counter() - started
        if telem is not None:
            telem.observe("bench.build_seconds", build_seconds)
            telem.observe("bench.query_seconds", query_seconds)
        result.name = spec.structure
        result.snapshot = method.snapshot()
        if explain is not None:
            explain.save(_trace_path(explain_to, spec.kind, spec.structure))
        structures = [
            StructureOutcome(
                spec.structure,
                result,
                method.store.stats.snapshot(),
                build_seconds,
                query_seconds,
            )
        ]

        if spec.derive_packed:
            # BUDDY+ is not a separate build: pack the just-built BUDDY
            # file and re-run the query files on the same store, charging
            # only the delta — exactly how the serial bench derives the
            # row.
            before = method.store.stats.snapshot()
            tracer.set_context(structure=f"{spec.structure}+", op="pack")
            started = time.perf_counter()
            method.pack()
            pack_seconds = time.perf_counter() - started
            explain = recorder(f"{spec.structure}+")
            started = time.perf_counter()
            packed = run_queries(
                method, seed=spec.query_seed, tracer=tracer, explain=explain
            )
            packed_seconds = time.perf_counter() - started
            if telem is not None:
                telem.observe("bench.build_seconds", pack_seconds)
                telem.observe("bench.query_seconds", packed_seconds)
            packed.name = f"{spec.structure}+"
            packed.snapshot = method.snapshot()
            if explain is not None:
                explain.save(_trace_path(explain_to, spec.kind, packed.name))
            structures.append(
                StructureOutcome(
                    packed.name,
                    packed,
                    method.store.stats - before,
                    pack_seconds,
                    packed_seconds,
                )
            )

        return JobResult(
            spec=spec, structures=structures, spans=tracer.finish()
        )
    finally:
        if flight is not None:
            flight.stop()


def pam_file_specs(
    file_name: str,
    scale: int,
    *,
    structures: Sequence[str] | None = None,
    page_size: int = 512,
    seed: int = PAM_SEED,
) -> list[JobSpec]:
    """One spec per standard PAM on ``file_name`` (BUDDY derives BUDDY+)."""
    from repro.core.testbed import standard_pam_factories

    names = list(structures) if structures is not None else list(
        standard_pam_factories()
    )
    return [
        JobSpec(
            kind="pam",
            structure=name,
            scale=scale,
            page_size=page_size,
            seed=seed,
            file=file_name,
            derive_packed=(name == "BUDDY"),
        )
        for name in names
    ]


def sam_file_specs(
    file_name: str,
    scale: int,
    *,
    structures: Sequence[str] | None = None,
    page_size: int = 512,
    seed: int = SAM_SEED,
) -> list[JobSpec]:
    """One spec per standard SAM on ``file_name``."""
    from repro.core.testbed import standard_sam_factories

    names = list(structures) if structures is not None else list(
        standard_sam_factories()
    )
    return [
        JobSpec(
            kind="sam",
            structure=name,
            scale=scale,
            page_size=page_size,
            seed=seed,
            file=file_name,
        )
        for name in names
    ]
