"""Parallel experiment execution with a persistent build cache.

The paper's Part I/II comparison is a grid of independent
``(data file, structure)`` cells — each builds its own
:class:`~repro.storage.pagestore.PageStore` from fixed seeds.  This
package exploits that independence three ways:

* :mod:`repro.parallel.jobs` — picklable :class:`JobSpec` descriptions
  of one cell (names and seeds, never callables, so they survive a
  ``spawn`` boundary) and the worker-side :func:`execute_job` that
  replays the serial bench sequence exactly.
* :mod:`repro.parallel.runner` — :func:`run_specs` fans specs out over
  a process pool and :func:`merge_outcomes` folds job results back in
  deterministic spec order, yielding tables, totals, timers and tracer
  spans identical to a serial session.
* :mod:`repro.parallel.cache` — a content-addressed on-disk
  :class:`BuildCache` keyed by the spec plus a fingerprint of every
  ``repro`` source file, so repeated bench sessions skip finished
  cells entirely and code edits invalidate stale entries.
* :mod:`repro.parallel.bench` — ``python -m repro.parallel.bench`` runs
  the whole paper grid serially and in parallel, verifies the outputs
  match, and records the wall-clock speedup in
  ``results/BENCH_PARALLEL.json``.

The benches opt in via ``REPRO_BENCH_WORKERS=N`` (default 1 keeps the
bit-identical serial path) and place the cache via
``REPRO_BUILD_CACHE`` (a directory, or ``off`` to disable).
"""

from repro.parallel.cache import BuildCache, cache_from_env, code_fingerprint
from repro.parallel.jobs import (
    JobResult,
    JobSpec,
    StructureOutcome,
    execute_job,
    pam_file_specs,
    sam_file_specs,
)
from repro.parallel.runner import (
    ExperimentOutcome,
    default_workers,
    merge_outcomes,
    run_pam_file,
    run_parallel_experiment,
    run_sam_file,
    run_specs,
    traced_parallel_run,
)

__all__ = [
    "BuildCache",
    "ExperimentOutcome",
    "JobResult",
    "JobSpec",
    "StructureOutcome",
    "cache_from_env",
    "code_fingerprint",
    "default_workers",
    "execute_job",
    "merge_outcomes",
    "pam_file_specs",
    "run_pam_file",
    "run_parallel_experiment",
    "run_sam_file",
    "run_specs",
    "sam_file_specs",
    "traced_parallel_run",
]
