"""Bench support: paper-style table formatting and experiment runners."""

from repro.bench.tables import format_metrics_table, format_normalised_table

__all__ = ["format_metrics_table", "format_normalised_table"]
