"""The paper's published numbers, for side-by-side reporting.

Transcribed from the tables of §4, §5 and §8.  Query figures in the PAM
tables are percentages of GRID (= 100); build figures are absolute.  The
SAM tables are absolute disk accesses per query.  ``None`` marks values
the paper does not report (e.g. insert cost for the derived BUDDY+).
"""

from __future__ import annotations

__all__ = [
    "PAM_TABLE_PAPER",
    "PAM_QUERY_AVERAGE_PAPER",
    "PAM_SUMMARY_PAPER",
    "SAM_TABLE_PAPER",
    "SAM_SUMMARY_PAPER",
]

#: §4 tables: distribution -> structure -> (range .1%, range 1%, range 10%,
#: pm x, pm y, stor, dir/data, insert, h).
PAM_TABLE_PAPER = {
    "uniform": {
        "HB": (113.3, 104.3, 103.9, 137.3, 92.7, 69.9, 3.53, 3.29, 3),
        "BANG": (113.9, 105.8, 101.9, 110.6, 103.5, 70.1, 2.35, 3.06, 3),
        "GRID": (100.0, 100.0, 100.0, 100.0, 100.0, 70.2, 1.12, 2.90, 2),
        "BUDDY": (101.7, 102.7, 101.2, 108.3, 100.0, 70.2, 2.28, 3.19, 2),
        "BUDDY+": (101.2, 100.5, 96.8, 107.4, 99.6, 74.5, 2.42, None, 2),
    },
    "sinus": {
        "HB": (105.4, 103.4, 100.2, 121.2, 97.5, 69.1, 3.77, 3.29, 3),
        "BANG": (139.2, 109.5, 100.1, 111.9, 107.3, 69.6, 2.33, 2.95, 3),
        "GRID": (100.0, 100.0, 100.0, 100.0, 100.0, 68.2, 1.67, 2.97, 2),
        "BUDDY": (97.1, 98.4, 98.3, 92.2, 91.9, 68.8, 2.10, 3.21, 2),
        "BUDDY+": (96.6, 95.1, 93.8, 89.8, 90.3, 72.9, 2.22, None, 2),
    },
    "bit": {
        "HB": (77.1, 61.2, 59.2, 52.7, 50.8, 69.5, 3.72, 3.28, 3),
        "BANG": (145.0, 84.3, 64.0, 44.8, 64.5, 67.3, 2.42, 2.96, 3),
        "GRID": (100.0, 100.0, 100.0, 100.0, 100.0, 42.4, 2.75, 3.03, 2),
        "BUDDY": (115.6, 105.6, 99.2, 48.4, 69.7, 43.0, 5.10, 3.62, 3),
        "BUDDY+": (105.5, 89.6, 67.5, 46.1, 66.5, 71.0, 8.42, None, 3),
    },
    "x_parallel": {
        "HB": (94.9, 89.2, 91.1, 132.4, 59.6, 69.6, 3.62, 3.29, 3),
        "BANG": (126.5, 100.1, 95.8, 83.6, 114.7, 65.4, 2.19, 3.03, 3),
        "GRID": (100.0, 100.0, 100.0, 100.0, 100.0, 62.9, 3.77, 3.01, 2),
        "BUDDY": (74.5, 83.1, 92.3, 72.8, 50.4, 67.2, 2.45, 3.21, 2),
        "BUDDY+": (72.4, 78.5, 87.3, 72.6, 50.0, 71.1, 2.60, None, 2),
    },
    "cluster": {
        # Only the side table (stor, dir/data, insert, h) is printed in
        # the paper for this figure; query bars are in FIG-CLUST.
        "HB": (None, None, None, None, None, 69.2, 3.88, 2.78, 3),
        "BANG": (None, None, None, None, None, 68.8, 2.30, 2.56, 3),
        "GRID": (None, None, None, None, None, 62.1, 2.24, 2.44, 2),
        "BUDDY": (None, None, None, None, None, 67.1, 4.00, 2.66, 3),
        "BUDDY+": (None, None, None, None, None, 71.5, 4.25, None, 3),
    },
}

#: Table 5.2: distribution -> structure -> unweighted average over the
#: five query types, % of GRID.
PAM_QUERY_AVERAGE_PAPER = {
    "uniform": {"HB": 110.3, "BANG": 107.1, "BANG*": 100.2, "GRID": 100.0, "BUDDY": 102.8, "BUDDY+": 101.1},
    "sinus": {"HB": 105.5, "BANG": 113.6, "BANG*": 108.0, "GRID": 100.0, "BUDDY": 95.6, "BUDDY+": 93.1},
    "bit": {"HB": 60.2, "BANG": 80.5, "BANG*": 72.8, "GRID": 100.0, "BUDDY": 87.7, "BUDDY+": 75.0},
    "x_parallel": {"HB": 93.4, "BANG": 104.1, "BANG*": 99.8, "GRID": 100.0, "BUDDY": 74.6, "BUDDY+": 72.2},
    "real": {"HB": 127.4, "BANG": 135.0, "BANG*": 131.8, "GRID": 100.0, "BUDDY": 99.4, "BUDDY+": 97.6},
    "diagonal": {"HB": 105.0, "BANG": 78.4, "BANG*": 68.2, "GRID": 100.0, "BUDDY": 28.4, "BUDDY+": 27.8},
    "cluster": {"HB": 174.2, "BANG": 99.4, "BANG*": 90.1, "GRID": 100.0, "BUDDY": 73.0, "BUDDY+": 69.2},
}

#: Table 5.1: structure -> (query average, stor, insert), averaged over
#: all seven distributions.
PAM_SUMMARY_PAPER = {
    "HB": (110.9, 68.6, 2.80),
    "BANG": (102.6, 67.9, 2.43),
    "BANG*": (95.8, 67.9, 2.49),
    "GRID": (100.0, 58.3, 2.56),
    "BUDDY": (80.2, 64.9, 2.78),
    "BUDDY+": (76.6, 72.5, None),
}

#: §8 tables: rect file -> structure -> (point, intersection, enclosure,
#: containment) in absolute disk accesses per query.
SAM_TABLE_PAPER = {
    "gaussian_slim": {
        "R-Tree": (189.4, 472.0, 34.8, 472.0),
        "BANG": (167.7, 401.4, 41.7, 37.1),
        "BUDDY": (159.8, 394.9, 30.4, 34.5),
        "PLOP": (273.6, 637.3, 55.5, 637.3),
    },
    "uniform_small": {
        "R-Tree": (55.9, 195.8, 15.0, 195.8),
        "BANG": (52.5, 177.1, 17.4, 61.1),
        "BUDDY": (37.0, 162.8, 7.2, 58.5),
        "PLOP": (41.4, 172.9, 6.1, 172.9),
    },
    "gaussian_square": {
        "R-Tree": (86.5, 266.7, 14.0, 266.7),
        "BANG": (68.8, 236.3, 16.0, 68.2),
        "BUDDY": (57.6, 232.6, 6.4, 65.7),
        "PLOP": (97.2, 299.2, 6.8, 299.2),
    },
    "uniform_large": {
        "R-Tree": (742.8, 988.2, 518.7, 988.2),
        "BANG": (388.6, 603.8, 239.4, 20.2),
        "BUDDY": (380.2, 593.3, 231.2, 18.0),
        "PLOP": (783.6, 965.4, 613.0, 965.4),
    },
    "diagonal": {
        "R-Tree": (283.4, 568.2, 163.7, 568.2),
        "BANG": (187.8, 413.3, 97.2, 25.6),
        "BUDDY": (187.5, 421.0, 92.9, 22.9),
        "PLOP": (435.2, 748.1, 245.5, 748.1),
    },
}

#: §8 summary: structure -> (point, intersection, enclosure, containment,
#: stor, insert); query figures are % of the R-tree.
SAM_SUMMARY_PAPER = {
    "R-Tree": (100.0, 100.0, 100.0, 100.0, 67.6, 110.3),
    "BANG": (76.1, 79.5, 91.2, 14.3, 68.5, 2.88),
    "BUDDY": (66.9, 77.6, 56.5, 13.5, 65.5, 2.92),
    "PLOP": (98.1, 113.0, 103.4, 113.0, 61.0, 2.74),
}
