"""Paper-style table rendering for the benches and EXPERIMENTS.md.

The PAM tables print one row per structure with the five query types as
percentages of GRID (= 100.0) followed by ``stor``, ``dir/data``,
``insert`` and ``h`` — the exact layout of the tables in §4.  The SAM
tables print absolute disk-access averages per query type, as in §8.
"""

from __future__ import annotations

from repro.core.comparison import MethodResult

__all__ = ["format_normalised_table", "format_absolute_table", "format_metrics_table"]


def format_normalised_table(
    title: str,
    results: dict[str, MethodResult],
    normalised: dict[str, dict[str, float]],
    query_order: tuple[str, ...],
) -> str:
    """One §4-style table: normalised query costs plus build metrics."""
    header = (
        f"{'':10s}" + "".join(f"{label:>12s}" for label in query_order)
        + f"{'stor':>8s}{'dir/data':>10s}{'insert':>8s}{'h':>4s}"
    )
    lines = [title, header]
    for name, result in results.items():
        metrics = result.metrics
        row = f"{name:10s}" + "".join(
            f"{normalised[name][label]:12.1f}" for label in query_order
        )
        row += (
            f"{metrics.storage_utilization:8.1f}"
            f"{metrics.dir_data_ratio:10.2f}"
            f"{metrics.insert_cost:8.2f}"
            f"{metrics.height:4d}"
        )
        lines.append(row)
    return "\n".join(lines)


def format_absolute_table(
    title: str,
    results: dict[str, MethodResult],
    query_order: tuple[str, ...],
) -> str:
    """One §8-style table: absolute average disk accesses per query."""
    header = f"{'':10s}" + "".join(f"{label:>14s}" for label in query_order)
    lines = [title, header]
    for name, result in results.items():
        row = f"{name:10s}" + "".join(
            f"{result.query_costs[label]:14.1f}" for label in query_order
        )
        lines.append(row)
    return "\n".join(lines)


def format_metrics_table(title: str, results: dict[str, MethodResult]) -> str:
    """Build-metric columns only (used by the summary tables)."""
    header = f"{'':10s}{'stor':>8s}{'dir/data':>10s}{'insert':>8s}{'h':>4s}{'pages':>8s}"
    lines = [title, header]
    for name, result in results.items():
        metrics = result.metrics
        lines.append(
            f"{name:10s}"
            f"{metrics.storage_utilization:8.1f}"
            f"{metrics.dir_data_ratio:10.2f}"
            f"{metrics.insert_cost:8.2f}"
            f"{metrics.height:4d}"
            f"{metrics.data_pages + metrics.directory_pages:8d}"
        )
    return "\n".join(lines)
