"""Access counters and the build metrics reported in the paper's tables."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

__all__ = ["AccessStats", "BuildMetrics"]


class AccessStats:
    """Mutable counters of page reads and writes, split by page kind."""

    __slots__ = ("data_reads", "data_writes", "dir_reads", "dir_writes")

    def __init__(
        self,
        data_reads: int = 0,
        data_writes: int = 0,
        dir_reads: int = 0,
        dir_writes: int = 0,
    ):
        self.data_reads = data_reads
        self.data_writes = data_writes
        self.dir_reads = dir_reads
        self.dir_writes = dir_writes

    def record_read(self, is_data: bool) -> None:
        """Count one page read (``is_data`` selects the counter)."""
        if is_data:
            self.data_reads += 1
        else:
            self.dir_reads += 1

    def record_write(self, is_data: bool) -> None:
        """Count one page write (``is_data`` selects the counter)."""
        if is_data:
            self.data_writes += 1
        else:
            self.dir_writes += 1

    @property
    def reads(self) -> int:
        """Total page reads."""
        return self.data_reads + self.dir_reads

    @property
    def writes(self) -> int:
        """Total page writes."""
        return self.data_writes + self.dir_writes

    @property
    def total(self) -> int:
        """Total page accesses (reads plus writes), the paper's unit."""
        return self.reads + self.writes

    def snapshot(self) -> "AccessStats":
        """An independent copy, for before/after deltas."""
        return AccessStats(
            self.data_reads, self.data_writes, self.dir_reads, self.dir_writes
        )

    def as_dict(self) -> dict[str, int]:
        """The four counters as a JSON-serialisable dict."""
        return {
            "data_reads": self.data_reads,
            "data_writes": self.data_writes,
            "dir_reads": self.dir_reads,
            "dir_writes": self.dir_writes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "AccessStats":
        """Inverse of :meth:`as_dict` (extra keys are ignored)."""
        return cls(
            data["data_reads"],
            data["data_writes"],
            data["dir_reads"],
            data["dir_writes"],
        )

    def __sub__(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(
            self.data_reads - other.data_reads,
            self.data_writes - other.data_writes,
            self.dir_reads - other.dir_reads,
            self.dir_writes - other.dir_writes,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessStats):
            return NotImplemented
        return (
            self.data_reads == other.data_reads
            and self.data_writes == other.data_writes
            and self.dir_reads == other.dir_reads
            and self.dir_writes == other.dir_writes
        )

    def __repr__(self) -> str:
        return (
            f"AccessStats(data_reads={self.data_reads}, data_writes={self.data_writes}, "
            f"dir_reads={self.dir_reads}, dir_writes={self.dir_writes})"
        )


@dataclass(frozen=True)
class BuildMetrics:
    """The per-structure figures of the paper's tables.

    Attributes
    ----------
    storage_utilization:
        ``stor`` — percentage of data-page record slots in use.
    dir_data_ratio:
        ``dir/data`` — directory pages per 100 data pages.
    insert_cost:
        ``insert`` — average page accesses (reads and writes) per
        insertion over the whole file build.
    height:
        ``h`` — height of the directory after the build (a pinned root
        or in-core first-level directory counts as level 0, matching the
        paper where GRID with its in-core first level reports ``h = 2``).
    records:
        Number of stored records.
    data_pages / directory_pages:
        Live page counts.
    pinned_pages:
        Pages held permanently in main memory (GRID's first level).
    """

    storage_utilization: float
    dir_data_ratio: float
    insert_cost: float
    height: int
    records: int
    data_pages: int
    directory_pages: int
    pinned_pages: int

    def as_dict(self) -> dict:
        """All figures as a JSON-serialisable dict."""
        return asdict(self)
