"""The paper's experiment driver.

Builds each access method on a data file, runs the query files, and
reports average disk accesses per query — optionally normalised to a
measuring stick (GRID = 100 % in Part I, the R-tree in Part II), which
is exactly how the paper's tables are laid out.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.core.stats import BuildMetrics
from repro.geometry.rect import Rect
from repro.query.driver import run_query_file
from repro.storage.factory import make_store
from repro.storage.pagestore import PageStore
from repro.workloads.queries import (
    RANGE_QUERY_VOLUMES,
    generate_partial_match_queries,
    generate_range_queries,
    generate_rect_query_workload,
)

__all__ = [
    "PAM_QUERY_TYPES",
    "SAM_QUERY_TYPES",
    "MethodResult",
    "measure",
    "build_pam",
    "build_sam",
    "run_pam_experiment",
    "run_sam_experiment",
    "normalise",
]

#: Query-type labels in the order of the paper's PAM tables.
PAM_QUERY_TYPES = ("range_0.1%", "range_1%", "range_10%", "pm_x", "pm_y")

#: Query-type labels in the order of the paper's SAM tables.
SAM_QUERY_TYPES = ("point", "intersection", "enclosure", "containment")


@dataclass
class MethodResult:
    """Build metrics and per-query-type average disk accesses."""

    name: str
    metrics: BuildMetrics
    query_costs: dict[str, float] = field(default_factory=dict)
    query_results: dict[str, int] = field(default_factory=dict)
    #: Structure snapshot (:mod:`repro.obs.structure`) taken after the
    #: build — occupancy, depth profile, redundancy metrics.  ``None``
    #: for results produced before snapshots existed.
    snapshot: dict | None = None

    @property
    def query_average(self) -> float:
        """Unweighted average over the query types (the paper's indicator)."""
        return sum(self.query_costs.values()) / len(self.query_costs)


def measure(store: PageStore, operation: Callable[[], object]) -> tuple[int, object]:
    """Run one operation and return ``(disk accesses, result)``."""
    before = store.stats.total
    result = operation()
    return store.stats.total - before, result


def _audit_requested(audit: bool | None) -> bool:
    """Resolve the ``audit`` parameter; ``None`` falls back to ``REPRO_AUDIT``."""
    if audit is not None:
        return audit
    return os.environ.get("REPRO_AUDIT", "").lower() not in ("", "0", "off", "no", "false")


def _explain_dir(explain: bool | str | None = None) -> Path | None:
    """Resolve the ``explain`` parameter into a trace directory.

    ``None`` falls back to ``REPRO_EXPLAIN``.  Off-values (empty,
    ``"0"``, ``"off"``, ``"no"``, ``"false"``, ``False``) disable
    tracing and return ``None``; ``True`` or ``"1"`` traces into the
    default ``results/explain``; any other string is taken as the
    output directory itself.
    """
    if explain is None:
        explain = os.environ.get("REPRO_EXPLAIN", "")
    if explain is False:
        return None
    if explain is True:
        explain = "1"
    value = str(explain).strip()
    if value.lower() in ("", "0", "off", "no", "false"):
        return None
    if value == "1":
        from repro.parallel.cache import default_results_root

        return default_results_root() / "explain"
    return Path(value)


def _trace_path(directory: Path, kind: str, name: str) -> Path:
    """Deterministic per-structure trace file name under ``directory``."""
    safe = name.replace("*", "-star").replace("+", "-plus").replace("/", "_")
    return directory / f"{kind.upper()}-{safe}.json"


def build_pam(
    factory: Callable[..., PointAccessMethod],
    points: Sequence[tuple[float, ...]],
    dims: int = 2,
    page_size: int = 512,
    tracer=None,
    audit: bool | None = None,
    vector: bool | None = None,
    store_factory: Callable[..., PageStore] | None = None,
) -> PointAccessMethod:
    """Build a fresh PAM over its own page store and insert all points.

    ``tracer`` (a :class:`repro.obs.Tracer`) is installed as the new
    store's observer and labels the build's spans ``op="insert"``;
    tracing is passive, so the build is identical with or without it.

    ``audit=True`` runs the structure's invariant auditor
    (:mod:`repro.verify`) on the finished build and raises
    :class:`repro.verify.AuditError` on any violation; ``None`` defers
    to the ``REPRO_AUDIT`` environment variable.

    ``vector`` forces the store's columnar cache on or off; ``None``
    defers to ``REPRO_VECTOR`` (default on).  Builds are identical
    either way — the cache only accelerates query-time filtering.

    ``store_factory`` overrides store construction (it is called as
    ``store_factory(page_size=..., vector=...)``); ``None`` defers to
    :func:`repro.storage.factory.make_store` and thus to the
    ``REPRO_STORE_BACKEND`` environment variable.
    """
    if store_factory is None:
        store_factory = make_store
    store = store_factory(page_size=page_size, vector=vector)
    if tracer is not None:
        tracer.set_context(op="setup").attach(store)
    pam = factory(store, dims=dims)
    if tracer is not None:
        tracer.set_context(op="insert")
    for rid, point in enumerate(points):
        pam.insert(point, rid)
    if _audit_requested(audit):
        pam.audit()
    return pam


def build_sam(
    factory: Callable[..., SpatialAccessMethod],
    rects: Sequence[Rect],
    dims: int = 2,
    page_size: int = 512,
    tracer=None,
    audit: bool | None = None,
    vector: bool | None = None,
    store_factory: Callable[..., PageStore] | None = None,
) -> SpatialAccessMethod:
    """Build a fresh SAM over its own page store and insert all rectangles.

    ``audit``, ``vector`` and ``store_factory`` behave as in
    :func:`build_pam`.
    """
    if store_factory is None:
        store_factory = make_store
    store = store_factory(page_size=page_size, vector=vector)
    if tracer is not None:
        tracer.set_context(op="setup").attach(store)
    sam = factory(store, dims=dims)
    if tracer is not None:
        tracer.set_context(op="insert")
    for rid, rect in enumerate(rects):
        sam.insert(rect, rid)
    if _audit_requested(audit):
        sam.audit()
    return sam


def run_pam_queries(
    pam: PointAccessMethod, seed: int = 101, tracer=None, explain=None
) -> MethodResult:
    """Run the five query files of §3 against a built PAM.

    With a ``tracer``, each query file's operations are recorded as
    spans labelled with the file's query type.  Each file runs through
    :func:`repro.query.driver.run_query_file`, so a store with a
    columnar cache evaluates the whole file as one batched workload.

    ``explain`` is an optional
    :class:`~repro.obs.explain.ExplainRecorder`; when given, every
    query file is traced page-by-page under the file's query-type
    label.  Tracing is passive — costs and results are unchanged.
    """
    result = MethodResult(type(pam).__name__, pam.metrics())
    for label, volume in zip(PAM_QUERY_TYPES[:3], RANGE_QUERY_VOLUMES):
        if tracer is not None:
            tracer.set_context(op=label)
        if explain is not None:
            explain.label = label
        queries = generate_range_queries(volume, seed=seed)
        outcomes = run_query_file(pam, "range", queries, pam.range_query, explain=explain)
        result.query_costs[label] = sum(c for c, _ in outcomes) / len(queries)
        result.query_results[label] = sum(len(hits) for _, hits in outcomes)
    for label, axis in (("pm_x", 0), ("pm_y", 1)):
        if tracer is not None:
            tracer.set_context(op=label)
        if explain is not None:
            explain.label = label
        queries = generate_partial_match_queries(axis, seed=seed + 2)
        outcomes = run_query_file(pam, "pm", queries, pam.partial_match, explain=explain)
        result.query_costs[label] = sum(c for c, _ in outcomes) / len(queries)
        result.query_results[label] = sum(len(hits) for _, hits in outcomes)
    return result


def run_sam_queries(
    sam: SpatialAccessMethod, seed: int = 107, tracer=None, explain=None
) -> MethodResult:
    """Run the four query types of §7 against a built SAM.

    Each query type runs as one batched workload via
    :func:`repro.query.driver.run_query_file`.  ``explain`` behaves as
    in :func:`run_pam_queries`.
    """
    workload = generate_rect_query_workload(seed=seed)
    result = MethodResult(type(sam).__name__, sam.metrics())
    if tracer is not None:
        tracer.set_context(op="point")
    if explain is not None:
        explain.label = "point"
    outcomes = run_query_file(
        sam, "point", workload["points"], sam.point_query, explain=explain
    )
    result.query_costs["point"] = sum(c for c, _ in outcomes) / len(
        workload["points"]
    )
    result.query_results["point"] = sum(len(hits) for _, hits in outcomes)
    operations = {
        "intersection": sam.intersection,
        "enclosure": sam.enclosure,
        "containment": sam.containment,
    }
    for label, operation in operations.items():
        if tracer is not None:
            tracer.set_context(op=label)
        if explain is not None:
            explain.label = label
        outcomes = run_query_file(
            sam, label, workload["rectangles"], operation, explain=explain
        )
        result.query_costs[label] = sum(c for c, _ in outcomes) / len(
            workload["rectangles"]
        )
        result.query_results[label] = sum(len(hits) for _, hits in outcomes)
    return result


def run_pam_experiment(
    factories: dict[str, Callable[..., PointAccessMethod]],
    points: Sequence[tuple[float, ...]],
    seed: int = 101,
    tracer=None,
    workers: int = 1,
    audit: bool | None = None,
    ledger=None,
    explain: bool | str | None = None,
) -> dict[str, MethodResult]:
    """Build every PAM on the same data file and run the query files.

    A shared ``tracer`` attributes each structure's spans to its
    factory name (see :func:`repro.obs.runner.traced_pam_run` for the
    variant that also assembles a :class:`repro.obs.RunReport`).

    ``workers > 1`` fans the structures out over a process pool via
    :mod:`repro.parallel`; the factory *names* must then be registered
    standard-testbed structures (job specs ship names, not closures),
    and a ``tracer`` cannot be threaded through — spans stay inside the
    workers and are only available via the parallel runner's own API.

    ``audit=True`` audits every structure post-build (and requires
    ``workers == 1``, like a tracer); ``None`` defers to ``REPRO_AUDIT``.

    ``ledger`` records the run (timings + access totals + per-structure
    redundancy metrics) to the performance ledger; ``None`` defers to
    ``REPRO_LEDGER``, ``False`` disables recording.

    ``explain`` writes one :mod:`repro.obs.explain` trace file per
    structure (``PAM-<name>.json``) into the resolved directory;
    ``None`` defers to ``REPRO_EXPLAIN`` (see :func:`_explain_dir`).
    Tracing chains the store observer, so costs are bit-identical with
    or without it.  With ``workers > 1``, workers resolve
    ``REPRO_EXPLAIN`` themselves; structures replayed from a warm build
    cache skip execution and therefore write no trace.
    """
    if workers > 1:
        if _audit_requested(audit):
            raise ValueError(
                "post-build audits run in-process; run with workers=1"
            )
        return _parallel_experiment(
            "pam", factories, points, seed, tracer, workers, ledger
        )
    explain_to = _explain_dir(explain)
    results = {}
    timers: dict[str, float] = {}
    totals: dict[str, object] = {}
    snapshots: dict[str, dict] = {}
    for name, factory in factories.items():
        if tracer is not None:
            tracer.set_context(structure=name)
        t0 = time.perf_counter()
        pam = build_pam(factory, points, tracer=tracer, audit=audit)
        t1 = time.perf_counter()
        recorder = None
        if explain_to is not None:
            from repro.obs.explain import ExplainRecorder

            recorder = ExplainRecorder(name)
        result = run_pam_queries(pam, seed=seed, tracer=tracer, explain=recorder)
        t2 = time.perf_counter()
        result.name = name
        result.snapshot = pam.snapshot()
        results[name] = result
        if recorder is not None:
            recorder.save(_trace_path(explain_to, "pam", name))
        timers[f"{name}/build"] = t1 - t0
        timers[f"{name}/queries"] = t2 - t1
        totals[name] = pam.store.stats.snapshot()
        snapshots[name] = result.snapshot
    _record_experiment(
        ledger,
        kind="pam",
        timers=timers,
        totals=totals,
        scale=len(points),
        seed=seed,
        snapshots=snapshots,
    )
    return results


def run_sam_experiment(
    factories: dict[str, Callable[..., SpatialAccessMethod]],
    rects: Sequence[Rect],
    seed: int = 107,
    tracer=None,
    workers: int = 1,
    audit: bool | None = None,
    ledger=None,
    explain: bool | str | None = None,
) -> dict[str, MethodResult]:
    """Build every SAM on the same rectangle file and run the queries.

    ``workers > 1`` parallelises by structure exactly like
    :func:`run_pam_experiment`; ``audit``, ``ledger`` and ``explain``
    behave as there (trace files are named ``SAM-<name>.json``).
    """
    if workers > 1:
        if _audit_requested(audit):
            raise ValueError(
                "post-build audits run in-process; run with workers=1"
            )
        return _parallel_experiment(
            "sam", factories, rects, seed, tracer, workers, ledger
        )
    explain_to = _explain_dir(explain)
    results = {}
    timers: dict[str, float] = {}
    totals: dict[str, object] = {}
    snapshots: dict[str, dict] = {}
    for name, factory in factories.items():
        if tracer is not None:
            tracer.set_context(structure=name)
        t0 = time.perf_counter()
        sam = build_sam(factory, rects, tracer=tracer, audit=audit)
        t1 = time.perf_counter()
        recorder = None
        if explain_to is not None:
            from repro.obs.explain import ExplainRecorder

            recorder = ExplainRecorder(name)
        result = run_sam_queries(sam, seed=seed, tracer=tracer, explain=recorder)
        t2 = time.perf_counter()
        result.name = name
        result.snapshot = sam.snapshot()
        results[name] = result
        if recorder is not None:
            recorder.save(_trace_path(explain_to, "sam", name))
        timers[f"{name}/build"] = t1 - t0
        timers[f"{name}/queries"] = t2 - t1
        totals[name] = sam.store.stats.snapshot()
        snapshots[name] = result.snapshot
    _record_experiment(
        ledger,
        kind="sam",
        timers=timers,
        totals=totals,
        scale=len(rects),
        seed=seed,
        snapshots=snapshots,
    )
    return results


def _record_experiment(
    ledger,
    *,
    kind: str,
    timers: dict[str, float],
    totals: dict,
    scale: int,
    seed: int | None,
    workers: int = 1,
    page_size: int = 512,
    snapshots: dict | None = None,
) -> None:
    """Append an experiment's timings/totals to the performance ledger.

    ``snapshots`` maps structure name to a structure snapshot; each
    snapshot's ``redundancy`` block is folded into that structure's
    access totals, so the gate flags redundancy drift under an
    identical fingerprint exactly like an access-count drift.
    """
    from repro.obs.ledger import entry_from_timers, resolve_ledger

    target = resolve_ledger(ledger)
    if target is None:
        return
    merged: dict[str, dict] = {}
    for name, stats in totals.items():
        row = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        snap = (snapshots or {}).get(name)
        if snap and "redundancy" in snap:
            row["redundancy"] = dict(snap["redundancy"])
        merged[name] = row
    target.record(
        entry_from_timers(
            label=f"{kind}-experiment",
            source="repro.core.comparison",
            kind=kind,
            timers=timers,
            totals=merged,
            page_size=page_size,
            scale=scale,
            seed=seed,
            workers=workers,
        )
    )


def _parallel_experiment(
    kind: str, factories: dict, data, seed: int, tracer, workers: int, ledger=None
) -> dict[str, MethodResult]:
    """Fan an experiment out by structure name via :mod:`repro.parallel`."""
    if tracer is not None:
        raise ValueError(
            "a shared tracer cannot observe worker processes; run with "
            "workers=1 or use repro.parallel.runner.traced_parallel_run"
        )
    from repro.parallel.runner import run_parallel_experiment

    outcome = run_parallel_experiment(
        kind, list(factories), data, seed=seed, workers=workers
    )
    _record_experiment(
        ledger,
        kind=kind,
        timers=outcome.timers,
        totals=outcome.totals,
        scale=len(data),
        seed=seed,
        workers=workers,
        snapshots=getattr(outcome, "snapshots", None),
    )
    return outcome.results


def normalise(
    results: dict[str, MethodResult], stick: str
) -> dict[str, dict[str, float]]:
    """Express query costs as percentages of the measuring stick."""
    reference = results[stick].query_costs
    out: dict[str, dict[str, float]] = {}
    for name, result in results.items():
        out[name] = {
            label: (100.0 * cost / reference[label]) if reference[label] else 0.0
            for label, cost in result.query_costs.items()
        }
    return out
