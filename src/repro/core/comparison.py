"""The paper's experiment driver.

Builds each access method on a data file, runs the query files, and
reports average disk accesses per query — optionally normalised to a
measuring stick (GRID = 100 % in Part I, the R-tree in Part II), which
is exactly how the paper's tables are laid out.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.core.stats import BuildMetrics
from repro.geometry.rect import Rect
from repro.query.driver import run_query_file
from repro.storage.pagestore import PageStore
from repro.workloads.queries import (
    RANGE_QUERY_VOLUMES,
    generate_partial_match_queries,
    generate_range_queries,
    generate_rect_query_workload,
)

__all__ = [
    "PAM_QUERY_TYPES",
    "SAM_QUERY_TYPES",
    "MethodResult",
    "measure",
    "build_pam",
    "build_sam",
    "run_pam_experiment",
    "run_sam_experiment",
    "normalise",
]

#: Query-type labels in the order of the paper's PAM tables.
PAM_QUERY_TYPES = ("range_0.1%", "range_1%", "range_10%", "pm_x", "pm_y")

#: Query-type labels in the order of the paper's SAM tables.
SAM_QUERY_TYPES = ("point", "intersection", "enclosure", "containment")


@dataclass
class MethodResult:
    """Build metrics and per-query-type average disk accesses."""

    name: str
    metrics: BuildMetrics
    query_costs: dict[str, float] = field(default_factory=dict)
    query_results: dict[str, int] = field(default_factory=dict)

    @property
    def query_average(self) -> float:
        """Unweighted average over the query types (the paper's indicator)."""
        return sum(self.query_costs.values()) / len(self.query_costs)


def measure(store: PageStore, operation: Callable[[], object]) -> tuple[int, object]:
    """Run one operation and return ``(disk accesses, result)``."""
    before = store.stats.total
    result = operation()
    return store.stats.total - before, result


def _audit_requested(audit: bool | None) -> bool:
    """Resolve the ``audit`` parameter; ``None`` falls back to ``REPRO_AUDIT``."""
    if audit is not None:
        return audit
    return os.environ.get("REPRO_AUDIT", "").lower() not in ("", "0", "off", "no", "false")


def build_pam(
    factory: Callable[..., PointAccessMethod],
    points: Sequence[tuple[float, ...]],
    dims: int = 2,
    page_size: int = 512,
    tracer=None,
    audit: bool | None = None,
    vector: bool | None = None,
) -> PointAccessMethod:
    """Build a fresh PAM over its own page store and insert all points.

    ``tracer`` (a :class:`repro.obs.Tracer`) is installed as the new
    store's observer and labels the build's spans ``op="insert"``;
    tracing is passive, so the build is identical with or without it.

    ``audit=True`` runs the structure's invariant auditor
    (:mod:`repro.verify`) on the finished build and raises
    :class:`repro.verify.AuditError` on any violation; ``None`` defers
    to the ``REPRO_AUDIT`` environment variable.

    ``vector`` forces the store's columnar cache on or off; ``None``
    defers to ``REPRO_VECTOR`` (default on).  Builds are identical
    either way — the cache only accelerates query-time filtering.
    """
    store = PageStore(page_size, vector=vector)
    if tracer is not None:
        tracer.set_context(op="setup").attach(store)
    pam = factory(store, dims=dims)
    if tracer is not None:
        tracer.set_context(op="insert")
    for rid, point in enumerate(points):
        pam.insert(point, rid)
    if _audit_requested(audit):
        pam.audit()
    return pam


def build_sam(
    factory: Callable[..., SpatialAccessMethod],
    rects: Sequence[Rect],
    dims: int = 2,
    page_size: int = 512,
    tracer=None,
    audit: bool | None = None,
    vector: bool | None = None,
) -> SpatialAccessMethod:
    """Build a fresh SAM over its own page store and insert all rectangles.

    ``audit`` and ``vector`` behave as in :func:`build_pam`.
    """
    store = PageStore(page_size, vector=vector)
    if tracer is not None:
        tracer.set_context(op="setup").attach(store)
    sam = factory(store, dims=dims)
    if tracer is not None:
        tracer.set_context(op="insert")
    for rid, rect in enumerate(rects):
        sam.insert(rect, rid)
    if _audit_requested(audit):
        sam.audit()
    return sam


def run_pam_queries(
    pam: PointAccessMethod, seed: int = 101, tracer=None
) -> MethodResult:
    """Run the five query files of §3 against a built PAM.

    With a ``tracer``, each query file's operations are recorded as
    spans labelled with the file's query type.  Each file runs through
    :func:`repro.query.driver.run_query_file`, so a store with a
    columnar cache evaluates the whole file as one batched workload.
    """
    result = MethodResult(type(pam).__name__, pam.metrics())
    for label, volume in zip(PAM_QUERY_TYPES[:3], RANGE_QUERY_VOLUMES):
        if tracer is not None:
            tracer.set_context(op=label)
        queries = generate_range_queries(volume, seed=seed)
        outcomes = run_query_file(pam, "range", queries, pam.range_query)
        result.query_costs[label] = sum(c for c, _ in outcomes) / len(queries)
        result.query_results[label] = sum(len(hits) for _, hits in outcomes)
    for label, axis in (("pm_x", 0), ("pm_y", 1)):
        if tracer is not None:
            tracer.set_context(op=label)
        queries = generate_partial_match_queries(axis, seed=seed + 2)
        outcomes = run_query_file(pam, "pm", queries, pam.partial_match)
        result.query_costs[label] = sum(c for c, _ in outcomes) / len(queries)
        result.query_results[label] = sum(len(hits) for _, hits in outcomes)
    return result


def run_sam_queries(
    sam: SpatialAccessMethod, seed: int = 107, tracer=None
) -> MethodResult:
    """Run the four query types of §7 against a built SAM.

    Each query type runs as one batched workload via
    :func:`repro.query.driver.run_query_file`.
    """
    workload = generate_rect_query_workload(seed=seed)
    result = MethodResult(type(sam).__name__, sam.metrics())
    if tracer is not None:
        tracer.set_context(op="point")
    outcomes = run_query_file(sam, "point", workload["points"], sam.point_query)
    result.query_costs["point"] = sum(c for c, _ in outcomes) / len(
        workload["points"]
    )
    result.query_results["point"] = sum(len(hits) for _, hits in outcomes)
    operations = {
        "intersection": sam.intersection,
        "enclosure": sam.enclosure,
        "containment": sam.containment,
    }
    for label, operation in operations.items():
        if tracer is not None:
            tracer.set_context(op=label)
        outcomes = run_query_file(sam, label, workload["rectangles"], operation)
        result.query_costs[label] = sum(c for c, _ in outcomes) / len(
            workload["rectangles"]
        )
        result.query_results[label] = sum(len(hits) for _, hits in outcomes)
    return result


def run_pam_experiment(
    factories: dict[str, Callable[..., PointAccessMethod]],
    points: Sequence[tuple[float, ...]],
    seed: int = 101,
    tracer=None,
    workers: int = 1,
    audit: bool | None = None,
    ledger=None,
) -> dict[str, MethodResult]:
    """Build every PAM on the same data file and run the query files.

    A shared ``tracer`` attributes each structure's spans to its
    factory name (see :func:`repro.obs.runner.traced_pam_run` for the
    variant that also assembles a :class:`repro.obs.RunReport`).

    ``workers > 1`` fans the structures out over a process pool via
    :mod:`repro.parallel`; the factory *names* must then be registered
    standard-testbed structures (job specs ship names, not closures),
    and a ``tracer`` cannot be threaded through — spans stay inside the
    workers and are only available via the parallel runner's own API.

    ``audit=True`` audits every structure post-build (and requires
    ``workers == 1``, like a tracer); ``None`` defers to ``REPRO_AUDIT``.

    ``ledger`` records the run (timings + access totals) to the
    performance ledger; ``None`` defers to ``REPRO_LEDGER``, ``False``
    disables recording.
    """
    if workers > 1:
        if _audit_requested(audit):
            raise ValueError(
                "post-build audits run in-process; run with workers=1"
            )
        return _parallel_experiment(
            "pam", factories, points, seed, tracer, workers, ledger
        )
    results = {}
    timers: dict[str, float] = {}
    totals: dict[str, object] = {}
    for name, factory in factories.items():
        if tracer is not None:
            tracer.set_context(structure=name)
        t0 = time.perf_counter()
        pam = build_pam(factory, points, tracer=tracer, audit=audit)
        t1 = time.perf_counter()
        result = run_pam_queries(pam, seed=seed, tracer=tracer)
        t2 = time.perf_counter()
        result.name = name
        results[name] = result
        timers[f"{name}/build"] = t1 - t0
        timers[f"{name}/queries"] = t2 - t1
        totals[name] = pam.store.stats.snapshot()
    _record_experiment(
        ledger,
        kind="pam",
        timers=timers,
        totals=totals,
        scale=len(points),
        seed=seed,
    )
    return results


def run_sam_experiment(
    factories: dict[str, Callable[..., SpatialAccessMethod]],
    rects: Sequence[Rect],
    seed: int = 107,
    tracer=None,
    workers: int = 1,
    audit: bool | None = None,
    ledger=None,
) -> dict[str, MethodResult]:
    """Build every SAM on the same rectangle file and run the queries.

    ``workers > 1`` parallelises by structure exactly like
    :func:`run_pam_experiment`; ``audit`` and ``ledger`` behave as
    there.
    """
    if workers > 1:
        if _audit_requested(audit):
            raise ValueError(
                "post-build audits run in-process; run with workers=1"
            )
        return _parallel_experiment(
            "sam", factories, rects, seed, tracer, workers, ledger
        )
    results = {}
    timers: dict[str, float] = {}
    totals: dict[str, object] = {}
    for name, factory in factories.items():
        if tracer is not None:
            tracer.set_context(structure=name)
        t0 = time.perf_counter()
        sam = build_sam(factory, rects, tracer=tracer, audit=audit)
        t1 = time.perf_counter()
        result = run_sam_queries(sam, seed=seed, tracer=tracer)
        t2 = time.perf_counter()
        result.name = name
        results[name] = result
        timers[f"{name}/build"] = t1 - t0
        timers[f"{name}/queries"] = t2 - t1
        totals[name] = sam.store.stats.snapshot()
    _record_experiment(
        ledger,
        kind="sam",
        timers=timers,
        totals=totals,
        scale=len(rects),
        seed=seed,
    )
    return results


def _record_experiment(
    ledger,
    *,
    kind: str,
    timers: dict[str, float],
    totals: dict,
    scale: int,
    seed: int | None,
    workers: int = 1,
    page_size: int = 512,
) -> None:
    """Append an experiment's timings/totals to the performance ledger."""
    from repro.obs.ledger import entry_from_timers, resolve_ledger

    target = resolve_ledger(ledger)
    if target is None:
        return
    target.record(
        entry_from_timers(
            label=f"{kind}-experiment",
            source="repro.core.comparison",
            kind=kind,
            timers=timers,
            totals=totals,
            page_size=page_size,
            scale=scale,
            seed=seed,
            workers=workers,
        )
    )


def _parallel_experiment(
    kind: str, factories: dict, data, seed: int, tracer, workers: int, ledger=None
) -> dict[str, MethodResult]:
    """Fan an experiment out by structure name via :mod:`repro.parallel`."""
    if tracer is not None:
        raise ValueError(
            "a shared tracer cannot observe worker processes; run with "
            "workers=1 or use repro.parallel.runner.traced_parallel_run"
        )
    from repro.parallel.runner import run_parallel_experiment

    outcome = run_parallel_experiment(
        kind, list(factories), data, seed=seed, workers=workers
    )
    _record_experiment(
        ledger,
        kind=kind,
        timers=outcome.timers,
        totals=outcome.totals,
        scale=len(data),
        seed=seed,
        workers=workers,
    )
    return outcome.results


def normalise(
    results: dict[str, MethodResult], stick: str
) -> dict[str, dict[str, float]]:
    """Express query costs as percentages of the measuring stick."""
    reference = results[stick].query_costs
    out: dict[str, dict[str, float]] = {}
    for name, result in results.items():
        out[name] = {
            label: (100.0 * cost / reference[label]) if reference[label] else 0.0
            for label, cost in result.query_costs.items()
        }
    return out
