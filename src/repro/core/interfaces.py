"""Public interfaces of point and spatial access methods.

Every structure in :mod:`repro.pam` implements
:class:`PointAccessMethod`; every structure in :mod:`repro.sam`
implements :class:`SpatialAccessMethod`.  The bases centralise the
bookkeeping that the paper's tables report — insertion cost, storage
utilisation, directory/data ratio and directory height — so that each
structure only implements its algorithmic core.

Records are ``(key, rid)`` pairs: the key is a point (tuple of floats in
the unit cube) or a :class:`~repro.geometry.rect.Rect`; the ``rid`` is
an opaque record identifier (the paper's "record pointer").
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.core.stats import BuildMetrics
from repro.geometry.rect import Rect
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore

__all__ = ["PointAccessMethod", "SpatialAccessMethod"]


class _AccessMethodBase(abc.ABC):
    """Shared bookkeeping for page-based access methods."""

    def __init__(self, store: PageStore, dims: int, record_size: int):
        if dims < 1:
            raise ValueError("dims must be positive")
        self.store = store
        self.dims = dims
        self.record_size = record_size
        self._records = 0
        self._insert_accesses = 0

    # -- to be provided by each structure --------------------------------

    @property
    @abc.abstractmethod
    def directory_height(self) -> int:
        """Height ``h`` of the directory (0 for a directory-less scheme)."""

    @property
    @abc.abstractmethod
    def record_capacity(self) -> int:
        """Records per data page, derived from the 512-byte layout."""

    # -- metrics -----------------------------------------------------------

    def __len__(self) -> int:
        return self._records

    def metrics(self) -> BuildMetrics:
        """The paper's per-structure table figures for the current file."""
        data_pages = self.store.count_pages(PageKind.DATA)
        dir_pages = self.store.count_pages(PageKind.DIRECTORY)
        slots = data_pages * self.record_capacity
        return BuildMetrics(
            storage_utilization=100.0 * self._records / slots if slots else 0.0,
            dir_data_ratio=100.0 * dir_pages / data_pages if data_pages else 0.0,
            insert_cost=self._insert_accesses / self._records if self._records else 0.0,
            height=self.directory_height,
            records=self._records,
            data_pages=data_pages,
            directory_pages=dir_pages,
            pinned_pages=self.store.pinned_count,
        )

    # -- structural verification ------------------------------------------

    def iter_records(self):
        """Yield every stored ``(key, rid)`` pair by walking the pages.

        Each structure overrides this with an uncharged walk of its own
        page layout (via :meth:`PageStore.peek`); redundant schemes
        (packed BUDDY, clipping) deduplicate so every logical record is
        yielded exactly once.  The default refuses, so a structure
        without a walk cannot silently pass a record-count audit.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement iter_records()"
        )

    def _snapshot_pages(self):
        """Yield a :class:`~repro.obs.structure.PageView` per live page.

        Each structure overrides this with an uncharged walk of its own
        page layout (via :meth:`PageStore.peek`), mirroring its
        invariant auditor.  Shared pages (packed BUDDY) are yielded
        exactly once.  The default refuses, so a structure without a
        walk cannot silently return an empty snapshot.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement _snapshot_pages()"
        )

    def snapshot(self) -> dict:
        """A versioned structural snapshot of the built file.

        Occupancy histograms, depth/fanout distributions and the
        paper's redundancy metrics (duplication factor, overlap volume,
        dead space, per-level utilisation), computed from an uncharged
        page walk — taking a snapshot never changes access statistics.
        See :mod:`repro.obs.structure` for the schema.
        """
        from repro.obs.structure import compute_snapshot

        return compute_snapshot(self)

    def check_invariants(self) -> list:
        """Run this structure's auditor and return the violations found.

        An empty list means the file is structurally sound.  The audit
        walks the page store with uncharged reads, so access statistics
        and the search-path buffer are untouched.  See
        :mod:`repro.verify.auditors` for the invariant catalogue.
        """
        from repro.verify.auditors import run_audit

        return run_audit(self)

    def audit(self) -> None:
        """Assert structural soundness; raise ``AuditError`` on violations."""
        from repro.verify.invariants import AuditError

        violations = self.check_invariants()
        if violations:
            raise AuditError(type(self).__name__, violations)

    # -- batched query workloads -------------------------------------------

    def register_query_workload(self, kind: str, queries: Sequence) -> None:
        """Register a whole query file for batched vectorized evaluation.

        ``kind`` is a query-type tag (``range``, ``pm``, ``point``,
        ``intersection``, ``containment``, ``enclosure``) and ``queries``
        the file's raw queries in execution order.  The driver
        (:mod:`repro.query.driver`) marks the current query index before
        each call, letting the scan helpers evaluate each visited page
        against the *entire* batch in one kernel call.  Registration is
        purely an evaluation hint: results and disk-access statistics are
        identical with or without it, and it is a no-op when the store
        has no columnar cache (``REPRO_VECTOR=0``).
        """
        cache = self.store.columnar
        if cache is not None:
            cache.begin_workload(self._workload_rects(kind, queries))

    def end_query_workload(self) -> None:
        """Deregister the batch installed by :meth:`register_query_workload`."""
        cache = self.store.columnar
        if cache is not None:
            cache.end_workload()

    def _workload_rects(self, kind: str, queries: Sequence) -> list:
        """Map a query file to the boxes the scan paths will be asked about.

        Must replicate the public query methods' conversions exactly, so
        that the box a scan helper receives compares equal to the
        registered one.  Structures that rewrite queries before scanning
        (the transformation technique) override this.
        """
        if kind == "pm":
            rects = []
            for specified in queries:
                lo = [0.0] * self.dims
                hi = [1.0] * self.dims
                for axis, value in specified.items():
                    lo[axis] = hi[axis] = value
                rects.append(Rect(tuple(lo), tuple(hi)))
            return rects
        if kind == "point":
            return [Rect.from_point(tuple(float(c) for c in p)) for p in queries]
        return list(queries)

    # -- operation bracketing ----------------------------------------------

    def _measured_insert(self, action) -> None:
        """Run ``action`` as one insert operation, accumulating its cost."""
        self.store.begin_operation()
        before = self.store.stats.total
        action()
        self._records += 1
        self._insert_accesses += self.store.stats.total - before


class PointAccessMethod(_AccessMethodBase):
    """A multidimensional point access method (PAM).

    Subclasses implement :meth:`_insert`, :meth:`_range_query` and
    optionally :meth:`_exact_match`; the public methods here add the
    operation bracketing that drives the search-path buffer and the
    insert-cost metric.
    """

    # -- core hooks ---------------------------------------------------------

    @abc.abstractmethod
    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        """Store ``(point, rid)``; called inside an operation bracket."""

    @abc.abstractmethod
    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        """All records whose point lies in the closed ``rect``."""

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        """Record ids stored exactly at ``point``; default via range query."""
        return [rid for _, rid in self._range_query(Rect.from_point(point))]

    # -- public API -----------------------------------------------------------

    def insert(self, point: Sequence[float], rid: object) -> None:
        """Insert one record; counts toward the build's insertion cost."""
        p = tuple(float(c) for c in point)
        if len(p) != self.dims:
            raise ValueError(f"point has {len(p)} dims, index has {self.dims}")
        if not all(0.0 <= c <= 1.0 for c in p):
            raise ValueError(f"point {p} outside the unit cube")
        self._measured_insert(lambda: self._insert(p, rid))

    def range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        """All records in the closed query rectangle."""
        self.store.begin_operation()
        return self._range_query(rect)

    def exact_match(self, point: Sequence[float]) -> list[object]:
        """Record ids stored exactly at ``point``."""
        self.store.begin_operation()
        return self._exact_match(tuple(float(c) for c in point))

    def partial_match(self, specified: dict[int, float]) -> list[tuple[tuple[float, ...], object]]:
        """Partial-match query: exact values on some axes, free on the rest.

        ``specified`` maps axis index to the required value.  Executed as
        a degenerate range query, which is how the compared structures
        process partial matches.
        """
        lo = [0.0] * self.dims
        hi = [1.0] * self.dims
        for axis, value in specified.items():
            lo[axis] = hi[axis] = value
        return self.range_query(Rect(tuple(lo), tuple(hi)))


class SpatialAccessMethod(_AccessMethodBase):
    """A spatial access method (SAM) for axis-parallel rectangles.

    The four query types are those of §7 of the paper.  Queries return
    record ids; rectangles are closed boxes.
    """

    @abc.abstractmethod
    def _insert(self, rect: Rect, rid: object) -> None:
        """Store ``(rect, rid)``; called inside an operation bracket."""

    @abc.abstractmethod
    def _point_query(self, point: tuple[float, ...]) -> list[object]:
        """Ids of stored rectangles containing ``point``."""

    @abc.abstractmethod
    def _intersection(self, query: Rect) -> list[object]:
        """Ids of stored rectangles intersecting ``query``."""

    @abc.abstractmethod
    def _containment(self, query: Rect) -> list[object]:
        """Ids of stored rectangles contained in ``query``."""

    @abc.abstractmethod
    def _enclosure(self, query: Rect) -> list[object]:
        """Ids of stored rectangles that enclose ``query``."""

    # -- public API -----------------------------------------------------------

    def insert(self, rect: Rect, rid: object) -> None:
        """Insert one rectangle; counts toward the build's insertion cost."""
        if rect.dims != self.dims:
            raise ValueError(f"rect has {rect.dims} dims, index has {self.dims}")
        if not Rect.unit(self.dims).contains_rect(rect):
            raise ValueError(f"{rect} outside the unit cube")
        self._measured_insert(lambda: self._insert(rect, rid))

    def point_query(self, point: Sequence[float]) -> list[object]:
        """Ids of stored rectangles containing ``point``."""
        self.store.begin_operation()
        return self._point_query(tuple(float(c) for c in point))

    def intersection(self, query: Rect) -> list[object]:
        """Ids of stored rectangles intersecting ``query``."""
        self.store.begin_operation()
        return self._intersection(query)

    def containment(self, query: Rect) -> list[object]:
        """Ids of stored rectangles contained in ``query``."""
        self.store.begin_operation()
        return self._containment(query)

    def enclosure(self, query: Rect) -> list[object]:
        """Ids of stored rectangles that enclose ``query``."""
        self.store.begin_operation()
        return self._enclosure(query)
