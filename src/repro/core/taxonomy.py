"""Table 1 of the paper: the classification of multidimensional PAMs.

§2 classifies point access methods by three properties of their page
regions — *rectangular*, *complete* (the union of all regions spans the
data space) and *disjoint* — yielding four populated classes:

=====  ===========  ========  ========
class  rectangular  complete  disjoint
=====  ===========  ========  ========
C1     yes          yes       yes
C2     yes          yes       no
C3     yes          no        yes
C4     no           yes       yes
=====  ===========  ========  ========

This module states the classification for every structure implemented
in :mod:`repro.pam`; the taxonomy tests verify the *complete* and
*disjoint* axes empirically against the built structures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Classification", "TABLE_1", "classify"]


@dataclass(frozen=True)
class Classification:
    """One row of Table 1."""

    name: str
    klass: str
    rectangular: bool
    complete: bool
    disjoint: bool
    citation: str


#: The implemented structures, classified as in the paper's Table 1.
TABLE_1 = (
    Classification("KdBTree", "C1", True, True, True, "[Rob 81]"),
    Classification("GridFile", "C1", True, True, True, "[NHS 84]"),
    Classification("TwoLevelGridFile", "C1", True, True, True, "[Hin 85]"),
    Classification("PlopHashing", "C1", True, True, True, "[KS 88]"),
    Classification("QuantileHashing", "C1", True, True, True, "[KS 87]"),
    Classification("TwinGridFile", "C2", True, True, False, "[HSW 88]"),
    Classification("BuddyTree", "C3", True, False, True, "[SFK 89]"),
    Classification("MultilevelGridFile", "C3", True, False, True, "[WK 85]"),
    Classification("ZOrderBTree", "C4", False, True, True, "[OM 84]"),
    Classification("BangFile", "C4", False, True, True, "[Fre 87]"),
    Classification("HBTree", "C4", False, True, True, "[LS 89]"),
)


def classify(name: str) -> Classification:
    """The Table 1 row for the named structure."""
    for row in TABLE_1:
        if row.name == name:
            return row
    raise KeyError(f"{name!r} is not classified in Table 1")
