"""The standardised testbed the paper proposes.

"This comparison is a first step towards a standardized testbed or
benchmark.  We offer our data and query files to each designer of a new
point or spatial access method such that he can run his implementation
in our testbed."

:func:`standard_pam_factories` / :func:`standard_sam_factories` return
the compared structures under the paper's table abbreviations;
:func:`testbed_scale` reads the ``REPRO_BENCH_SCALE`` environment
variable so the benches run at laptop scale by default and at the
paper's 100 000 records on demand.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.pam.hbtree import HBTree
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.sam.overlapping import OverlappingPlop
from repro.sam.rtree import RTree
from repro.sam.transformation import TransformationSAM

__all__ = [
    "standard_pam_factories",
    "standard_sam_factories",
    "testbed_scale",
]

#: Default number of records in bench runs; the paper uses 100 000.
DEFAULT_SCALE = 10_000


def testbed_scale() -> int:
    """Number of records per data file, from ``REPRO_BENCH_SCALE``."""
    return int(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def standard_pam_factories() -> dict[str, Callable[..., PointAccessMethod]]:
    """The four compared PAMs plus the BANG* entry-size variant.

    BUDDY+ is not a separate build: the benches derive it by calling
    :meth:`repro.pam.buddytree.BuddyTree.pack` on the BUDDY file, just
    as the authors generated it "by computation and simulation".
    """
    return {
        "HB": lambda store, dims=2: HBTree(store, dims),
        "BANG": lambda store, dims=2: BangFile(store, dims),
        "BANG*": lambda store, dims=2: BangFile(
            store, dims, variable_length_entries=True
        ),
        "GRID": lambda store, dims=2: TwoLevelGridFile(store, dims),
        "BUDDY": lambda store, dims=2: BuddyTree(store, dims),
    }


def standard_sam_factories() -> dict[str, Callable[..., SpatialAccessMethod]]:
    """The four compared SAMs (transformation uses corner representation)."""
    return {
        "R-Tree": lambda store, dims=2: RTree(store, dims),
        "BANG": lambda store, dims=2: TransformationSAM(
            store,
            lambda s, dims: BangFile(s, dims, variable_length_entries=True),
            dims=dims,
        ),
        "BUDDY": lambda store, dims=2: TransformationSAM(
            store, lambda s, dims: BuddyTree(s, dims), dims=dims
        ),
        "PLOP": lambda store, dims=2: OverlappingPlop(store, dims),
    }
