"""The standardised testbed the paper proposes.

"This comparison is a first step towards a standardized testbed or
benchmark.  We offer our data and query files to each designer of a new
point or spatial access method such that he can run his implementation
in our testbed."

:func:`standard_pam_factories` / :func:`standard_sam_factories` return
the compared structures under the paper's table abbreviations;
:func:`testbed_scale` reads the ``REPRO_BENCH_SCALE`` environment
variable so the benches run at laptop scale by default and at the
paper's 100 000 records on demand.

:func:`run_standard_pam_testbed` / :func:`run_standard_sam_testbed`
run the whole standard comparison under a tracer and return the usual
results together with a machine-readable
:class:`~repro.obs.export.RunReport` (per-operation access histograms,
percentiles, timings and exact totals).

Queries run through the vectorized execution layer
(:mod:`repro.query`) by default; set ``REPRO_VECTOR=0`` to force the
original scalar scan loops.  Results and access counts are identical
either way — only wall-clock time changes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable

from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.pam.hbtree import HBTree
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.sam.overlapping import OverlappingPlop
from repro.sam.rtree import RTree
from repro.sam.transformation import TransformationSAM

__all__ = [
    "standard_pam_factories",
    "standard_sam_factories",
    "run_standard_pam_testbed",
    "run_standard_sam_testbed",
    "testbed_scale",
    "testbed_workers",
]

#: Default number of records in bench runs; the paper uses 100 000.
DEFAULT_SCALE = 10_000


def testbed_scale() -> int:
    """Number of records per data file, from ``REPRO_BENCH_SCALE``."""
    return int(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def testbed_workers() -> int:
    """Worker processes per experiment, from ``REPRO_BENCH_WORKERS``.

    1 (the default) keeps the historical single-process path; anything
    larger fans each comparison out by structure via
    :mod:`repro.parallel`, which is outcome-identical by construction.
    """
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


@contextmanager
def _explain_env(explain):
    """Carry an ``explain=`` argument to spawn workers via the environment.

    Worker processes read ``REPRO_EXPLAIN`` at job execution time (see
    :func:`repro.parallel.jobs.execute_job`), so honouring the keyword
    under ``workers > 1`` means pinning the variable for the duration of
    the run.  ``None`` leaves the environment alone.
    """
    if explain is None:
        yield
        return
    previous = os.environ.get("REPRO_EXPLAIN")
    if explain is True:
        os.environ["REPRO_EXPLAIN"] = "1"
    elif explain is False:
        os.environ["REPRO_EXPLAIN"] = "0"
    else:
        os.environ["REPRO_EXPLAIN"] = str(explain)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_EXPLAIN", None)
        else:
            os.environ["REPRO_EXPLAIN"] = previous


def standard_pam_factories() -> dict[str, Callable[..., PointAccessMethod]]:
    """The four compared PAMs plus the BANG* entry-size variant.

    BUDDY+ is not a separate build: the benches derive it by calling
    :meth:`repro.pam.buddytree.BuddyTree.pack` on the BUDDY file, just
    as the authors generated it "by computation and simulation".
    """
    return {
        "HB": lambda store, dims=2: HBTree(store, dims),
        "BANG": lambda store, dims=2: BangFile(store, dims),
        "BANG*": lambda store, dims=2: BangFile(
            store, dims, variable_length_entries=True
        ),
        "GRID": lambda store, dims=2: TwoLevelGridFile(store, dims),
        "BUDDY": lambda store, dims=2: BuddyTree(store, dims),
    }


def run_standard_pam_testbed(
    points,
    seed: int = 101,
    label: str = "standard PAM testbed",
    page_size: int = 512,
    workers: int | None = None,
    ledger=None,
    explain=None,
):
    """Traced run of the standard PAM comparison on ``points``.

    Returns ``(results, report)`` — see
    :func:`repro.obs.runner.traced_pam_run`.  Imported lazily so plain
    testbed users never touch the observability layer.  ``workers``
    defaults to :func:`testbed_workers`; more than one fans the
    structures out over a process pool with identical results.
    ``ledger`` optionally records the run to the performance ledger
    (``None`` defers to ``REPRO_LEDGER``).  ``explain`` writes one
    :mod:`repro.obs.explain` trace per structure (``True`` for the
    default directory, a path for an explicit one, ``None`` defers to
    ``REPRO_EXPLAIN``) at any worker count, without changing results.
    """
    workers = testbed_workers() if workers is None else workers
    if workers > 1:
        from repro.parallel.runner import traced_parallel_run

        with _explain_env(explain):
            return traced_parallel_run(
                "pam",
                list(standard_pam_factories()),
                points,
                seed=seed,
                label=label,
                page_size=page_size,
                workers=workers,
                ledger=ledger,
            )
    from repro.obs.runner import traced_pam_run

    return traced_pam_run(
        standard_pam_factories(),
        points,
        seed=seed,
        label=label,
        page_size=page_size,
        ledger=ledger,
        explain=explain,
    )


def run_standard_sam_testbed(
    rects,
    seed: int = 107,
    label: str = "standard SAM testbed",
    page_size: int = 512,
    workers: int | None = None,
    ledger=None,
    explain=None,
):
    """Traced run of the standard SAM comparison on ``rects``."""
    workers = testbed_workers() if workers is None else workers
    if workers > 1:
        from repro.parallel.runner import traced_parallel_run

        with _explain_env(explain):
            return traced_parallel_run(
                "sam",
                list(standard_sam_factories()),
                rects,
                seed=seed,
                label=label,
                page_size=page_size,
                workers=workers,
                ledger=ledger,
            )
    from repro.obs.runner import traced_sam_run

    return traced_sam_run(
        standard_sam_factories(),
        rects,
        seed=seed,
        label=label,
        page_size=page_size,
        ledger=ledger,
        explain=explain,
    )


def standard_sam_factories() -> dict[str, Callable[..., SpatialAccessMethod]]:
    """The four compared SAMs (transformation uses corner representation)."""
    return {
        "R-Tree": lambda store, dims=2: RTree(store, dims),
        "BANG": lambda store, dims=2: TransformationSAM(
            store,
            lambda s, dims: BangFile(s, dims, variable_length_entries=True),
            dims=dims,
        ),
        "BUDDY": lambda store, dims=2: TransformationSAM(
            store, lambda s, dims: BuddyTree(s, dims), dims=dims
        ),
        "PLOP": lambda store, dims=2: OverlappingPlop(store, dims),
    }
