"""Experiment framework: interfaces, metrics, drivers and the testbed."""

from repro.core.interfaces import PointAccessMethod, SpatialAccessMethod
from repro.core.stats import AccessStats, BuildMetrics

__all__ = [
    "AccessStats",
    "BuildMetrics",
    "PointAccessMethod",
    "SpatialAccessMethod",
]
