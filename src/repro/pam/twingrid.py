"""The twin grid file [HSW 88] — class C2 of the paper's taxonomy.

Two grid files over the same data space cooperate: every record lives
either in its *primary* bucket (first grid) or in its *twin* bucket
(second grid).  A full primary bucket overflows into the twin bucket;
only when **both** are full does a split happen, and records migrate
back from the twin when the split frees primary space.  Distributing
the load across two dependent files is what lifts storage utilisation
towards 90 % — the "space optimizing" in the original title — at the
price of touching two directories per operation.

The paper classifies the scheme (class C2: rectangular and complete but
non-disjoint regions, since the twin regions overlay the primary ones)
and leaves it unmeasured, noting that "the concept ... is generally
applicable to any PAM" and "might be worth investigating [for] the
winners of our comparison".  Here it completes the taxonomy and the
``ABL-TWIN`` bench measures the storage/retrieval trade-off.
"""

from __future__ import annotations

from repro.core.interfaces import PointAccessMethod
from repro.geometry.rect import Rect
from repro.pam.gridfile import _DataPage, _GridLayer
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse

__all__ = ["TwinGridFile"]


class TwinGridFile(PointAccessMethod):
    """Two cooperating grid files with overflow-into-twin placement."""

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, layout.point_record_size(dims))
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        store.path_buffer_limit = 4  # two 2-page search paths
        self._layers = (_GridLayer(Rect.unit(dims)), _GridLayer(Rect.unit(dims)))
        self._dir_cells_per_page = (
            layout.directory_page_payload(store.page_size) // layout.POINTER_SIZE
        )
        self._dir_pages: list[list[int]] = [[], []]
        for layer_index, layer in enumerate(self._layers):
            first = store.allocate(PageKind.DATA, _DataPage())
            layer.install_root_payload(first)
            store.write(first)
            self._sync_directory_pages(layer_index)

    # -- plumbing -----------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        """One level per grid file; both are searched."""
        return 2

    def iter_records(self):
        """Uncharged walk over both grids' page boxes."""
        for layer in self._layers:
            for pid in layer.boxes:
                yield from self.store.peek(pid).records

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        Both grids are walked; the twin grid's pages sit one depth below
        the primary's so the level rows separate the two files.
        """
        from repro.obs.structure import PageView

        per = self._dir_cells_per_page
        for layer_index, layer in enumerate(self._layers):
            total = layer.total_cells()
            children: dict[int, dict[int, None]] = {
                pid: {} for pid in self._dir_pages[layer_index]
            }
            for cell in sorted(layer.cells):
                children[self._dir_page_of_cell(layer_index, cell)].setdefault(
                    layer.cells[cell]
                )
            for i, dpid in enumerate(self._dir_pages[layer_index]):
                yield PageView(
                    pid=dpid,
                    kind="directory",
                    depth=2 * layer_index,
                    regions=(),
                    records=min(per, total - i * per),
                    capacity=per,
                    children=tuple(children[dpid]),
                )
            for pid in layer.boxes:
                page: _DataPage = self.store.peek(pid)
                yield PageView(
                    pid=pid,
                    kind="data",
                    depth=2 * layer_index + 1,
                    regions=(layer.box_rect(pid),),
                    records=len(page.records),
                    capacity=self._capacity,
                    content=(
                        Rect.bounding_points([p for p, _ in page.records])
                        if page.records
                        else None
                    ),
                )

    def _sync_directory_pages(self, layer_index: int) -> None:
        layer = self._layers[layer_index]
        pages = self._dir_pages[layer_index]
        needed = -(-layer.total_cells() // self._dir_cells_per_page)
        while len(pages) < needed:
            pages.append(self.store.allocate(PageKind.DIRECTORY, None))
        while len(pages) > needed:
            self.store.free(pages.pop())

    def _dir_page_of_cell(self, layer_index: int, cell: tuple[int, ...]) -> int:
        layer = self._layers[layer_index]
        linear = 0
        for a in range(self.dims):
            linear = linear * layer.ncells(a) + cell[a]
        return self._dir_pages[layer_index][linear // self._dir_cells_per_page]

    def _locate(self, layer_index: int, point: tuple[float, ...]) -> int:
        layer = self._layers[layer_index]
        cell = layer.cell_of_point(point)
        self.store.read(self._dir_page_of_cell(layer_index, cell))
        return layer.cells[cell]

    # -- insertion ---------------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        primary_pid = self._locate(0, point)
        primary: _DataPage = self.store.read(primary_pid)
        if len(primary.records) < self._capacity:
            primary.records.append((point, rid))
            self.store.write(primary_pid)
            return
        twin_pid = self._locate(1, point)
        twin: _DataPage = self.store.read(twin_pid)
        if len(twin.records) < self._capacity:
            twin.records.append((point, rid))
            self.store.write(twin_pid)
            return
        # Both full: split the primary bucket, then pull records back
        # from the twin into the freed primary space.
        primary.records.append((point, rid))
        self._split_primary(primary_pid, primary)
        self._reabsorb(twin_pid, twin)
        if len(twin.records) >= self._capacity:
            self._split_twin(twin_pid, twin)

    def _split_primary(self, pid: int, page: _DataPage) -> None:
        new_page = _DataPage()
        new_pid = self.store.allocate(PageKind.DATA, new_page)
        points = [p for p, _ in page.records]
        axis, cut = self._layers[0].split_payload(pid, new_pid, points)
        stay = [r for r in page.records if r[0][axis] < cut]
        move = [r for r in page.records if r[0][axis] >= cut]
        page.records = stay
        new_page.records = move
        self.store.write(pid)
        self.store.write(new_pid)
        self._sync_directory_pages(0)
        self.store.write(self._dir_page_of_cell(0, self._layers[0].cell_of_point(points[0])))

    def _split_twin(self, pid: int, page: _DataPage) -> None:
        if len(set(p for p, _ in page.records)) < 2:
            return
        new_page = _DataPage()
        new_pid = self.store.allocate(PageKind.DATA, new_page)
        points = [p for p, _ in page.records]
        axis, cut = self._layers[1].split_payload(pid, new_pid, points)
        stay = [r for r in page.records if r[0][axis] < cut]
        move = [r for r in page.records if r[0][axis] >= cut]
        page.records = stay
        new_page.records = move
        self.store.write(pid)
        self.store.write(new_pid)
        self._sync_directory_pages(1)
        self.store.write(self._dir_page_of_cell(1, self._layers[1].cell_of_point(points[0])))

    def _reabsorb(self, twin_pid: int, twin: _DataPage) -> None:
        """Promote twin records whose primary bucket has space again."""
        keep: list[tuple[tuple[float, ...], object]] = []
        touched: set[int] = set()
        for record in twin.records:
            primary_pid = self._layers[0].payload_of_point(record[0])
            primary: _DataPage = self.store.read(primary_pid)
            if len(primary.records) < self._capacity:
                primary.records.append(record)
                touched.add(primary_pid)
            else:
                keep.append(record)
        twin.records = keep
        for pid in touched:
            self.store.write(pid)
        self.store.write(twin_pid)

    # -- queries -----------------------------------------------------------------------

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        result: list[tuple[tuple[float, ...], object]] = []
        for layer_index, layer in enumerate(self._layers):
            lo_cell = layer.cell_of_point(rect.lo)
            hi_cell = layer.cell_of_point(rect.hi)
            touched: set[int] = set()
            idx = list(lo_cell)
            while True:
                touched.add(self._dir_page_of_cell(layer_index, tuple(idx)))
                axis = 0
                while axis < self.dims:
                    idx[axis] += 1
                    if idx[axis] <= hi_cell[axis]:
                        break
                    idx[axis] = lo_cell[axis]
                    axis += 1
                if axis == self.dims:
                    break
            for dpid in touched:
                self.store.read(dpid)
            store = self.store
            pids = layer.payloads_in_rect(rect, vector=store.columnar is not None)
            if store.columnar is None:
                for pid in pids:
                    page: _DataPage = store.read(pid)
                    result.extend(
                        rec for rec in page.records if rect.contains_point(rec[0])
                    )
                continue
            # Read-then-batch: candidate pages are content-independent,
            # so read them in the original order, then evaluate every
            # cold page of the layer in one fused kernel call.
            pages = [(pid, store.read(pid).records) for pid in pids]
            rows = traverse.data_hit_rows(store, rect, pages)
            for pid, records in pages:
                result.extend([records[i] for i in rows[pid]])
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        out = []
        for layer_index in range(2):
            pid = self._locate(layer_index, point)
            page: _DataPage = self.store.read(pid)
            out.extend(rid for p, rid in page.records if p == point)
        return out
