"""A B+-tree storing z-values [OM 84] (class C4 of the paper's taxonomy).

The paper's classification lists "B+-tree with z-order" as the ancestor
of both the BANG file and the hB-tree but omits it from the measured
comparison.  It is implemented here (a) as the missing class-C4
baseline and (b) as the substrate of the *clipping* spatial access
method (:mod:`repro.sam.clipping`), which stores redundant z-region
decompositions of rectangles — the technique of Orenstein's companion
paper in the same proceedings volume.

:class:`_BPlusTree` is a plain order-preserving B+-tree over arbitrary
sortable keys with chained leaves; :class:`ZOrderBTree` specialises it
to Morton codes of points.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.core.interfaces import PointAccessMethod
from repro.geometry.rect import Rect
from repro.geometry.zorder import decompose_rect, z_interval, z_value
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse
from repro.storage.soa import fused_points, soa_field

__all__ = ["ZOrderBTree"]

#: Bits per axis of the Morton codes (32-bit keys in two dimensions).
Z_BITS_PER_AXIS = 16


class _Leaf:
    """A leaf page: sorted ``(key, value)`` pairs plus a next-leaf link."""

    __slots__ = ("keys", "_soa_values", "next_pid")

    values = soa_field()

    def __init__(self) -> None:
        self.keys: list = []
        self.values: list = []
        self.next_pid: int | None = None


class _Inner:
    """An inner page: separator keys and child pids (len(pids) = len(keys)+1)."""

    __slots__ = ("keys", "pids")

    def __init__(self) -> None:
        self.keys: list = []
        self.pids: list[int] = []


class _BPlusTree:
    """A counted-page B+-tree; the root is pinned in main memory."""

    def __init__(self, store: PageStore, leaf_capacity: int, inner_capacity: int):
        if leaf_capacity < 2 or inner_capacity < 3:
            raise ValueError("B+-tree capacities too small")
        self.store = store
        self.leaf_capacity = leaf_capacity
        self.inner_capacity = inner_capacity
        self.root_pid = store.allocate(PageKind.DATA, _Leaf())
        self.root_is_leaf = True
        store.pin(self.root_pid)
        store.write(self.root_pid)
        self.height = 0

    # -- insertion ------------------------------------------------------

    def insert(self, key, value) -> None:
        """Insert one pair; duplicate keys are kept side by side."""
        split = self._insert_into(self.root_pid, self.root_is_leaf, key, value)
        if split is None:
            return
        sep, right_pid = split
        new_root = _Inner()
        new_root.keys = [sep]
        new_root.pids = [self.root_pid, right_pid]
        self.store.unpin(self.root_pid)
        self.root_pid = self.store.allocate(PageKind.DIRECTORY, new_root)
        self.root_is_leaf = False
        self.store.pin(self.root_pid)
        self.store.write(self.root_pid)
        self.height += 1

    def _insert_into(self, pid: int, is_leaf: bool, key, value):
        node = self.store.read(pid)
        if is_leaf:
            pos = bisect.bisect_right(node.keys, key)
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            self.store.write(pid)
            if len(node.keys) <= self.leaf_capacity:
                return None
            return self._split_leaf(pid, node)
        pos = bisect.bisect_right(node.keys, key)
        child_pid = node.pids[pos]
        child_is_leaf = self.store.kind(child_pid) is PageKind.DATA
        split = self._insert_into(child_pid, child_is_leaf, key, value)
        if split is None:
            return None
        sep, right_pid = split
        node.keys.insert(pos, sep)
        node.pids.insert(pos + 1, right_pid)
        self.store.write(pid)
        if len(node.pids) <= self.inner_capacity:
            return None
        return self._split_inner(pid, node)

    def _split_leaf(self, pid: int, node: _Leaf):
        # Never cut through a run of equal keys: lookups assume all
        # duplicates of a key sit in one contiguous chain starting at the
        # leaf the separators route to.
        mid = len(node.keys) // 2
        while mid < len(node.keys) and node.keys[mid] == node.keys[mid - 1]:
            mid += 1
        if mid == len(node.keys):
            mid = len(node.keys) // 2
            while mid > 0 and node.keys[mid] == node.keys[mid - 1]:
                mid -= 1
        if mid == 0:
            return None  # every key equal: tolerate the oversized leaf
        right = _Leaf()
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_pid = node.next_pid
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right_pid = self.store.allocate(PageKind.DATA, right)
        node.next_pid = right_pid
        self.store.write(pid)
        self.store.write(right_pid)
        return right.keys[0], right_pid

    def _split_inner(self, pid: int, node: _Inner):
        mid = len(node.pids) // 2
        sep = node.keys[mid - 1]
        right = _Inner()
        right.keys = node.keys[mid:]
        right.pids = node.pids[mid:]
        node.keys = node.keys[: mid - 1]
        node.pids = node.pids[:mid]
        right_pid = self.store.allocate(PageKind.DIRECTORY, right)
        self.store.write(pid)
        self.store.write(right_pid)
        return sep, right_pid

    # -- scans ------------------------------------------------------------

    def iter_items(self) -> Iterator[tuple]:
        """Every ``(key, value)`` pair along the leaf chain, uncharged."""
        pid, is_leaf = self.root_pid, self.root_is_leaf
        while not is_leaf:
            node: _Inner = self.store.peek(pid)
            pid = node.pids[0]
            is_leaf = self.store.kind(pid) is PageKind.DATA
        while pid is not None:
            leaf: _Leaf = self.store.peek(pid)
            yield from zip(leaf.keys, leaf.values)
            pid = leaf.next_pid

    def _leaf_for(self, key) -> int:
        pid, is_leaf = self.root_pid, self.root_is_leaf
        while not is_leaf:
            node: _Inner = self.store.read(pid)
            pos = bisect.bisect_right(node.keys, key)
            pid = node.pids[pos]
            is_leaf = self.store.kind(pid) is PageKind.DATA
        return pid

    def scan_pages(self, lo, hi) -> Iterator[tuple]:
        """Yield ``(pid, leaf, start, stop)`` chunks with ``lo <= key < hi``.

        Page-granular form of :meth:`scan` for the vectorized scan
        helpers: the same leaves are read in the same order — the chain
        walk stops at the first leaf holding a key ``>= hi`` (that leaf
        is still read, exactly as the item-wise scan did).
        """
        pid = self._leaf_for(lo)
        while pid is not None:
            leaf: _Leaf = self.store.read(pid)
            start = bisect.bisect_left(leaf.keys, lo)
            stop = bisect.bisect_left(leaf.keys, hi, start)
            yield pid, leaf, start, stop
            if stop < len(leaf.keys):
                return
            pid = leaf.next_pid

    def scan(self, lo, hi) -> Iterator[tuple]:
        """Yield ``(key, value)`` pairs with ``lo <= key < hi``."""
        for _, leaf, start, stop in self.scan_pages(lo, hi):
            yield from zip(leaf.keys[start:stop], leaf.values[start:stop])

    def lookup(self, key) -> list:
        """Values stored under exactly ``key``."""
        pid = self._leaf_for(key)
        out = []
        while pid is not None:
            leaf: _Leaf = self.store.read(pid)
            start = bisect.bisect_left(leaf.keys, key)
            if start == len(leaf.keys):
                pid = leaf.next_pid
                continue
            for k, value in zip(leaf.keys[start:], leaf.values[start:]):
                if k != key:
                    return out
                out.append(value)
            pid = leaf.next_pid
        return out


def snapshot_bplus_pages(tree: _BPlusTree, content_of=None):
    """Uncharged :class:`~repro.obs.structure.PageView` walk of a B+-tree.

    Shared by every structure built on :class:`_BPlusTree` (the z-order
    PAM and the clipping SAM).  B+-tree pages have no geometric regions;
    ``content_of(leaf)`` may supply a data-page content MBR.
    """
    from repro.obs.structure import PageView

    queue: list[tuple[int, bool, int]] = [(tree.root_pid, tree.root_is_leaf, 0)]
    i = 0
    while i < len(queue):
        pid, is_leaf, depth = queue[i]
        i += 1
        if is_leaf:
            leaf: _Leaf = tree.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="data",
                depth=depth,
                regions=(),
                records=len(leaf.keys),
                capacity=tree.leaf_capacity,
                content=content_of(leaf) if content_of else None,
            )
            continue
        node: _Inner = tree.store.peek(pid)
        yield PageView(
            pid=pid,
            kind="directory",
            depth=depth,
            regions=(),
            records=len(node.pids),
            capacity=tree.inner_capacity,
            children=tuple(node.pids),
        )
        for child in node.pids:
            child_is_leaf = tree.store.kind(child) is PageKind.DATA
            queue.append((child, child_is_leaf, depth + 1))


class ZOrderBTree(PointAccessMethod):
    """Points stored under their Morton codes in a B+-tree.

    Range queries decompose the query rectangle into z-regions and scan
    the corresponding key intervals; precision is controlled by
    ``query_regions`` (more regions = fewer false leaf reads, more
    descents).
    """

    def __init__(self, store: PageStore, dims: int = 2, query_regions: int = 8):
        super().__init__(store, dims, layout.point_record_size(dims))
        self.query_regions = query_regions
        record_size = 4 + dims * layout.COORD_SIZE + layout.POINTER_SIZE
        inner_entry = 4 + layout.POINTER_SIZE
        self._tree = _BPlusTree(
            store,
            leaf_capacity=layout.data_page_capacity(record_size, store.page_size),
            inner_capacity=layout.directory_page_payload(store.page_size)
            // inner_entry,
        )

    @property
    def record_capacity(self) -> int:
        return self._tree.leaf_capacity

    @property
    def directory_height(self) -> int:
        return self._tree.height

    def iter_records(self):
        """Uncharged walk of every record along the leaf chain."""
        for _, (point, rid) in self._tree.iter_items():
            yield point, rid

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`)."""

        def content_of(leaf: _Leaf):
            if not leaf.values:
                return None
            return Rect.bounding_points([point for point, _ in leaf.values])

        yield from snapshot_bplus_pages(self._tree, content_of)

    def _z(self, point: tuple[float, ...]) -> int:
        return z_value(point, self.dims, Z_BITS_PER_AXIS)

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        self._tree.insert(self._z(point), (point, rid))

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        store = self.store
        max_depth = min(self.dims * Z_BITS_PER_AXIS, 20)
        regions = decompose_rect(rect, self.dims, self.query_regions, max_depth)
        if store.columnar is None:
            result = []
            for bits in regions:
                lo, hi = z_interval(bits, self.dims, Z_BITS_PER_AXIS)
                for pid, leaf, start, stop in self._tree.scan_pages(lo, hi):
                    result.extend(
                        rec
                        for rec in leaf.values[start:stop]
                        if rect.contains_point(rec[0])
                    )
            return result
        # Read-then-batch: the z-interval leaf scans charge their reads in
        # the original order while only *collecting* (page, slice) visits;
        # all cold pages then share one fused kernel call, and the hit
        # rows are sliced per visit afterwards.
        src = traverse.RowSource(store.columnar, rect)
        row_of = src.row
        visits: list[tuple[int, list, int, int]] = []
        for bits in regions:
            lo, hi = z_interval(bits, self.dims, Z_BITS_PER_AXIS)
            for pid, leaf, start, stop in self._tree.scan_pages(lo, hi):
                values = leaf.values
                if not values:
                    continue
                row_of(pid, "pts", "pts", values, "pts", fused_points)
                visits.append((pid, values, start, stop))
        rows = src.flush()
        result = []
        for pid, values, start, stop in visits:
            row = rows[(pid, "pts")]
            if start or stop != len(values):
                result.extend([values[i] for i in row if start <= i < stop])
            else:
                result.extend([values[i] for i in row])
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        return [
            rid for p, rid in self._tree.lookup(self._z(point)) if p == point
        ]
