"""An in-memory kd-tree used as a correctness oracle in tests.

The paper excludes binary trees from its comparison because they do not
map to secondary storage; here the kd-tree serves a different purpose:
it answers every query type exactly and independently of the page-based
structures, so tests can cross-check range, partial-match and exact-match
results of every PAM against it.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.rect import Rect

__all__ = ["KdTreeOracle"]


class _Node:
    __slots__ = ("point", "rids", "axis", "left", "right")

    def __init__(self, point: tuple[float, ...], rid: object, axis: int):
        self.point = point
        self.rids = [rid]
        self.axis = axis
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None


class KdTreeOracle:
    """A plain kd-tree: discriminator axes cycle with depth.

    Duplicate points accumulate their record ids on one node.
    """

    def __init__(self, dims: int = 2):
        if dims < 1:
            raise ValueError("dims must be positive")
        self.dims = dims
        self._root: _Node | None = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, point: Sequence[float], rid: object) -> None:
        """Add ``(point, rid)``."""
        point = tuple(float(c) for c in point)
        if len(point) != self.dims:
            raise ValueError(f"point has {len(point)} dims, tree has {self.dims}")
        self._count += 1
        if self._root is None:
            self._root = _Node(point, rid, 0)
            return
        node = self._root
        while True:
            if point == node.point:
                node.rids.append(rid)
                return
            side = "left" if point[node.axis] < node.point[node.axis] else "right"
            child = getattr(node, side)
            if child is None:
                setattr(node, side, _Node(point, rid, (node.axis + 1) % self.dims))
                return
            node = child

    def exact_match(self, point: Sequence[float]) -> list[object]:
        """All record ids stored at exactly ``point``."""
        point = tuple(float(c) for c in point)
        node = self._root
        while node is not None:
            if point == node.point:
                return list(node.rids)
            node = node.left if point[node.axis] < node.point[node.axis] else node.right
        return []

    def range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        """All records inside the closed ``rect``."""
        result: list[tuple[tuple[float, ...], object]] = []
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            if rect.contains_point(node.point):
                result.extend((node.point, rid) for rid in node.rids)
            if node.left is not None and node.point[node.axis] > rect.lo[node.axis]:
                stack.append(node.left)
            if node.right is not None and node.point[node.axis] <= rect.hi[node.axis]:
                stack.append(node.right)
        return result

    def partial_match(self, specified: dict[int, float]) -> list[tuple[tuple[float, ...], object]]:
        """Records matching the specified axis values exactly."""
        lo = [0.0] * self.dims
        hi = [1.0] * self.dims
        for axis, value in specified.items():
            lo[axis] = hi[axis] = value
        return self.range_query(Rect(tuple(lo), tuple(hi)))
