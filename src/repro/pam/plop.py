"""PLOP hashing [KS 88] — a "grid file without directory".

Multidimensional order-preserving linear hashing with partial
expansions: each axis is cut into binary (dyadic) slices; the cross
product of the slices addresses a primary bucket *arithmetically*, so no
directory is needed.  The file grows by *partial expansions*: when the
load factor passes a threshold, the next slice of the expansion axis is
halved and only the buckets of that slice are rehashed.  Records that do
not fit their primary bucket go to chained overflow pages — the
structure's weakness under clustered data, where a few buckets grow long
chains while most stay empty.

The paper uses PLOP in two roles: it is excluded from the PAM comparison
("efficient only for weakly correlated data") but serves, via the
overlapping-regions technique, as one of the four compared SAMs
(:mod:`repro.sam.overlapping` builds on the grid core defined here).
"""

from __future__ import annotations

import bisect
from typing import Callable

from repro.core.interfaces import PointAccessMethod
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse
from repro.storage.soa import soa_field

__all__ = ["PlopHashing", "QuantileHashing"]

#: Load factor above which the next partial expansion runs.
_EXPANSION_LOAD = 0.8


class _PlopPage:
    """A primary or overflow page of one bucket chain."""

    __slots__ = ("_soa_records",)

    records = soa_field()

    def __init__(self) -> None:
        self.records: list[tuple[tuple[float, ...], object]] = []


class _Bucket:
    """A bucket: the pids of its primary page and overflow chain."""

    __slots__ = ("chain",)

    def __init__(self, primary: int):
        self.chain: list[int] = [primary]


class _PlopGrid:
    """The directory-less slice grid shared by the PAM and the OR-SAM.

    ``key_of`` extracts the hashed point from a record (identity for the
    PAM; the rectangle center for the overlapping-regions SAM).
    """

    def __init__(
        self,
        store: PageStore,
        dims: int,
        page_capacity: int,
        key_of: Callable[[tuple], tuple[float, ...]],
        split_strategy: str = "midpoint",
    ):
        if split_strategy not in ("midpoint", "quantile"):
            raise ValueError(f"unknown split strategy {split_strategy!r}")
        self.store = store
        self.dims = dims
        self.capacity = page_capacity
        self.key_of = key_of
        self.split_strategy = split_strategy
        #: Per axis: sorted dyadic slice boundaries including 0 and 1.
        self.slices: list[list[float]] = [[0.0, 1.0] for _ in range(dims)]
        self.buckets: dict[tuple[int, ...], _Bucket] = {}
        self._records = 0
        self._pages = 1
        #: Axis currently being expanded and the next slice to halve.
        self._axis = 0
        self._pointer = 0
        first = store.allocate(PageKind.DATA, _PlopPage())
        self.buckets[(0,) * dims] = _Bucket(first)
        store.write(first)

    # -- addressing ---------------------------------------------------------

    def address(self, key: tuple[float, ...]) -> tuple[int, ...]:
        """Bucket index of ``key`` — arithmetic, never a disk access."""
        idx = []
        for axis, c in enumerate(key):
            i = bisect.bisect_right(self.slices[axis], c) - 1
            idx.append(min(max(i, 0), len(self.slices[axis]) - 2))
        return tuple(idx)

    def bucket(self, idx: tuple[int, ...]) -> _Bucket:
        """The bucket at ``idx``, created on demand."""
        found = self.buckets.get(idx)
        if found is None:
            pid = self.store.allocate(PageKind.DATA, _PlopPage())
            self._pages += 1
            found = _Bucket(pid)
            self.buckets[idx] = found
        return found

    # -- record operations ------------------------------------------------------

    def insert(self, record: tuple) -> None:
        """Append a record to its bucket chain, expanding if loaded."""
        bucket = self.bucket(self.address(self.key_of(record)))
        for pid in bucket.chain:
            page: _PlopPage = self.store.read(pid)
            if len(page.records) < self.capacity:
                page.records.append(record)
                self.store.write(pid)
                break
        else:
            overflow = _PlopPage()
            overflow.records.append(record)
            pid = self.store.allocate(PageKind.DATA, overflow)
            self._pages += 1
            bucket.chain.append(pid)
            self.store.write(pid)
        self._records += 1
        while self._records > _EXPANSION_LOAD * self._pages * self.capacity:
            self._partial_expansion()

    def iter_all(self):
        """Every stored record over all bucket chains, uncharged."""
        for bucket in self.buckets.values():
            for pid in bucket.chain:
                yield from self.store.peek(pid).records

    def read_chain(self, idx: tuple[int, ...]) -> list[tuple]:
        """All records of one bucket, charging every page of the chain."""
        records: list[tuple] = []
        for _, page_records in self.iter_chain_pages(idx):
            records.extend(page_records)
        return records

    def iter_chain_pages(self, idx: tuple[int, ...]):
        """Yield ``(pid, records)`` per chain page, charging every read.

        Page-granular variant of :meth:`read_chain` for the vectorized
        scan helpers; reads the same pages in the same order.
        """
        bucket = self.buckets.get(idx)
        if bucket is None:
            return
        for pid in bucket.chain:
            page: _PlopPage = self.store.read(pid)
            yield pid, page.records

    def index_range(self, axis: int, lo: float, hi: float) -> range:
        """Slice indices of ``axis`` whose interval meets ``[lo, hi]``."""
        boundaries = self.slices[axis]
        first = max(bisect.bisect_right(boundaries, lo) - 1, 0)
        stop = min(bisect.bisect_right(boundaries, hi), len(boundaries) - 1)
        return range(first, stop)

    # -- growth --------------------------------------------------------------------

    def _partial_expansion(self) -> None:
        """Halve the next slice of the expansion axis and rehash it."""
        axis = self._axis
        boundaries = self.slices[axis]
        slice_index = self._pointer
        lo, hi = boundaries[slice_index], boundaries[slice_index + 1]
        affected = [idx for idx in self.buckets if idx[axis] == slice_index]
        midpoint = self._split_value(axis, lo, hi, affected)
        boundaries.insert(slice_index + 1, midpoint)
        # Re-address every bucket of the halved slice.
        moved: dict[tuple[int, ...], _Bucket] = {}
        for idx in self.buckets:
            if idx[axis] > slice_index:
                bumped = idx[:axis] + (idx[axis] + 1,) + idx[axis + 1 :]
                moved[bumped] = self.buckets[idx]
            elif idx[axis] < slice_index:
                moved[idx] = self.buckets[idx]
        for idx in affected:
            old = self.buckets[idx]
            records: list[tuple] = []
            for pid in old.chain:
                page: _PlopPage = self.store.read(pid)
                records.extend(page.records)
                self.store.free(pid)
                self._pages -= 1
            lower: list[tuple] = []
            upper: list[tuple] = []
            for record in records:
                side = upper if self.key_of(record)[axis] >= midpoint else lower
                side.append(record)
            for offset, part in enumerate((lower, upper)):
                new_idx = idx[:axis] + (slice_index + offset,) + idx[axis + 1 :]
                chain: list[int] = []
                for start in range(0, max(len(part), 1), self.capacity):
                    page = _PlopPage()
                    page.records = part[start : start + self.capacity]
                    pid = self.store.allocate(PageKind.DATA, page)
                    self._pages += 1
                    self.store.write(pid)
                    chain.append(pid)
                moved[new_idx] = _Bucket(chain[0])
                moved[new_idx].chain = chain
        self.buckets = moved
        # Advance the expansion pointer; when the axis is fully doubled,
        # switch to the axis with the fewest slices.
        self._pointer += 2
        if self._pointer >= len(self.slices[axis]) - 1:
            self._pointer = 0
            self._axis = min(range(self.dims), key=lambda a: len(self.slices[a]))

    def _split_value(self, axis, lo, hi, affected) -> float:
        """Where to cut the slice ``[lo, hi]`` of ``axis``.

        PLOP uses the dyadic midpoint; quantile hashing [KS 87] cuts at
        the *median* of the stored keys so the boundaries follow the
        data's marginal distribution.
        """
        if self.split_strategy == "quantile":
            coords = []
            for idx in affected:
                for pid in self.buckets[idx].chain:
                    page = self.store._objects[pid]
                    coords.extend(self.key_of(r)[axis] for r in page.records)
            coords.sort()
            if coords:
                median = coords[len(coords) // 2]
                if lo < median < hi:
                    return median
        return (lo + hi) / 2.0


def snapshot_plop_pages(grid: _PlopGrid, content_of=None):
    """Uncharged :class:`~repro.obs.structure.PageView` walk of a PLOP grid.

    Shared by the PAM and the overlapping-regions SAM.  Every page is a
    data page; the *depth* is the page's position in its bucket chain,
    so the snapshot's level rows show the overflow-chain profile.  The
    primary page carries the bucket's slice-product region.
    """
    from repro.obs.structure import PageView

    for idx, bucket in sorted(grid.buckets.items()):
        lo = tuple(grid.slices[axis][i] for axis, i in enumerate(idx))
        hi = tuple(grid.slices[axis][i + 1] for axis, i in enumerate(idx))
        region = Rect(lo, hi)
        for position, pid in enumerate(bucket.chain):
            page: _PlopPage = grid.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="data",
                depth=position,
                regions=(region,) if position == 0 else (),
                records=len(page.records),
                capacity=grid.capacity,
                content=content_of(page.records) if content_of else None,
            )


class PlopHashing(PointAccessMethod):
    """PLOP hashing as a point access method."""

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, layout.point_record_size(dims))
        capacity = layout.data_page_capacity(self.record_size, store.page_size)
        self._grid = _PlopGrid(store, dims, capacity, key_of=lambda r: r[0])

    @property
    def record_capacity(self) -> int:
        return self._grid.capacity

    @property
    def directory_height(self) -> int:
        """PLOP has no directory; addresses are computed arithmetically."""
        return 0

    def iter_records(self):
        """Uncharged walk of every record over the bucket chains."""
        return self._grid.iter_all()

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`)."""

        def content_of(records):
            if not records:
                return None
            return Rect.bounding_points([p for p, _ in records])

        yield from snapshot_plop_pages(self._grid, content_of)

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        self._grid.insert((point, rid))

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        ranges = [
            self._grid.index_range(axis, rect.lo[axis], rect.hi[axis])
            for axis in range(self.dims)
        ]
        result = []
        store = self.store
        vector = store.columnar is not None
        pages = [] if vector else None
        idx = [r.start for r in ranges]
        while True:
            for pid, records in self._grid.iter_chain_pages(tuple(idx)):
                if vector:
                    pages.append((pid, records))
                else:
                    result.extend(
                        rec for rec in records if rect.contains_point(rec[0])
                    )
            axis = 0
            while axis < self.dims:
                idx[axis] += 1
                if idx[axis] < ranges[axis].stop:
                    break
                idx[axis] = ranges[axis].start
                axis += 1
            if axis == self.dims:
                break
        if vector:
            # Read-then-batch: chains were read in the original order
            # above; evaluate every cold page in one fused kernel call.
            rows = traverse.data_hit_rows(store, rect, pages)
            for pid, records in pages:
                result.extend([records[i] for i in rows[pid]])
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        records = self._grid.read_chain(self._grid.address(point))
        return [rid for p, rid in records if p == point]


class QuantileHashing(PlopHashing):
    """Multidimensional quantile hashing [KS 87].

    Identical to PLOP hashing except that partial expansions cut each
    slice at the *median* of the stored keys rather than the dyadic
    midpoint, so the slice boundaries approximate per-axis quantiles —
    the property behind the title claim that quantile hashing "is very
    efficient for non-uniform distributions".  The ``ABL-QUANTILE``
    bench compares the two on the paper's skewed files.
    """

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims)
        self._grid.split_strategy = "quantile"
