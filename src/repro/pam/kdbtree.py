"""The k-d-B tree [Rob 81] — class C1 of the paper's taxonomy.

Robinson's k-d-B tree is the classic member of the paper's class C1
(rectangular, complete, disjoint regions): a balanced tree whose region
pages partition their region into disjoint rectangles that *span it
completely* — so, unlike the BUDDY tree, empty data space is always
partitioned.  Its signature mechanism is the **forced split**: when a
region page splits by a hyperplane, every child region crossing the
plane must be split recursively all the way down to the point pages,
which is what keeps the tree perfectly balanced at the price of
storage utilisation.

The paper's comparison leaves the k-d-B tree out in favour of the newer
C1 structures; it is implemented here as the missing classic baseline
and takes part in the integration test matrix.
"""

from __future__ import annotations

from repro.core.interfaces import PointAccessMethod
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse
from repro.storage.soa import fused_points, soa_field

__all__ = ["KdBTree"]


class _PointPage:
    """A leaf: records of one rectangular region (struct-of-arrays)."""

    __slots__ = ("_soa_records",)

    records = soa_field()

    def __init__(self, records=None):
        self.records: list[tuple[tuple[float, ...], object]] = records or []


class _RegionPage:
    """An inner page: child regions partitioning this page's region."""

    __slots__ = ("_soa_rects", "pids", "leaf_children")

    rects = soa_field()

    def __init__(self, rects=None, pids=None, leaf_children=True):
        self.rects: list[Rect] = rects or []
        self.pids: list[int] = pids or []
        self.leaf_children = leaf_children


class KdBTree(PointAccessMethod):
    """Robinson's k-d-B tree."""

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, layout.point_record_size(dims))
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        entry_size = 2 * dims * layout.COORD_SIZE + layout.POINTER_SIZE
        self._fanout = layout.directory_page_payload(store.page_size) // entry_size
        self._root_pid = store.allocate(PageKind.DATA, _PointPage())
        self._root_is_leaf = True
        store.pin(self._root_pid)
        store.write(self._root_pid)
        self._height = 0

    # -- plumbing ---------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        """Region-page levels above the point pages (uniform: balanced)."""
        return self._height

    def iter_records(self):
        """Uncharged walk of every record through the region pages."""
        stack = [(self._root_pid, self._root_is_leaf)]
        while stack:
            pid, is_leaf = stack.pop()
            if is_leaf:
                yield from self.store.peek(pid).records
            else:
                node: _RegionPage = self.store.peek(pid)
                stack.extend((child, node.leaf_children) for child in node.pids)

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`)."""
        from repro.obs.structure import PageView

        queue: list[tuple[int, bool, Rect, int]] = [
            (self._root_pid, self._root_is_leaf, Rect.unit(self.dims), 0)
        ]
        i = 0
        while i < len(queue):
            pid, is_leaf, region, depth = queue[i]
            i += 1
            if is_leaf:
                page: _PointPage = self.store.peek(pid)
                yield PageView(
                    pid=pid,
                    kind="data",
                    depth=depth,
                    regions=(region,),
                    records=len(page.records),
                    capacity=self._capacity,
                    content=(
                        Rect.bounding_points([p for p, _ in page.records])
                        if page.records
                        else None
                    ),
                )
                continue
            node: _RegionPage = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="directory",
                depth=depth,
                regions=(region,),
                records=len(node.pids),
                capacity=self._fanout,
                children=tuple(node.pids),
                entry_regions=tuple(node.rects),
            )
            for rect, child in zip(node.rects, node.pids):
                queue.append((child, node.leaf_children, rect, depth + 1))

    @staticmethod
    def _region_contains(rect: Rect, point: tuple[float, ...]) -> bool:
        """Half-open containment so that sibling regions never tie."""
        for lo, c, hi in zip(rect.lo, point, rect.hi):
            if c < lo:
                return False
            if c >= hi and hi != 1.0:
                return False
            if c > hi:
                return False
        return True

    # -- insertion ------------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        if self._root_is_leaf:
            page: _PointPage = self.store.read(self._root_pid)
            page.records.append((point, rid))
            if len(page.records) > self._capacity:
                self._split_root_leaf(page)
            else:
                self.store.write(self._root_pid)
            return
        split = self._insert_into(self._root_pid, False, point, rid)
        if split is None:
            return
        _, left, right = split
        self._grow_root(left, right, leaf_children=False)

    def _split_root_leaf(self, page: _PointPage) -> None:
        plane = self._choose_point_plane(page.records, Rect.unit(self.dims))
        if plane is None:
            self.store.write(self._root_pid)
            return
        axis, value = plane
        left_rect, right_rect = Rect.unit(self.dims).split_at(axis, value)
        right = _PointPage([r for r in page.records if r[0][axis] >= value])
        page.records = [r for r in page.records if r[0][axis] < value]
        right_pid = self.store.allocate(PageKind.DATA, right)
        left_pid = self._root_pid
        self.store.unpin(left_pid)
        self.store.write(left_pid)
        self.store.write(right_pid)
        self._root_is_leaf = False
        self._grow_root(
            (left_rect, left_pid), (right_rect, right_pid), leaf_children=True
        )

    def _grow_root(self, left, right, leaf_children: bool) -> None:
        root = _RegionPage(
            rects=[left[0], right[0]],
            pids=[left[1], right[1]],
            leaf_children=leaf_children,
        )
        self.store.unpin(self._root_pid)  # idempotent; the old root pays again
        self._root_pid = self.store.allocate(PageKind.DIRECTORY, root)
        self.store.pin(self._root_pid)
        self.store.write(self._root_pid)
        self._height += 1

    def _insert_into(self, pid: int, is_leaf: bool, point, rid):
        """Insert below ``pid``; on overflow return (plane, (rect, pid), (rect, pid)).

        The returned rectangles are the two halves of the page's region;
        the caller replaces its entry by the pair.
        """
        if is_leaf:
            # Point pages never split themselves: the parent owns their
            # region rectangle and performs the split.
            page: _PointPage = self.store.read(pid)
            page.records.append((point, rid))
            self.store.write(pid)
            return None
        node: _RegionPage = self.store.read(pid)
        slot = next(
            i
            for i, r in enumerate(node.rects)
            if self._region_contains(r, point)
        )
        child_pid = node.pids[slot]
        child_split = self._insert_into(child_pid, node.leaf_children, point, rid)
        if node.leaf_children:
            child: _PointPage = self.store._objects[child_pid]
            if len(child.records) > self._capacity:
                self._split_child(node, slot)
        elif child_split is not None:
            _, left, right = child_split
            node.rects[slot] = left[0]
            node.pids[slot] = left[1]
            node.rects.insert(slot + 1, right[0])
            node.pids.insert(slot + 1, right[1])
        self.store.write(pid)
        if len(node.pids) <= self._fanout:
            return None
        return self._split_region_page(pid, node)

    def _split_child(self, node: _RegionPage, slot: int) -> None:
        """Split an overflowing point page under ``node`` by a median plane."""
        pid = node.pids[slot]
        region = node.rects[slot]
        page: _PointPage = self.store._objects[pid]
        plane = self._choose_point_plane(page.records, region)
        if plane is None:
            self.store.write(pid)
            return
        axis, value = plane
        left_rect, right_rect = region.split_at(axis, value)
        right = _PointPage([r for r in page.records if r[0][axis] >= value])
        page.records = [r for r in page.records if r[0][axis] < value]
        right_pid = self.store.allocate(PageKind.DATA, right)
        node.rects[slot] = left_rect
        node.pids[slot] = pid
        node.rects.insert(slot + 1, right_rect)
        node.pids.insert(slot + 1, right_pid)
        self.store.write(pid)
        self.store.write(right_pid)

    def _choose_point_plane(self, records, region: Rect):
        """Median plane on the axis with the largest point spread."""
        best = None
        best_spread = -1.0
        for axis in range(self.dims):
            coords = sorted(p[axis] for p, _ in records)
            median = coords[len(coords) // 2]
            if not region.lo[axis] < median < region.hi[axis]:
                continue
            if median == coords[0]:
                continue
            spread = coords[-1] - coords[0]
            if spread > best_spread:
                best_spread = spread
                best = (axis, median)
        return best

    def _split_region_page(self, pid: int, node: _RegionPage):
        """Split a region page, force-splitting children that cross the plane."""
        region = Rect.bounding(node.rects)
        axis, value = self._choose_region_plane(node)
        left_rect, right_rect = region.split_at(axis, value)
        left = _RegionPage(leaf_children=node.leaf_children)
        right = _RegionPage(leaf_children=node.leaf_children)
        for rect, child in zip(node.rects, node.pids):
            if rect.hi[axis] <= value:
                left.rects.append(rect)
                left.pids.append(child)
            elif rect.lo[axis] >= value:
                right.rects.append(rect)
                right.pids.append(child)
            else:
                l_rect, r_rect = rect.split_at(axis, value)
                l_pid, r_pid = self._force_split(
                    child, node.leaf_children, axis, value
                )
                left.rects.append(l_rect)
                left.pids.append(l_pid)
                right.rects.append(r_rect)
                right.pids.append(r_pid)
        # Reuse the split page for the left half.
        self.store._objects[pid] = left
        right_pid = self.store.allocate(PageKind.DIRECTORY, right)
        self.store.write(pid)
        self.store.write(right_pid)
        return (axis, value), (left_rect, pid), (right_rect, right_pid)

    def _choose_region_plane(self, node: _RegionPage) -> tuple[int, float]:
        """The child boundary minimising forced splits, ties by balance."""
        region = Rect.bounding(node.rects)
        best = None
        best_key = None
        for axis in range(self.dims):
            candidates = set()
            for rect in node.rects:
                for v in (rect.lo[axis], rect.hi[axis]):
                    if region.lo[axis] < v < region.hi[axis]:
                        candidates.add(v)
            for value in candidates:
                forced = sum(
                    1 for r in node.rects if r.lo[axis] < value < r.hi[axis]
                )
                left = sum(1 for r in node.rects if r.hi[axis] <= value)
                right = sum(1 for r in node.rects if r.lo[axis] >= value)
                key = (forced, abs(left - right))
                if best_key is None or key < best_key:
                    best_key = key
                    best = (axis, value)
        if best is None:
            raise RuntimeError("region page with a single child region overflowed")
        return best

    def _force_split(self, pid: int, is_leaf: bool, axis: int, value: float):
        """Split the subtree under ``pid`` by the plane — the k-d-B forced split."""
        if is_leaf:
            page: _PointPage = self.store.read(pid)
            right = _PointPage([r for r in page.records if r[0][axis] >= value])
            page.records = [r for r in page.records if r[0][axis] < value]
            right_pid = self.store.allocate(PageKind.DATA, right)
            self.store.write(pid)
            self.store.write(right_pid)
            return pid, right_pid
        node: _RegionPage = self.store.read(pid)
        left = _RegionPage(leaf_children=node.leaf_children)
        right = _RegionPage(leaf_children=node.leaf_children)
        for rect, child in zip(node.rects, node.pids):
            if rect.hi[axis] <= value:
                left.rects.append(rect)
                left.pids.append(child)
            elif rect.lo[axis] >= value:
                right.rects.append(rect)
                right.pids.append(child)
            else:
                l_rect, r_rect = rect.split_at(axis, value)
                l_pid, r_pid = self._force_split(
                    child, node.leaf_children, axis, value
                )
                left.rects.append(l_rect)
                left.pids.append(l_pid)
                right.rects.append(r_rect)
                right.pids.append(r_pid)
        self.store._objects[pid] = left
        right_pid = self.store.allocate(PageKind.DIRECTORY, right)
        self.store.write(pid)
        self.store.write(right_pid)
        return pid, right_pid

    # -- queries ----------------------------------------------------------------------

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        store = self.store
        if store.columnar is None:
            return self._range_query_scalar(rect)
        # Plan: level-at-a-time over uncharged views, one fused kernel
        # call per level for all cold pages (see repro.query.traverse).
        objects = store._objects
        src = traverse.RowSource(store.columnar, rect)
        row_of = src.row
        region_tag, region_build = traverse.box_view("isect")
        verdicts: dict[int, list] = {}
        level = [(self._root_pid, self._root_is_leaf)]
        while level:
            nxt: list = []
            deferred: list = []
            for pid, is_leaf in level:
                if is_leaf:
                    records = objects[pid].records
                    if not records:
                        verdicts[pid] = traverse._EMPTY_ROW
                        continue
                    row = row_of(pid, "pts", "pts", records, "pts", fused_points)
                    if row is None:
                        deferred.append((pid, True))
                    else:
                        verdicts[pid] = row
                    continue
                node = objects[pid]
                if not node.rects:
                    verdicts[pid] = traverse._EMPTY_ROW
                    continue
                row = row_of(
                    pid, "regions:isect", "isect", node.rects, region_tag, region_build
                )
                if row is None:
                    deferred.append((pid, False))
                else:
                    verdicts[pid] = row
                    pids = node.pids
                    nxt.extend([(pids[i], node.leaf_children) for i in row])
            if deferred:
                rows = src.flush()
                for pid, is_leaf in deferred:
                    row = verdicts[pid] = rows[
                        (pid, "pts" if is_leaf else "regions:isect")
                    ]
                    if not is_leaf:
                        node = objects[pid]
                        pids = node.pids
                        nxt.extend([(pids[i], node.leaf_children) for i in row])
            level = nxt
        # Replay: the original descent order with charged reads.
        result: list[tuple[tuple[float, ...], object]] = []
        read = store.read
        stack = [(self._root_pid, self._root_is_leaf)]
        while stack:
            pid, is_leaf = stack.pop()
            if is_leaf:
                records = read(pid).records
                result.extend([records[i] for i in verdicts[pid]])
            else:
                node = read(pid)
                pids = node.pids
                leaf = node.leaf_children
                stack.extend((pids[i], leaf) for i in verdicts[pid])
        return result

    def _range_query_scalar(
        self, rect: Rect
    ) -> list[tuple[tuple[float, ...], object]]:
        """The original scalar descent (the ``REPRO_VECTOR=0`` kill switch)."""
        result: list[tuple[tuple[float, ...], object]] = []
        stack = [(self._root_pid, self._root_is_leaf)]
        while stack:
            pid, is_leaf = stack.pop()
            if is_leaf:
                page: _PointPage = self.store.read(pid)
                result.extend(
                    rec for rec in page.records if rect.contains_point(rec[0])
                )
                continue
            node: _RegionPage = self.store.read(pid)
            for region, child in zip(node.rects, node.pids):
                if region.intersects(rect):
                    stack.append((child, node.leaf_children))
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        pid, is_leaf = self._root_pid, self._root_is_leaf
        while not is_leaf:
            node: _RegionPage = self.store.read(pid)
            slot = next(
                i
                for i, r in enumerate(node.rects)
                if self._region_contains(r, point)
            )
            pid, is_leaf = node.pids[slot], node.leaf_children
        page: _PointPage = self.store.read(pid)
        return [rid for p, rid in page.records if p == point]
