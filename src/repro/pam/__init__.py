"""Point access methods (Part I of the paper).

Implemented structures, with the abbreviations used in the paper's
tables:

* ``GRID`` — :class:`repro.pam.twolevelgrid.TwoLevelGridFile` (the
  measuring stick; its first-level directory is kept in main memory).
* ``BANG`` / ``BANG*`` — :class:`repro.pam.bang.BangFile` (nested block
  regions; ``variable_length_entries=True`` gives BANG*).
* ``HB`` — :class:`repro.pam.hbtree.HBTree` (kd-tree node organisation,
  holey-brick regions).
* ``BUDDY`` / ``BUDDY+`` — :class:`repro.pam.buddytree.BuddyTree`
  (``pack()`` produces the packed variant).

Additional structures used as substrates or baselines:

* :class:`repro.pam.gridfile.GridFile` — classic one-level grid file.
* :class:`repro.pam.plop.PlopHashing` — directory-less linear hashing,
  the substrate of the overlapping-regions SAM.
* :class:`repro.pam.zbtree.ZOrderBTree` — B+-tree over z-values (class
  C4 baseline, substrate of the clipping SAM).
* :class:`repro.pam.kdtree.KdTreeOracle` — in-memory oracle for tests.
* :class:`repro.pam.kdbtree.KdBTree` — the classic class-C1 k-d-B tree.
* :class:`repro.pam.mlgf.MultilevelGridFile` — BUDDY's balanced
  predecessor (class C3), used by the ABL-MLGF bench.
* :class:`repro.pam.twingrid.TwinGridFile` — the class-C2 twin grid
  file, completing the taxonomy of Table 1.
* :class:`repro.pam.plop.QuantileHashing` — the adaptive directory-less
  hashing scheme of [KS 87].
"""

from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.pam.gridfile import GridFile
from repro.pam.hbtree import HBTree
from repro.pam.kdbtree import KdBTree
from repro.pam.kdtree import KdTreeOracle
from repro.pam.mlgf import MultilevelGridFile
from repro.pam.plop import PlopHashing, QuantileHashing
from repro.pam.twingrid import TwinGridFile
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.pam.zbtree import ZOrderBTree

__all__ = [
    "BangFile",
    "BuddyTree",
    "GridFile",
    "HBTree",
    "KdBTree",
    "KdTreeOracle",
    "MultilevelGridFile",
    "PlopHashing",
    "QuantileHashing",
    "TwinGridFile",
    "TwoLevelGridFile",
    "ZOrderBTree",
]
