"""HB — the hB-tree (holey brick tree) [LS 89].

Every index node organises its children with an internal **kd-tree**
whose internal nodes are single-coordinate comparisons and whose leaves
are child page references.  Node splitting extracts a kd-subtree whose
(real-)leaf count lies between 1/3 and 2/3 of the node; the space left
behind is a *holey brick* — a rectangle minus the extracted rectangle —
marked by an ``EXT`` slot in the donor's kd-tree.  The split is posted
to every parent by replacing each affected child reference with the
chain of kd-comparisons describing the extracted region; the off-chain
sides keep pointing to the donor, so one node may be referenced through
**several directory entries**, and a child may even acquire several
parents — the paper's observation that "the hB-tree is actually a
graph".

Data nodes split by a median hyperplane; following §3 of the paper, the
split axis is chosen to minimise the margins of the two resulting
regions (the authors' optimisation over the original specification).

The characteristics the comparison observed — directory height usually
one more than the competitors, fine partitioning of empty space, and
duplicate postings eating directory capacity — all emerge from this
construction.

``minimal_regions=True`` implements the paper's §5 prescription: "the
only way to improve HB is to incorporate the concept of not
partitioning empty data space.  With this and the median partition it
might become very competitive."  Every kd-leaf then also carries the
minimal bounding rectangle of the subtree below it (raising the leaf
slot from 4 to ``4 + 2·d·4`` bytes), and queries prune kd-leaves whose
region misses the query.  The ``ABL-HB-MBR`` bench measures the
prediction.
"""

from __future__ import annotations

from repro.core.interfaces import PointAccessMethod
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse
from repro.storage.soa import fused_points, soa_field

__all__ = ["HBTree"]

#: Bytes of one kd-tree internal node: a 4-byte coordinate, the axis and
#: the intra-node child slots.
_KD_INTERNAL_BYTES = 8

_LEAF = 0
_INTERNAL = 1
_EXT = 2


class _Kd:
    """One slot of an index node's kd-tree (internal, leaf or EXT marker)."""

    __slots__ = ("kind", "axis", "coord", "left", "right", "pid", "is_data", "mbr")

    @classmethod
    def leaf(cls, pid: int, is_data: bool, mbr: Rect | None = None) -> "_Kd":
        node = cls()
        node.kind = _LEAF
        node.pid = pid
        node.is_data = is_data
        node.mbr = mbr
        return node

    @classmethod
    def internal(cls, axis: int, coord: float, left: "_Kd", right: "_Kd") -> "_Kd":
        node = cls()
        node.kind = _INTERNAL
        node.axis = axis
        node.coord = coord
        node.left = left
        node.right = right
        return node

    @classmethod
    def ext(cls) -> "_Kd":
        node = cls()
        node.kind = _EXT
        return node


class _IndexNode:
    """An hB-tree index page: the root of its local kd-tree."""

    __slots__ = ("kd",)

    def __init__(self, kd: _Kd):
        self.kd = kd


class _DataNode:
    """An hB-tree data page."""

    __slots__ = ("_soa_records",)

    records = soa_field()

    def __init__(self, records: list[tuple[tuple[float, ...], object]] | None = None):
        self.records = records if records is not None else []

    def mbr(self) -> Rect | None:
        """Minimal bounding rectangle of the stored records."""
        if not self.records:
            return None
        return Rect.bounding_points([p for p, _ in self.records])


class HBTree(PointAccessMethod):
    """The hB-tree."""

    def __init__(self, store: PageStore, dims: int = 2, minimal_regions: bool = False):
        super().__init__(store, dims, layout.point_record_size(dims))
        self.minimal_regions = minimal_regions
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        self._index_payload = layout.directory_page_payload(store.page_size)
        self._leaf_bytes = layout.POINTER_SIZE + (
            2 * dims * layout.COORD_SIZE if minimal_regions else 0
        )
        self._root_pid = store.allocate(PageKind.DATA, _DataNode())
        self._root_is_data = True
        store.pin(self._root_pid)
        store.write(self._root_pid)
        #: child pid -> set of index pids referencing it (the "graph" edges).
        self._parents: dict[int, set[int]] = {}

    # -- plumbing ---------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        """Longest chain of index nodes from the root to a data node."""
        if self._root_is_data:
            return 0
        seen: dict[int, int] = {}

        def depth(pid: int, is_data: bool) -> int:
            if is_data:
                return 0
            if pid in seen:
                return seen[pid]
            node: _IndexNode = self.store._objects[pid]
            best = 0
            stack = [node.kd]
            while stack:
                kd = stack.pop()
                if kd.kind == _INTERNAL:
                    stack.extend((kd.left, kd.right))
                elif kd.kind == _LEAF:
                    best = max(best, depth(kd.pid, kd.is_data))
            seen[pid] = 1 + best
            return 1 + best

        return depth(self._root_pid, False)

    def iter_records(self):
        """Uncharged walk of every record (the directory is a graph, so
        data pages reached through several parents are read once)."""
        seen: set[int] = set()
        stack = [(self._root_pid, self._root_is_data)]
        while stack:
            pid, is_data = stack.pop()
            if pid in seen:
                continue
            seen.add(pid)
            if is_data:
                yield from self.store.peek(pid).records
            else:
                node: _IndexNode = self.store.peek(pid)
                stack.extend(
                    (leaf.pid, leaf.is_data) for leaf in self._kd_leaves(node.kd)
                )

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        The directory is a graph: shared nodes are yielded once at
        their first-visit (BFS) depth.  Regions come from the kd-leaf
        MBRs, which are only maintained in the minimal-regions variant.
        """
        from repro.obs.structure import PageView

        if self._root_is_data:
            page = self.store.peek(self._root_pid)
            yield PageView(
                pid=self._root_pid,
                kind="data",
                depth=0,
                regions=(),
                records=len(page.records),
                capacity=self._capacity,
                content=page.mbr(),
            )
            return
        queue: list[tuple[int, int]] = [(self._root_pid, 0)]
        seen_index: set[int] = set([self._root_pid])
        data_order: list[int] = []
        data_owned: dict[int, tuple[int, list[Rect]]] = {}
        i = 0
        while i < len(queue):
            pid, depth = queue[i]
            i += 1
            node: _IndexNode = self.store.peek(pid)
            leaves = self._kd_leaves(node.kd)
            yield PageView(
                pid=pid,
                kind="directory",
                depth=depth,
                regions=(),
                records=len(leaves),
                capacity=0,
                children=tuple(leaf.pid for leaf in leaves),
                entry_regions=tuple(
                    leaf.mbr for leaf in leaves if leaf.mbr is not None
                ),
            )
            for leaf in leaves:
                if leaf.is_data:
                    if leaf.pid not in data_owned:
                        data_owned[leaf.pid] = (depth + 1, [])
                        data_order.append(leaf.pid)
                    if leaf.mbr is not None:
                        data_owned[leaf.pid][1].append(leaf.mbr)
                elif leaf.pid not in seen_index:
                    seen_index.add(leaf.pid)
                    queue.append((leaf.pid, depth + 1))
        for pid in data_order:
            depth, rects = data_owned[pid]
            page = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="data",
                depth=depth,
                regions=tuple(rects),
                records=len(page.records),
                capacity=self._capacity,
                content=page.mbr(),
            )

    # -- kd-tree helpers -------------------------------------------------------

    @staticmethod
    def _kd_leaves(kd: _Kd) -> list[_Kd]:
        """All real leaves (EXT markers excluded) below ``kd``."""
        leaves, stack = [], [kd]
        while stack:
            node = stack.pop()
            if node.kind == _INTERNAL:
                stack.extend((node.left, node.right))
            elif node.kind == _LEAF:
                leaves.append(node)
        return leaves

    def _kd_bytes(self, kd: _Kd) -> int:
        """On-page size of a kd-tree (EXT markers cost a pointer slot;
        with minimal regions every leaf also stores its subtree MBR)."""
        total, stack = 0, [kd]
        while stack:
            node = stack.pop()
            if node.kind == _INTERNAL:
                total += _KD_INTERNAL_BYTES
                stack.extend((node.left, node.right))
            elif node.kind == _LEAF:
                total += self._leaf_bytes
            else:
                total += layout.POINTER_SIZE
        return total

    def _node_overflowed(self, node: _IndexNode) -> bool:
        return self._kd_bytes(node.kd) > self._index_payload

    @staticmethod
    def _walk(kd: _Kd, point: tuple[float, ...]) -> _Kd:
        """The kd-leaf responsible for ``point``."""
        while kd.kind == _INTERNAL:
            kd = kd.left if point[kd.axis] < kd.coord else kd.right
        if kd.kind == _EXT:
            raise RuntimeError("point walked into an extracted region")
        return kd


    # -- minimal regions (the §5 improvement) --------------------------------------

    def _node_mbr(self, pid: int, is_data: bool) -> Rect | None:
        """Authoritative minimal bounding rectangle of a node's content."""
        obj = self.store._objects[pid]
        if is_data:
            return obj.mbr()
        mbrs = [l.mbr for l in self._kd_leaves(obj.kd) if l.mbr is not None]
        return Rect.bounding(mbrs) if mbrs else None

    def _refresh_leaf_mbrs(self, pid: int, is_data: bool) -> None:
        """Propagate a node's exact MBR into every referencing kd-leaf."""
        if not self.minimal_regions:
            return
        work = [(pid, self._node_mbr(pid, is_data))]
        while work:
            child, mbr = work.pop()
            for parent_pid in sorted(self._parents.get(child, ())):
                parent: _IndexNode = self.store._objects[parent_pid]
                changed = False
                for leaf in self._kd_leaves(parent.kd):
                    if leaf.pid == child and leaf.mbr != mbr:
                        leaf.mbr = mbr
                        changed = True
                if changed:
                    self.store.write(parent_pid)
                    work.append((parent_pid, self._node_mbr(parent_pid, False)))

    # -- insertion ---------------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        if self._root_is_data:
            node: _DataNode = self.store.read(self._root_pid)
            node.records.append((point, rid))
            if len(node.records) > self._capacity:
                self._split_root_data(node)
            else:
                self.store.write(self._root_pid)
            return
        pid, is_data = self._root_pid, False
        path: list[int] = []
        while not is_data:
            path.append(pid)
            node: _IndexNode = self.store.read(pid)
            leaf = self._walk(node.kd, point)
            pid, is_data = leaf.pid, leaf.is_data
        data: _DataNode = self.store.read(pid)
        data.records.append((point, rid))
        if len(data.records) <= self._capacity:
            self.store.write(pid)
            self._refresh_leaf_mbrs(pid, True)
            return
        overflowed = self._split_data_node(pid, data)
        # Posting may overflow index nodes anywhere up the graph.
        while overflowed:
            index_pid = overflowed.pop()
            index: _IndexNode = self.store._objects[index_pid]
            if self._node_overflowed(index):
                overflowed.extend(self._split_index_node(index_pid, index))

    # -- data node splits ----------------------------------------------------------

    def _choose_data_split(
        self, records: list[tuple[tuple[float, ...], object]]
    ) -> tuple[int, float] | None:
        """Median split axis chosen to minimise the halves' margins."""
        best: tuple[int, float] | None = None
        best_margin = float("inf")
        for axis in range(self.dims):
            coords = sorted(p[axis] for p, _ in records)
            median = coords[len(coords) // 2]
            if median == coords[0]:
                continue  # one side would be empty
            left = [p for p, _ in records if p[axis] < median]
            right = [p for p, _ in records if p[axis] >= median]
            margin = (
                Rect.bounding_points(left).margin()
                + Rect.bounding_points(right).margin()
            )
            if margin < best_margin:
                best_margin = margin
                best = (axis, median)
        return best

    def _split_root_data(self, node: _DataNode) -> None:
        choice = self._choose_data_split(node.records)
        if choice is None:
            self.store.write(self._root_pid)
            return
        axis, median = choice
        right = _DataNode([r for r in node.records if r[0][axis] >= median])
        node.records = [r for r in node.records if r[0][axis] < median]
        right_pid = self.store.allocate(PageKind.DATA, right)
        self.store.unpin(self._root_pid)
        left_pid = self._root_pid
        left_mbr = right_mbr = None
        if self.minimal_regions:
            left_mbr = node.mbr()
            right_mbr = right.mbr()
        kd = _Kd.internal(
            axis,
            median,
            _Kd.leaf(left_pid, True, left_mbr),
            _Kd.leaf(right_pid, True, right_mbr),
        )
        self._root_pid = self.store.allocate(PageKind.DIRECTORY, _IndexNode(kd))
        self._root_is_data = False
        self.store.pin(self._root_pid)
        self._parents[left_pid] = {self._root_pid}
        self._parents[right_pid] = {self._root_pid}
        self.store.write(left_pid)
        self.store.write(right_pid)
        self.store.write(self._root_pid)

    def _split_data_node(self, pid: int, data: _DataNode) -> list[int]:
        """Split a full data node and post the plane to every parent.

        Returns the parents whose kd-trees grew (overflow candidates).
        """
        choice = self._choose_data_split(data.records)
        if choice is None:
            self.store.write(pid)
            return []
        axis, median = choice
        right = _DataNode([r for r in data.records if r[0][axis] >= median])
        data.records = [r for r in data.records if r[0][axis] < median]
        right_pid = self.store.allocate(PageKind.DATA, right)
        self.store.write(pid)
        self.store.write(right_pid)
        halfspace_lo = [0.0] * self.dims
        halfspace_lo[axis] = median
        region = Rect(tuple(halfspace_lo), (1.0,) * self.dims)
        chain = [(axis, median, 1)]  # the extracted side is the upper half
        touched = self._post_to_parents(pid, right_pid, True, chain, region)
        self._parents[right_pid] = set(touched)
        self._refresh_leaf_mbrs(pid, True)
        self._refresh_leaf_mbrs(right_pid, True)
        return touched

    # -- index node splits ------------------------------------------------------------

    def _split_index_node(self, pid: int, node: _IndexNode) -> list[int]:
        """Extract a 1/3–2/3 kd-subtree into a new index node and post it.

        Returns index pids (parents, or the new root) that grew.
        """
        total = len(self._kd_leaves(node.kd))
        if total < 3:
            return []  # pathological: cannot honour the 1/3 bound yet
        current = node.kd
        chain: list[tuple[int, float, int]] = []
        parent_of_current: _Kd | None = None
        side_of_current = 0
        # Posted chains can leave geometrically dead kd-branches (their
        # accumulated constraints are empty); the descent tracks the
        # constraint rectangle and never extracts a dead subtree.
        lo = [0.0] * self.dims
        hi = [1.0] * self.dims
        while True:
            left_count = len(self._kd_leaves(current.left))
            right_count = len(self._kd_leaves(current.right))
            axis, coord = current.axis, current.coord
            left_live = lo[axis] < min(hi[axis], coord)
            right_live = max(lo[axis], coord) < hi[axis]
            if left_live and right_live:
                side = 0 if left_count >= right_count else 1
            elif left_live:
                side = 0
            else:
                side = 1
            child = current.left if side == 0 else current.right
            chain.append((axis, coord, side))
            parent_of_current, side_of_current = current, side
            current = child
            if side == 0:
                hi[axis] = min(hi[axis], coord)
            else:
                lo[axis] = max(lo[axis], coord)
            count = left_count if side == 0 else right_count
            if count <= (2 * total) // 3 or current.kind != _INTERNAL:
                break
        # Extract `current`, leaving an EXT marker behind.
        marker = _Kd.ext()
        if side_of_current == 0:
            parent_of_current.left = marker
        else:
            parent_of_current.right = marker
        new_node = _IndexNode(current if current.kind == _INTERNAL else current)
        new_pid = self.store.allocate(PageKind.DIRECTORY, new_node)
        self.store.write(pid)
        self.store.write(new_pid)
        self._rewire_children(pid, new_pid, node, new_node)
        region = self._chain_region(chain)
        if pid == self._root_pid:
            root_kd = self._build_chain(chain, pid, False, new_pid, False)
            new_root = _IndexNode(root_kd)
            self.store.unpin(pid)
            self._root_pid = self.store.allocate(PageKind.DIRECTORY, new_root)
            self.store.pin(self._root_pid)
            self.store.write(self._root_pid)
            self._parents[pid] = {self._root_pid}
            self._parents[new_pid] = {self._root_pid}
            self._refresh_leaf_mbrs(pid, False)
            self._refresh_leaf_mbrs(new_pid, False)
            return [self._root_pid]
        touched = self._post_to_parents(pid, new_pid, False, chain, region)
        self._parents[new_pid] = set(touched)
        self._refresh_leaf_mbrs(pid, False)
        self._refresh_leaf_mbrs(new_pid, False)
        return touched

    def _rewire_children(
        self, old_pid: int, new_pid: int, old_node: _IndexNode, new_node: _IndexNode
    ) -> None:
        """Maintain the parent map after a subtree moved between pages."""
        moved = {leaf.pid for leaf in self._kd_leaves(new_node.kd)}
        remaining = {leaf.pid for leaf in self._kd_leaves(old_node.kd)}
        for child in moved:
            self._parents.setdefault(child, set()).add(new_pid)
            if child not in remaining:
                self._parents[child].discard(old_pid)

    def _chain_region(self, chain: list[tuple[int, float, int]]) -> Rect:
        """The rectangle described by a kd comparison chain."""
        lo = [0.0] * self.dims
        hi = [1.0] * self.dims
        for axis, coord, side in chain:
            if side == 0:
                hi[axis] = min(hi[axis], coord)
            else:
                lo[axis] = max(lo[axis], coord)
        return Rect(tuple(lo), tuple(hi))

    def _build_chain(
        self,
        chain: list[tuple[int, float, int]],
        stay_pid: int,
        stay_is_data: bool,
        new_pid: int,
        new_is_data: bool,
    ) -> _Kd:
        """kd nodes answering "inside the extracted region?" for one leaf.

        Points satisfying the whole chain go to the extracted node, all
        other points keep going to the donor.
        """
        stay_mbr = new_mbr = None
        if self.minimal_regions:
            stay_mbr = self._node_mbr(stay_pid, stay_is_data)
            new_mbr = self._node_mbr(new_pid, new_is_data)
        result = _Kd.leaf(new_pid, new_is_data, new_mbr)
        for axis, coord, side in reversed(chain):
            donor = _Kd.leaf(stay_pid, stay_is_data, stay_mbr)
            if side == 0:
                result = _Kd.internal(axis, coord, result, donor)
            else:
                result = _Kd.internal(axis, coord, donor, result)
        return result

    def _post_to_parents(
        self,
        donor_pid: int,
        new_pid: int,
        new_is_data: bool,
        chain: list[tuple[int, float, int]],
        region: Rect,
    ) -> list[int]:
        """Replace donor references whose reach intersects ``region``.

        Every parent of the donor is inspected; each of its kd-leaves
        that points to the donor and whose constraint rectangle meets the
        extracted region is replaced by the comparison chain.  Returns
        the parents that were modified.
        """
        donor_is_data = self.store.kind(donor_pid) is PageKind.DATA
        touched = []
        for parent_pid in sorted(self._parents.get(donor_pid, ())):
            parent: _IndexNode = self.store._objects[parent_pid]
            replaced = self._replace_in_kd(
                parent, donor_pid, donor_is_data, new_pid, new_is_data, chain, region
            )
            if replaced:
                self.store.read(parent_pid)
                self.store.write(parent_pid)
                touched.append(parent_pid)
        return touched

    def _replace_in_kd(
        self,
        parent: _IndexNode,
        donor_pid: int,
        donor_is_data: bool,
        new_pid: int,
        new_is_data: bool,
        chain: list[tuple[int, float, int]],
        region: Rect,
    ) -> bool:
        replaced = False

        def visit(kd: _Kd, lo: list[float], hi: list[float]) -> _Kd:
            nonlocal replaced
            if kd.kind == _INTERNAL:
                saved = hi[kd.axis]
                hi[kd.axis] = min(hi[kd.axis], kd.coord)
                kd.left = visit(kd.left, lo, hi)
                hi[kd.axis] = saved
                saved = lo[kd.axis]
                lo[kd.axis] = max(lo[kd.axis], kd.coord)
                kd.right = visit(kd.right, lo, hi)
                lo[kd.axis] = saved
                return kd
            if kd.kind == _LEAF and kd.pid == donor_pid:
                if any(l > h for l, h in zip(lo, hi)):
                    return kd  # geometrically dead branch: unreachable leaf
                leaf_rect = Rect(tuple(lo), tuple(hi))
                overlap = leaf_rect.intersection(region)
                if overlap is not None and overlap.area() > 0.0:
                    replaced = True
                    return self._build_chain(
                        chain, donor_pid, donor_is_data, new_pid, new_is_data
                    )
            return kd

        parent.kd = visit(parent.kd, [0.0] * self.dims, [1.0] * self.dims)
        return replaced

    # -- queries ----------------------------------------------------------------------

    def _kd_children(self, kd_root: _Kd, rect: Rect) -> list[tuple[int, bool]]:
        """The kd-tree leaves of one index node a range query descends to.

        Purely structural — the walk prunes on the query box against the
        split coordinates (and the optional §5 MBRs), never on page
        contents, so plan and replay agree by construction.
        """
        children: list[tuple[int, bool]] = []
        minimal = self.minimal_regions

        def collect(kd: _Kd) -> None:
            if kd.kind == _INTERNAL:
                if rect.lo[kd.axis] < kd.coord:
                    collect(kd.left)
                if rect.hi[kd.axis] >= kd.coord:
                    collect(kd.right)
            elif kd.kind == _LEAF:
                if minimal and (kd.mbr is None or not kd.mbr.intersects(rect)):
                    return
                children.append((kd.pid, kd.is_data))

        collect(kd_root)
        return children

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        store = self.store
        if store.columnar is None:
            return self._range_query_scalar(rect)
        # Plan: level-at-a-time over uncharged views.  Directory pruning
        # is the (scalar) kd-tree walk — run once per node here, reused by
        # the replay — and all cold data pages of a level share one fused
        # kernel call (see repro.query.traverse).  hB-tree kd leaves may
        # share children, so the frontier dedups pids like the scalar
        # path's seen set.
        objects = store._objects
        src = traverse.RowSource(store.columnar, rect)
        row_of = src.row
        verdicts: dict[int, list] = {}
        kids: dict[int, list[tuple[int, bool]]] = {}
        planned: set[int] = {self._root_pid}
        dir_level: list[int] = []
        data_level: list[int] = []
        (data_level if self._root_is_data else dir_level).append(self._root_pid)
        while dir_level or data_level:
            nxt_dir: list[int] = []
            nxt_data: list[int] = []
            deferred: list[int] = []
            for pid in dir_level:
                children = kids[pid] = self._kd_children(objects[pid].kd, rect)
                for cpid, is_data in children:
                    if cpid in planned:
                        continue
                    planned.add(cpid)
                    (nxt_data if is_data else nxt_dir).append(cpid)
            for pid in data_level:
                records = objects[pid].records
                if not records:
                    verdicts[pid] = traverse._EMPTY_ROW
                    continue
                row = row_of(pid, "pts", "pts", records, "pts", fused_points)
                if row is None:
                    deferred.append(pid)
                else:
                    verdicts[pid] = row
            if deferred:
                rows = src.flush()
                for pid in deferred:
                    verdicts[pid] = rows[(pid, "pts")]
            dir_level, data_level = nxt_dir, nxt_data
        # Replay: the original preorder descent with charged reads.
        result: list[tuple[tuple[float, ...], object]] = []
        seen: set[int] = set()
        read = store.read

        def visit(pid: int, is_data: bool) -> None:
            if pid in seen:
                return
            seen.add(pid)
            if is_data:
                records = read(pid).records
                result.extend([records[i] for i in verdicts[pid]])
                return
            read(pid)
            for child_pid, child_is_data in kids[pid]:
                visit(child_pid, child_is_data)

        visit(self._root_pid, self._root_is_data)
        return result

    def _range_query_scalar(
        self, rect: Rect
    ) -> list[tuple[tuple[float, ...], object]]:
        """The original scalar descent (the ``REPRO_VECTOR=0`` kill switch)."""
        result: list[tuple[tuple[float, ...], object]] = []
        seen: set[int] = set()

        def visit(pid: int, is_data: bool) -> None:
            if pid in seen:
                return
            seen.add(pid)
            if is_data:
                data: _DataNode = self.store.read(pid)
                result.extend(
                    rec for rec in data.records if rect.contains_point(rec[0])
                )
                return
            node: _IndexNode = self.store.read(pid)
            for child_pid, child_is_data in self._kd_children(node.kd, rect):
                visit(child_pid, child_is_data)

        visit(self._root_pid, self._root_is_data)
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        pid, is_data = self._root_pid, self._root_is_data
        while not is_data:
            node: _IndexNode = self.store.read(pid)
            leaf = self._walk(node.kd, point)
            if self.minimal_regions and (
                leaf.mbr is None or not leaf.mbr.contains_point(point)
            ):
                return []
            pid, is_data = leaf.pid, leaf.is_data
        data: _DataNode = self.store.read(pid)
        return [rid for p, rid in data.records if p == point]
