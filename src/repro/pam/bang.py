"""BANG — the Balanced And Nested Grid file [Fre 87].

The BANG file partitions the data space into binary-partition *blocks*
(:mod:`repro.geometry.blocks`); the **region** of a block is its
rectangle minus the rectangles of the blocks nested inside it, so a
record lives on the data page of the *smallest* block containing it.
Splitting a full page extracts the sub-block giving the best balance,
which either halves the page or *nests* a new block inside it — the
mechanism that adapts to distributions where "almost all of the data
occurs in a few relatively small cluster points".

The directory is a balanced tree built by exactly the same nesting
process over directory pages.  Following the paper's §3, the
implementation does **not** include the "spanning property": a directory
node's region need not be spanned by its entries, so searches may have
to probe several branches (the search path can exceed the tree height),
which is the penalty on small range queries discussed in §5.  Passing
``spanning=True`` simulates a spanning directory by charging a single
root-to-leaf path — the guarantee the spanning property provides — and
is used by the ablation bench.

``variable_length_entries=True`` gives the BANG* variant of Tables
5.1/5.2: directory entries are charged ``4 + 2 + ceil(bits/8)`` bytes
instead of the fixed maximum, so directory pages hold more entries.

``minimal_regions=True`` implements the paper's closing suggestion (§9):
"it might be worthwhile to incorporate this performance improving
concept [not partitioning empty data space] into other methods, in
particular into the BANG file".  Every directory entry then also carries
the minimal bounding rectangle of the data below it (costing
``2·d·4`` extra bytes per entry), and queries prune any branch whose
region does not meet the query — BUDDY's key idea grafted onto BANG.
The ``ABL-BANG-MBR`` bench quantifies the §9 prediction.
"""

from __future__ import annotations

import numpy as np

from repro.core.interfaces import PointAccessMethod
from repro.geometry import blocks
from repro.geometry.blocks import Bits
from repro.geometry.rect import Rect
from repro.geometry.regioncover import CoverSet, is_covered
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse
from repro.storage.soa import fused_points, soa_field

__all__ = ["BangFile"]


class _DataPage:
    """A data page holding the records of one block region."""

    __slots__ = ("bits", "_soa_records")

    records = soa_field()

    def __init__(self, bits: Bits):
        self.bits = bits
        self.records: list[tuple[tuple[float, ...], object]] = []


class _Entry:
    """A directory entry: a block, the page it points to and, in the
    minimal-regions variant, the minimal bounding rectangle below it."""

    __slots__ = ("bits", "pid", "mbr")

    def __init__(self, bits: Bits, pid: int, mbr: Rect | None = None):
        self.bits = bits
        self.pid = pid
        self.mbr = mbr


class _DirNode:
    """A directory page: its own block plus nested child entries."""

    __slots__ = ("bits", "is_leaf", "_soa_entries")

    entries = soa_field()

    def __init__(self, bits: Bits, is_leaf: bool):
        self.bits = bits
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []


class BangFile(PointAccessMethod):
    """The BANG file (and, with ``variable_length_entries``, BANG*)."""

    def __init__(
        self,
        store: PageStore,
        dims: int = 2,
        spanning: bool = False,
        variable_length_entries: bool = False,
        minimal_regions: bool = False,
    ):
        super().__init__(store, dims, layout.point_record_size(dims))
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        self._dir_payload = layout.directory_page_payload(store.page_size)
        self.spanning = spanning
        self.variable_length_entries = variable_length_entries
        self.minimal_regions = minimal_regions
        first = store.allocate(PageKind.DATA, _DataPage(()))
        root = _DirNode((), is_leaf=True)
        root.entries.append(_Entry((), first))
        self._root_pid = store.allocate(PageKind.DIRECTORY, root)
        store.pin(self._root_pid)
        store.write(first)
        store.write(self._root_pid)
        self._height = 1
        #: In-memory mirror of all data blocks, used for split decisions
        #: (a real implementation reads them off the pages it already
        #: has in hand) and by the tests' invariant checks.
        self._data_blocks: dict[Bits, int] = {(): first}

    # -- plumbing -----------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        """Number of directory levels (the tree is balanced)."""
        return self._height

    def iter_records(self):
        """Uncharged walk of every record via the directory tree."""
        stack = [self._root_pid]
        while stack:
            node: _DirNode = self.store.peek(stack.pop())
            for entry in node.entries:
                if node.is_leaf:
                    yield from self.store.peek(entry.pid).records
                else:
                    stack.append(entry.pid)

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        A page's region is its block rectangle — or, in the
        minimal-regions variant, the exact MBR its entry carries.
        Directory pages are byte-budget (capacity 0).
        """
        from repro.obs.structure import PageView

        def region_of(entry: _Entry) -> Rect:
            if entry.mbr is not None:
                return entry.mbr
            return blocks.block_rect(entry.bits, self.dims)

        queue: list[tuple[int, int]] = [(self._root_pid, 0)]
        i = 0
        while i < len(queue):
            pid, depth = queue[i]
            i += 1
            node: _DirNode = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="directory",
                depth=depth,
                regions=(blocks.block_rect(node.bits, self.dims),),
                records=len(node.entries),
                capacity=0,
                children=tuple(e.pid for e in node.entries),
                entry_regions=tuple(region_of(e) for e in node.entries),
            )
            for e in node.entries:
                if node.is_leaf:
                    page: _DataPage = self.store.peek(e.pid)
                    yield PageView(
                        pid=e.pid,
                        kind="data",
                        depth=depth + 1,
                        regions=(region_of(e),),
                        records=len(page.records),
                        capacity=self._capacity,
                        content=(
                            Rect.bounding_points([p for p, _ in page.records])
                            if page.records
                            else None
                        ),
                    )
                else:
                    queue.append((e.pid, depth + 1))

    def _entry_bytes(self, bits: Bits) -> int:
        """On-page size of one directory entry."""
        if self.variable_length_entries:
            block_bytes = 2 + -(-len(bits) // 8)
        else:
            block_bytes = 2 + blocks.MAX_DEPTH // 8
        region_bytes = 2 * self.dims * layout.COORD_SIZE if self.minimal_regions else 0
        return layout.POINTER_SIZE + block_bytes + region_bytes

    def _node_bytes(self, node: _DirNode) -> int:
        return sum(self._entry_bytes(e.bits) for e in node.entries)

    def _node_overflowed(self, node: _DirNode) -> bool:
        return self._node_bytes(node) > self._dir_payload

    # -- searching ------------------------------------------------------------

    def _point_bits(self, point: tuple[float, ...]) -> Bits:
        return blocks.bits_of_point(point, self.dims, blocks.MAX_DEPTH)

    def _best_data_entry(self, bits: Bits) -> tuple[int, Bits]:
        """(data pid, block) of the longest data block that is a prefix of ``bits``.

        Pure in-memory computation on the block mirror; used to simulate
        the spanning property and for internal routing decisions.
        """
        best: Bits | None = None
        for block in self._data_blocks:
            if blocks.is_prefix(block, bits):
                if best is None or len(block) > len(best):
                    best = block
        if best is None:
            raise RuntimeError("block mirror lost the root block")
        return self._data_blocks[best], best

    def _search_data_page(self, point: tuple[float, ...], prune: bool = False) -> int:
        """Charged directory search for the data page owning ``point``.

        Without the spanning property this is a multi-branch probe: every
        entry whose block contains the point may hide a deeper block, so
        all such branches are read (deepest first).  With ``spanning``
        the search is the guaranteed single path.

        ``prune`` enables minimal-region pruning (queries only — inserts
        must find the block-determined target page even when the point
        falls outside its current region).
        """
        bits = self._point_bits(point)
        if self.spanning:
            return self._spanning_descent(bits)
        prune = prune and self.minimal_regions
        best_pid, best_len = -1, -1
        stack = [self._root_pid]
        while stack:
            node: _DirNode = self.store.read(stack.pop())
            for entry in node.entries:
                if not blocks.is_prefix(entry.bits, bits):
                    continue
                if prune and (entry.mbr is None or not entry.mbr.contains_point(point)):
                    continue
                if node.is_leaf:
                    if len(entry.bits) > best_len:
                        best_pid, best_len = entry.pid, len(entry.bits)
                else:
                    stack.append(entry.pid)
        return best_pid

    def _spanning_descent(self, bits: Bits) -> int:
        """Single-path search as guaranteed by the spanning property.

        The destination is computed from the block mirror; one directory
        page per level is charged, which is exactly the cost a spanning
        directory achieves.
        """
        target_pid, target_block = self._best_data_entry(bits)
        leaf = self._locate_leaf_uncharged(target_block)
        self._charge_path_to(leaf)
        return target_pid

    def _locate_leaf_uncharged(self, bits: Bits) -> int:
        """Leaf pid holding (or due to hold) the entry for block ``bits``."""
        best_leaf, best_len = self._root_pid, -1
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node: _DirNode = self.store._objects[pid]
            if node.is_leaf:
                if blocks.is_prefix(node.bits, bits) and len(node.bits) > best_len:
                    best_leaf, best_len = pid, len(node.bits)
                continue
            for entry in node.entries:
                if blocks.is_prefix(entry.bits, bits):
                    stack.append(entry.pid)
        return best_leaf

    def _charge_path_to(self, leaf_pid: int) -> None:
        """Charge the root-to-leaf path (used by the spanning simulation)."""
        path = self._path_to(self._root_pid, leaf_pid)
        for pid in path:
            self.store.read(pid)

    def _path_to(self, pid: int, target: int) -> list[int] | None:
        node: _DirNode = self.store._objects[pid]
        if pid == target:
            return [pid]
        if node.is_leaf:
            return None
        for entry in node.entries:
            sub = self._path_to(entry.pid, target)
            if sub is not None:
                return [pid] + sub
        return None

    def _locate_leaf_charged(self, bits: Bits) -> int:
        """Charged search for the leaf where an entry for ``bits`` belongs."""
        if self.spanning:
            leaf = self._locate_leaf_uncharged(bits)
            self._charge_path_to(leaf)
            return leaf
        best_leaf, best_len = self._root_pid, -1
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node: _DirNode = self.store.read(pid)
            if node.is_leaf:
                if blocks.is_prefix(node.bits, bits) and len(node.bits) > best_len:
                    best_leaf, best_len = pid, len(node.bits)
                continue
            for entry in node.entries:
                if blocks.is_prefix(entry.bits, bits):
                    stack.append(entry.pid)
        return best_leaf

    # -- insertion ------------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        pid = self._search_data_page(point)
        page: _DataPage = self.store.read(pid)
        page.records.append((point, rid))
        if len(page.records) <= self._capacity:
            self.store.write(pid)
            if self.minimal_regions:
                self._grow_region(page.bits, point)
            return
        old_block = page.bits
        self._split_data_page(pid, page)
        if self.minimal_regions:
            self._refresh_region(old_block)

    def _split_data_page(self, pid: int, page: _DataPage) -> None:
        sub_block = self._choose_split_block(page)
        if sub_block is None:
            self.store.write(pid)  # duplicate-degenerate page: tolerate overflow
            return
        inner = [r for r in page.records if self._record_in_block(r[0], sub_block)]
        page.records = [
            r for r in page.records if not self._record_in_block(r[0], sub_block)
        ]
        new_page = _DataPage(sub_block)
        new_page.records = inner
        new_pid = self.store.allocate(PageKind.DATA, new_page)
        self._data_blocks[sub_block] = new_pid
        self.store.write(pid)
        self.store.write(new_pid)
        mbr = None
        if self.minimal_regions and inner:
            mbr = Rect.bounding_points([p for p, _ in inner])
        self._add_directory_entry(_Entry(sub_block, new_pid, mbr))

    def _record_in_block(self, point: tuple[float, ...], bits: Bits) -> bool:
        return blocks.is_prefix(bits, self._point_bits(point))

    def _choose_split_block(self, page: _DataPage) -> Bits | None:
        """Best-balance proper sub-block of the page's block.

        Walks down the halving hierarchy, at each level following the
        fuller half, and keeps the candidate whose inside/outside record
        counts are most balanced.  Candidates equal to an existing data
        block are skipped (the block is already someone else's region).
        """
        total = len(page.records)
        record_bits = [self._point_bits(p) for p, _ in page.records]
        current = page.bits
        best: Bits | None = None
        best_imbalance = total + 1
        while len(current) < blocks.MAX_DEPTH:
            zero = current + (0,)
            count0 = sum(1 for rb in record_bits if blocks.is_prefix(zero, rb))
            count1 = sum(1 for rb in record_bits if blocks.is_prefix(current, rb)) - count0
            if count0 == 0 and count1 == 0:
                break
            current = zero if count0 >= count1 else current + (1,)
            inner = count0 if count0 >= count1 else count1
            if 0 < inner < total and current not in self._data_blocks:
                imbalance = abs(inner - (total - inner))
                if imbalance < best_imbalance:
                    best_imbalance = imbalance
                    best = current
            if inner == 0:
                break
        return best

    def _add_directory_entry(self, entry: _Entry) -> None:
        leaf_pid = self._locate_leaf_charged(entry.bits)
        leaf: _DirNode = self.store.read(leaf_pid)
        leaf.entries.append(entry)
        self.store.write(leaf_pid)
        self._split_directory_if_needed(leaf_pid, leaf)

    def _split_directory_if_needed(self, pid: int, node: _DirNode) -> None:
        if not self._node_overflowed(node):
            return
        sub_block = self._choose_directory_split_block(node)
        if sub_block is None:
            return  # cannot split (all entries share one block); tolerate
        inner = [e for e in node.entries if blocks.is_prefix(sub_block, e.bits)]
        node.entries = [
            e for e in node.entries if not blocks.is_prefix(sub_block, e.bits)
        ]
        new_node = _DirNode(sub_block, node.is_leaf)
        new_node.entries = inner
        new_pid = self.store.allocate(PageKind.DIRECTORY, new_node)
        self.store.write(pid)
        self.store.write(new_pid)
        if pid == self._root_pid:
            old_root = node
            new_root = _DirNode((), is_leaf=False)
            new_root.entries.append(_Entry(old_root.bits, pid, self._node_region(node)))
            new_root.entries.append(_Entry(sub_block, new_pid, self._node_region(new_node)))
            self.store.unpin(pid)
            root_pid = self.store.allocate(PageKind.DIRECTORY, new_root)
            self._root_pid = root_pid
            self.store.pin(root_pid)
            self.store.write(root_pid)
            self._height += 1
        else:
            parent_pid, parent = self._find_parent(pid)
            parent.entries.append(_Entry(sub_block, new_pid, self._node_region(new_node)))
            if self.minimal_regions:
                shrunk = next(e for e in parent.entries if e.pid == pid)
                shrunk.mbr = self._node_region(node)
                parent.entries.touch("mbrs:cover")
            self.store.write(parent_pid)
            self._split_directory_if_needed(parent_pid, parent)

    def _choose_directory_split_block(self, node: _DirNode) -> Bits | None:
        """Best-balance sub-block over the node's entry blocks."""
        total = len(node.entries)
        sibling_blocks = self._sibling_blocks(node)
        current = node.bits
        best: Bits | None = None
        best_imbalance = total + 1
        while len(current) < blocks.MAX_DEPTH:
            zero = current + (0,)
            count0 = sum(1 for e in node.entries if blocks.is_prefix(zero, e.bits))
            in_cur = sum(1 for e in node.entries if blocks.is_prefix(current, e.bits))
            count1 = in_cur - count0
            if count0 == 0 and count1 == 0:
                break
            current = zero if count0 >= count1 else current + (1,)
            inner = max(count0, count1)
            if 0 < inner < total and current not in sibling_blocks:
                imbalance = abs(inner - (total - inner))
                if imbalance < best_imbalance:
                    best_imbalance = imbalance
                    best = current
        return best

    def _sibling_blocks(self, node: _DirNode) -> set[Bits]:
        """Blocks of all directory nodes at the same level as ``node``."""
        level_nodes = [self.store._objects[self._root_pid]]
        depth = 0
        target_depth = self._node_depth(node)
        while depth < target_depth:
            nxt = []
            for n in level_nodes:
                nxt.extend(self.store._objects[e.pid] for e in n.entries)
            level_nodes = nxt
            depth += 1
        return {n.bits for n in level_nodes}

    def _node_depth(self, node: _DirNode) -> int:
        def walk(pid: int, depth: int) -> int | None:
            n: _DirNode = self.store._objects[pid]
            if n is node:
                return depth
            if n.is_leaf:
                return None
            for e in n.entries:
                found = walk(e.pid, depth + 1)
                if found is not None:
                    return found
            return None

        found = walk(self._root_pid, 0)
        if found is None:
            raise RuntimeError("node not reachable from root")
        return found

    def _find_parent(self, pid: int) -> tuple[int, _DirNode]:
        def walk(current: int) -> tuple[int, _DirNode] | None:
            node: _DirNode = self.store._objects[current]
            if node.is_leaf:
                return None
            for e in node.entries:
                if e.pid == pid:
                    return current, node
                found = walk(e.pid)
                if found is not None:
                    return found
            return None

        found = walk(self._root_pid)
        if found is None:
            raise RuntimeError("parent not found")
        # Reading the parent is charged: a real split must fetch it.
        self.store.read(found[0])
        return found


    # -- minimal regions (the §9 extension) --------------------------------------

    def _leaf_entry(self, block: Bits) -> tuple[int, "_DirNode", _Entry]:
        leaf_pid = self._locate_leaf_uncharged(block)
        leaf: _DirNode = self.store._objects[leaf_pid]
        entry = next(e for e in leaf.entries if e.bits == block)
        return leaf_pid, leaf, entry

    def _grow_region(self, block: Bits, point: tuple[float, ...]) -> None:
        """Expand the regions on the path to ``block`` to cover ``point``."""
        leaf_pid, leaf, entry = self._leaf_entry(block)
        if entry.mbr is not None and entry.mbr.contains_point(point):
            return
        entry.mbr = (
            Rect.from_point(point)
            if entry.mbr is None
            else entry.mbr.expanded_to_point(point)
        )
        leaf.entries.touch("mbrs:cover")
        self.store.write(leaf_pid)
        path = self._path_to(self._root_pid, leaf_pid) or []
        for parent_pid, child_pid in zip(reversed(path[:-1]), reversed(path[1:])):
            parent: _DirNode = self.store._objects[parent_pid]
            parent_entry = next(e for e in parent.entries if e.pid == child_pid)
            if parent_entry.mbr is not None and parent_entry.mbr.contains_point(point):
                break
            parent_entry.mbr = (
                Rect.from_point(point)
                if parent_entry.mbr is None
                else parent_entry.mbr.expanded_to_point(point)
            )
            parent.entries.touch("mbrs:cover")
            self.store.write(parent_pid)

    def _refresh_region(self, block: Bits) -> None:
        """Recompute the region of ``block`` (after a split shrank it)."""
        leaf_pid, leaf, entry = self._leaf_entry(block)
        page: _DataPage = self.store._objects[entry.pid]
        entry.mbr = (
            Rect.bounding_points([p for p, _ in page.records])
            if page.records
            else None
        )
        leaf.entries.touch("mbrs:cover")
        self.store.write(leaf_pid)
        self._recompute_regions_upward(leaf_pid)

    def _recompute_regions_upward(self, leaf_pid: int) -> None:
        path = self._path_to(self._root_pid, leaf_pid) or []
        for parent_pid, child_pid in zip(reversed(path[:-1]), reversed(path[1:])):
            parent: _DirNode = self.store._objects[parent_pid]
            child: _DirNode = self.store._objects[child_pid]
            parent_entry = next(e for e in parent.entries if e.pid == child_pid)
            regions = [e.mbr for e in child.entries if e.mbr is not None]
            new_mbr = Rect.bounding(regions) if regions else None
            if new_mbr == parent_entry.mbr:
                break
            parent_entry.mbr = new_mbr
            parent.entries.touch("mbrs:cover")
            self.store.write(parent_pid)

    def _node_region(self, node: "_DirNode") -> Rect | None:
        regions = [e.mbr for e in node.entries if e.mbr is not None]
        return Rect.bounding(regions) if regions else None

    # -- queries ----------------------------------------------------------------

    def _build_blocks_cover(self, lst) -> "np.ndarray":
        """``[lo, -hi]`` fused rows over a page's entry block rectangles."""
        dims = self.dims
        rects_ = [blocks.block_rect(e.bits, dims) for e in lst]
        lo = np.array([r.lo for r in rects_])
        hi = np.array([r.hi for r in rects_])
        return np.concatenate([lo, -hi], axis=1)

    def _build_mbrs_cover(self, lst) -> "np.ndarray":
        """Fused rows over entry MBRs; entries without one are NaN rows,
        which compare false in every kernel (they can never match)."""
        lo = np.full((len(lst), self.dims), np.nan)
        hi = np.full((len(lst), self.dims), np.nan)
        for i, entry in enumerate(lst):
            if entry.mbr is not None:
                lo[i] = entry.mbr.lo
                hi[i] = entry.mbr.hi
        return np.concatenate([lo, -hi], axis=1)

    def _build_nested(self, lst) -> list:
        """Per-entry ``[block rect, nested sibling blocks, coverage]``.

        The nesting structure depends only on the page's entries, never on
        the query, so one O(entries^2) pass serves every later query until
        the entry list mutates (the container invalidates the view).  The
        third slot lazily memoises the "full block covered by nested
        siblings" verdict.
        """
        dims = self.dims
        rects_ = [blocks.block_rect(e.bits, dims) for e in lst]
        info = []
        for j, entry in enumerate(lst):
            bits = entry.bits
            depth = len(bits)
            nested = [
                rects_[k]
                for k, other in enumerate(lst)
                if other is not entry
                and len(other.bits) > depth
                and blocks.is_prefix(bits, other.bits)
            ]
            info.append([rects_[j], CoverSet(nested) if nested else None, None])
        return info

    def _keep_leaf_entries(self, entries, idx: list, rect: Rect) -> list:
        """Filter a leaf's block/MBR hits by the nesting-coverage rule:
        an entry whose overlap with the query is entirely covered by
        sibling blocks nested inside it holds no reachable records."""
        info = entries.view("nested", self._build_nested)
        qlo = rect.lo
        qhi = rect.hi
        out = []
        for i in idx:
            slot = info[i]
            nested = slot[1]
            if nested is not None:
                block = slot[0]
                blo = block.lo
                bhi = block.hi
                # idx holds block/query intersection hits, so the clipped
                # overlap is never empty.
                olo = tuple(map(max, blo, qlo))
                ohi = tuple(map(min, bhi, qhi))
                if olo == blo and ohi == bhi:
                    covered = slot[2]
                    if covered is None:
                        covered = slot[2] = nested.covers(block)
                else:
                    covered = nested.covers_bounds(olo, ohi)
                if covered:
                    continue
            out.append(i)
        return out

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        store = self.store
        if store.columnar is None:
            return self._range_query_scalar(rect)
        # Plan: level-at-a-time over uncharged views; block and MBR gates
        # of every cold directory page of a level — and, afterwards, every
        # cold data page — share one fused kernel call per op (see
        # repro.query.traverse).  The nesting-coverage leaf filter is a
        # cached per-page structure, no kernels involved.
        objects = store._objects
        src = traverse.RowSource(store.columnar, rect)
        row_of = src.row
        minimal = self.minimal_regions
        # Promoted pages answer straight from the workload's CSR verdicts;
        # probing them inline skips the RowSource call for the common case
        # (the rows are the same lists row() would return).
        workload = src.workload
        hot = workload._rows if workload is not None else None
        qi = workload.index if workload is not None else -1
        # Inner pages keep their expanded child-pid list and leaves the
        # surviving data-pid list: the plan needs both for its frontier
        # and the replay walks the same lists, decoded exactly once.
        expansion: dict[int, list] = {}
        relevant: dict[int, list] = {}
        level = [self._root_pid]

        def resolve(pid: int, node: "_DirNode", b_row: list, m_row, nxt: list) -> None:
            if minimal:
                hits = set(m_row)
                idx = [i for i in b_row if i in hits]
            else:
                idx = b_row
            entries = node.entries
            if node.is_leaf:
                relevant[pid] = self._keep_leaf_entries(entries, idx, rect)
            else:
                kids = expansion[pid] = [entries[i].pid for i in idx]
                nxt.extend(kids)

        while level:
            nxt: list = []
            deferred: list = []
            for pid in level:
                node = objects[pid]
                entries = node.entries
                if not entries:
                    if node.is_leaf:
                        relevant[pid] = []
                    else:
                        expansion[pid] = traverse._EMPTY_ROW
                    continue
                b_row = m_row = None
                if hot is not None:
                    entry = hot.get((pid, "blocks:isect"))
                    if entry is not None:
                        starts, cols = entry
                        s = starts[qi]
                        e = starts[qi + 1]
                        b_row = cols[s:e].tolist() if e > s else traverse._EMPTY_ROW
                    if minimal:
                        entry = hot.get((pid, "mbrs:isect"))
                        if entry is not None:
                            starts, cols = entry
                            s = starts[qi]
                            e = starts[qi + 1]
                            m_row = (
                                cols[s:e].tolist() if e > s else traverse._EMPTY_ROW
                            )
                if b_row is None:
                    b_row = row_of(
                        pid, "blocks:isect", "isect",
                        entries, "blocks:cover", self._build_blocks_cover,
                    )
                if minimal and m_row is None:
                    m_row = row_of(
                        pid, "mbrs:isect", "isect",
                        entries, "mbrs:cover", self._build_mbrs_cover,
                    )
                if b_row is None or (minimal and m_row is None):
                    deferred.append((pid, node, b_row, m_row))
                else:
                    resolve(pid, node, b_row, m_row, nxt)
            if deferred:
                rows = src.flush()
                for pid, node, b_row, m_row in deferred:
                    if b_row is None:
                        b_row = rows[(pid, "blocks:isect")]
                    if minimal and m_row is None:
                        m_row = rows[(pid, "mbrs:isect")]
                    resolve(pid, node, b_row, m_row, nxt)
            level = nxt
        # All surviving data pages ride one last fused call.
        leaf_dpids: dict[int, list] = {}
        for pid, keep in relevant.items():
            entries = objects[pid].entries
            dpids = leaf_dpids[pid] = [entries[i].pid for i in keep]
            for dpid in dpids:
                records = objects[dpid].records
                if not records:
                    src.rows[(dpid, "pts")] = traverse._EMPTY_ROW
                    continue
                if hot is not None:
                    entry = hot.get((dpid, "pts"))
                    if entry is not None:
                        starts, cols = entry
                        s = starts[qi]
                        e = starts[qi + 1]
                        src.rows[(dpid, "pts")] = (
                            cols[s:e].tolist() if e > s else traverse._EMPTY_ROW
                        )
                        continue
                row_of(dpid, "pts", "pts", records, "pts", fused_points)
        rows = src.flush()
        # Replay: the original descent order with charged reads.
        result: list[tuple[tuple[float, ...], object]] = []
        read = store.read
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node = read(pid)
            if node.is_leaf:
                for dpid in leaf_dpids[pid]:
                    records = read(dpid).records
                    row = rows[(dpid, "pts")]
                    if row:
                        result.extend([records[j] for j in row])
            else:
                stack.extend(expansion[pid])
        return result

    def _range_query_scalar(
        self, rect: Rect
    ) -> list[tuple[tuple[float, ...], object]]:
        """The original scalar descent (the ``REPRO_VECTOR=0`` kill switch)."""
        result: list[tuple[tuple[float, ...], object]] = []
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node: _DirNode = self.store.read(pid)
            if node.is_leaf:
                for entry in self._relevant_data_entries_scalar(node, rect):
                    page: _DataPage = self.store.read(entry.pid)
                    result.extend(
                        rec for rec in page.records if rect.contains_point(rec[0])
                    )
            else:
                # Inner entries cannot be pruned by nesting: a data block
                # shorter than a nested sibling may keep records inside
                # the sibling's rectangle in a different subtree.  With
                # minimal regions, an entry whose region misses the query
                # can be pruned — the §9 improvement.
                for entry in node.entries:
                    if not blocks.block_rect(entry.bits, self.dims).intersects(rect):
                        continue
                    if self.minimal_regions and (
                        entry.mbr is None or not entry.mbr.intersects(rect)
                    ):
                        continue
                    stack.append(entry.pid)
        return result

    def _relevant_data_entries_scalar(
        self, leaf: _DirNode, rect: Rect
    ) -> list[_Entry]:
        """Data entries to read: the block overlaps the query and the
        overlap is not entirely covered by sibling data blocks nested
        inside it (records in the covered part live on those pages)."""
        entries = leaf.entries
        out = []
        for entry in entries:
            if self.minimal_regions and (
                entry.mbr is None or not entry.mbr.intersects(rect)
            ):
                continue
            block = blocks.block_rect(entry.bits, self.dims)
            overlap = block.intersection(rect)
            if overlap is None:
                continue
            nested = [
                blocks.block_rect(other.bits, self.dims)
                for other in entries
                if other is not entry
                and len(other.bits) > len(entry.bits)
                and blocks.is_prefix(entry.bits, other.bits)
            ]
            if nested and is_covered(overlap, nested):
                continue
            out.append(entry)
        return out

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        pid = self._search_data_page(point, prune=True)
        if pid < 0:
            return []
        page: _DataPage = self.store.read(pid)
        return [rid for p, rid in page.records if p == point]
