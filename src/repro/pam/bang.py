"""BANG — the Balanced And Nested Grid file [Fre 87].

The BANG file partitions the data space into binary-partition *blocks*
(:mod:`repro.geometry.blocks`); the **region** of a block is its
rectangle minus the rectangles of the blocks nested inside it, so a
record lives on the data page of the *smallest* block containing it.
Splitting a full page extracts the sub-block giving the best balance,
which either halves the page or *nests* a new block inside it — the
mechanism that adapts to distributions where "almost all of the data
occurs in a few relatively small cluster points".

The directory is a balanced tree built by exactly the same nesting
process over directory pages.  Following the paper's §3, the
implementation does **not** include the "spanning property": a directory
node's region need not be spanned by its entries, so searches may have
to probe several branches (the search path can exceed the tree height),
which is the penalty on small range queries discussed in §5.  Passing
``spanning=True`` simulates a spanning directory by charging a single
root-to-leaf path — the guarantee the spanning property provides — and
is used by the ablation bench.

``variable_length_entries=True`` gives the BANG* variant of Tables
5.1/5.2: directory entries are charged ``4 + 2 + ceil(bits/8)`` bytes
instead of the fixed maximum, so directory pages hold more entries.

``minimal_regions=True`` implements the paper's closing suggestion (§9):
"it might be worthwhile to incorporate this performance improving
concept [not partitioning empty data space] into other methods, in
particular into the BANG file".  Every directory entry then also carries
the minimal bounding rectangle of the data below it (costing
``2·d·4`` extra bytes per entry), and queries prune any branch whose
region does not meet the query — BUDDY's key idea grafted onto BANG.
The ``ABL-BANG-MBR`` bench quantifies the §9 prediction.
"""

from __future__ import annotations

import numpy as np

from repro.core.interfaces import PointAccessMethod
from repro.geometry import blocks
from repro.geometry.blocks import Bits
from repro.geometry.rect import Rect
from repro.geometry.regioncover import is_covered
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import scan

__all__ = ["BangFile"]


class _DataPage:
    """A data page holding the records of one block region."""

    __slots__ = ("bits", "records")

    def __init__(self, bits: Bits):
        self.bits = bits
        self.records: list[tuple[tuple[float, ...], object]] = []


class _Entry:
    """A directory entry: a block, the page it points to and, in the
    minimal-regions variant, the minimal bounding rectangle below it."""

    __slots__ = ("bits", "pid", "mbr")

    def __init__(self, bits: Bits, pid: int, mbr: Rect | None = None):
        self.bits = bits
        self.pid = pid
        self.mbr = mbr


class _DirNode:
    """A directory page: its own block plus nested child entries."""

    __slots__ = ("bits", "is_leaf", "entries")

    def __init__(self, bits: Bits, is_leaf: bool):
        self.bits = bits
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []


class BangFile(PointAccessMethod):
    """The BANG file (and, with ``variable_length_entries``, BANG*)."""

    def __init__(
        self,
        store: PageStore,
        dims: int = 2,
        spanning: bool = False,
        variable_length_entries: bool = False,
        minimal_regions: bool = False,
    ):
        super().__init__(store, dims, layout.point_record_size(dims))
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        self._dir_payload = layout.directory_page_payload(store.page_size)
        self.spanning = spanning
        self.variable_length_entries = variable_length_entries
        self.minimal_regions = minimal_regions
        first = store.allocate(PageKind.DATA, _DataPage(()))
        root = _DirNode((), is_leaf=True)
        root.entries.append(_Entry((), first))
        self._root_pid = store.allocate(PageKind.DIRECTORY, root)
        store.pin(self._root_pid)
        store.write(first)
        store.write(self._root_pid)
        self._height = 1
        #: In-memory mirror of all data blocks, used for split decisions
        #: (a real implementation reads them off the pages it already
        #: has in hand) and by the tests' invariant checks.
        self._data_blocks: dict[Bits, int] = {(): first}

    # -- plumbing -----------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        """Number of directory levels (the tree is balanced)."""
        return self._height

    def iter_records(self):
        """Uncharged walk of every record via the directory tree."""
        stack = [self._root_pid]
        while stack:
            node: _DirNode = self.store.peek(stack.pop())
            for entry in node.entries:
                if node.is_leaf:
                    yield from self.store.peek(entry.pid).records
                else:
                    stack.append(entry.pid)

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        A page's region is its block rectangle — or, in the
        minimal-regions variant, the exact MBR its entry carries.
        Directory pages are byte-budget (capacity 0).
        """
        from repro.obs.structure import PageView

        def region_of(entry: _Entry) -> Rect:
            if entry.mbr is not None:
                return entry.mbr
            return blocks.block_rect(entry.bits, self.dims)

        queue: list[tuple[int, int]] = [(self._root_pid, 0)]
        i = 0
        while i < len(queue):
            pid, depth = queue[i]
            i += 1
            node: _DirNode = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="directory",
                depth=depth,
                regions=(blocks.block_rect(node.bits, self.dims),),
                records=len(node.entries),
                capacity=0,
                children=tuple(e.pid for e in node.entries),
                entry_regions=tuple(region_of(e) for e in node.entries),
            )
            for e in node.entries:
                if node.is_leaf:
                    page: _DataPage = self.store.peek(e.pid)
                    yield PageView(
                        pid=e.pid,
                        kind="data",
                        depth=depth + 1,
                        regions=(region_of(e),),
                        records=len(page.records),
                        capacity=self._capacity,
                        content=(
                            Rect.bounding_points([p for p, _ in page.records])
                            if page.records
                            else None
                        ),
                    )
                else:
                    queue.append((e.pid, depth + 1))

    def _entry_bytes(self, bits: Bits) -> int:
        """On-page size of one directory entry."""
        if self.variable_length_entries:
            block_bytes = 2 + -(-len(bits) // 8)
        else:
            block_bytes = 2 + blocks.MAX_DEPTH // 8
        region_bytes = 2 * self.dims * layout.COORD_SIZE if self.minimal_regions else 0
        return layout.POINTER_SIZE + block_bytes + region_bytes

    def _node_bytes(self, node: _DirNode) -> int:
        return sum(self._entry_bytes(e.bits) for e in node.entries)

    def _node_overflowed(self, node: _DirNode) -> bool:
        return self._node_bytes(node) > self._dir_payload

    # -- searching ------------------------------------------------------------

    def _point_bits(self, point: tuple[float, ...]) -> Bits:
        return blocks.bits_of_point(point, self.dims, blocks.MAX_DEPTH)

    def _best_data_entry(self, bits: Bits) -> tuple[int, Bits]:
        """(data pid, block) of the longest data block that is a prefix of ``bits``.

        Pure in-memory computation on the block mirror; used to simulate
        the spanning property and for internal routing decisions.
        """
        best: Bits | None = None
        for block in self._data_blocks:
            if blocks.is_prefix(block, bits):
                if best is None or len(block) > len(best):
                    best = block
        if best is None:
            raise RuntimeError("block mirror lost the root block")
        return self._data_blocks[best], best

    def _search_data_page(self, point: tuple[float, ...], prune: bool = False) -> int:
        """Charged directory search for the data page owning ``point``.

        Without the spanning property this is a multi-branch probe: every
        entry whose block contains the point may hide a deeper block, so
        all such branches are read (deepest first).  With ``spanning``
        the search is the guaranteed single path.

        ``prune`` enables minimal-region pruning (queries only — inserts
        must find the block-determined target page even when the point
        falls outside its current region).
        """
        bits = self._point_bits(point)
        if self.spanning:
            return self._spanning_descent(bits)
        prune = prune and self.minimal_regions
        best_pid, best_len = -1, -1
        stack = [self._root_pid]
        while stack:
            node: _DirNode = self.store.read(stack.pop())
            for entry in node.entries:
                if not blocks.is_prefix(entry.bits, bits):
                    continue
                if prune and (entry.mbr is None or not entry.mbr.contains_point(point)):
                    continue
                if node.is_leaf:
                    if len(entry.bits) > best_len:
                        best_pid, best_len = entry.pid, len(entry.bits)
                else:
                    stack.append(entry.pid)
        return best_pid

    def _spanning_descent(self, bits: Bits) -> int:
        """Single-path search as guaranteed by the spanning property.

        The destination is computed from the block mirror; one directory
        page per level is charged, which is exactly the cost a spanning
        directory achieves.
        """
        target_pid, target_block = self._best_data_entry(bits)
        leaf = self._locate_leaf_uncharged(target_block)
        self._charge_path_to(leaf)
        return target_pid

    def _locate_leaf_uncharged(self, bits: Bits) -> int:
        """Leaf pid holding (or due to hold) the entry for block ``bits``."""
        best_leaf, best_len = self._root_pid, -1
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node: _DirNode = self.store._objects[pid]
            if node.is_leaf:
                if blocks.is_prefix(node.bits, bits) and len(node.bits) > best_len:
                    best_leaf, best_len = pid, len(node.bits)
                continue
            for entry in node.entries:
                if blocks.is_prefix(entry.bits, bits):
                    stack.append(entry.pid)
        return best_leaf

    def _charge_path_to(self, leaf_pid: int) -> None:
        """Charge the root-to-leaf path (used by the spanning simulation)."""
        path = self._path_to(self._root_pid, leaf_pid)
        for pid in path:
            self.store.read(pid)

    def _path_to(self, pid: int, target: int) -> list[int] | None:
        node: _DirNode = self.store._objects[pid]
        if pid == target:
            return [pid]
        if node.is_leaf:
            return None
        for entry in node.entries:
            sub = self._path_to(entry.pid, target)
            if sub is not None:
                return [pid] + sub
        return None

    def _locate_leaf_charged(self, bits: Bits) -> int:
        """Charged search for the leaf where an entry for ``bits`` belongs."""
        if self.spanning:
            leaf = self._locate_leaf_uncharged(bits)
            self._charge_path_to(leaf)
            return leaf
        best_leaf, best_len = self._root_pid, -1
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node: _DirNode = self.store.read(pid)
            if node.is_leaf:
                if blocks.is_prefix(node.bits, bits) and len(node.bits) > best_len:
                    best_leaf, best_len = pid, len(node.bits)
                continue
            for entry in node.entries:
                if blocks.is_prefix(entry.bits, bits):
                    stack.append(entry.pid)
        return best_leaf

    # -- insertion ------------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        pid = self._search_data_page(point)
        page: _DataPage = self.store.read(pid)
        page.records.append((point, rid))
        if len(page.records) <= self._capacity:
            self.store.write(pid)
            if self.minimal_regions:
                self._grow_region(page.bits, point)
            return
        old_block = page.bits
        self._split_data_page(pid, page)
        if self.minimal_regions:
            self._refresh_region(old_block)

    def _split_data_page(self, pid: int, page: _DataPage) -> None:
        sub_block = self._choose_split_block(page)
        if sub_block is None:
            self.store.write(pid)  # duplicate-degenerate page: tolerate overflow
            return
        inner = [r for r in page.records if self._record_in_block(r[0], sub_block)]
        page.records = [
            r for r in page.records if not self._record_in_block(r[0], sub_block)
        ]
        new_page = _DataPage(sub_block)
        new_page.records = inner
        new_pid = self.store.allocate(PageKind.DATA, new_page)
        self._data_blocks[sub_block] = new_pid
        self.store.write(pid)
        self.store.write(new_pid)
        mbr = None
        if self.minimal_regions and inner:
            mbr = Rect.bounding_points([p for p, _ in inner])
        self._add_directory_entry(_Entry(sub_block, new_pid, mbr))

    def _record_in_block(self, point: tuple[float, ...], bits: Bits) -> bool:
        return blocks.is_prefix(bits, self._point_bits(point))

    def _choose_split_block(self, page: _DataPage) -> Bits | None:
        """Best-balance proper sub-block of the page's block.

        Walks down the halving hierarchy, at each level following the
        fuller half, and keeps the candidate whose inside/outside record
        counts are most balanced.  Candidates equal to an existing data
        block are skipped (the block is already someone else's region).
        """
        total = len(page.records)
        record_bits = [self._point_bits(p) for p, _ in page.records]
        current = page.bits
        best: Bits | None = None
        best_imbalance = total + 1
        while len(current) < blocks.MAX_DEPTH:
            zero = current + (0,)
            count0 = sum(1 for rb in record_bits if blocks.is_prefix(zero, rb))
            count1 = sum(1 for rb in record_bits if blocks.is_prefix(current, rb)) - count0
            if count0 == 0 and count1 == 0:
                break
            current = zero if count0 >= count1 else current + (1,)
            inner = count0 if count0 >= count1 else count1
            if 0 < inner < total and current not in self._data_blocks:
                imbalance = abs(inner - (total - inner))
                if imbalance < best_imbalance:
                    best_imbalance = imbalance
                    best = current
            if inner == 0:
                break
        return best

    def _add_directory_entry(self, entry: _Entry) -> None:
        leaf_pid = self._locate_leaf_charged(entry.bits)
        leaf: _DirNode = self.store.read(leaf_pid)
        leaf.entries.append(entry)
        self.store.write(leaf_pid)
        self._split_directory_if_needed(leaf_pid, leaf)

    def _split_directory_if_needed(self, pid: int, node: _DirNode) -> None:
        if not self._node_overflowed(node):
            return
        sub_block = self._choose_directory_split_block(node)
        if sub_block is None:
            return  # cannot split (all entries share one block); tolerate
        inner = [e for e in node.entries if blocks.is_prefix(sub_block, e.bits)]
        node.entries = [
            e for e in node.entries if not blocks.is_prefix(sub_block, e.bits)
        ]
        new_node = _DirNode(sub_block, node.is_leaf)
        new_node.entries = inner
        new_pid = self.store.allocate(PageKind.DIRECTORY, new_node)
        self.store.write(pid)
        self.store.write(new_pid)
        if pid == self._root_pid:
            old_root = node
            new_root = _DirNode((), is_leaf=False)
            new_root.entries.append(_Entry(old_root.bits, pid, self._node_region(node)))
            new_root.entries.append(_Entry(sub_block, new_pid, self._node_region(new_node)))
            self.store.unpin(pid)
            root_pid = self.store.allocate(PageKind.DIRECTORY, new_root)
            self._root_pid = root_pid
            self.store.pin(root_pid)
            self.store.write(root_pid)
            self._height += 1
        else:
            parent_pid, parent = self._find_parent(pid)
            parent.entries.append(_Entry(sub_block, new_pid, self._node_region(new_node)))
            if self.minimal_regions:
                shrunk = next(e for e in parent.entries if e.pid == pid)
                shrunk.mbr = self._node_region(node)
            self.store.write(parent_pid)
            self._split_directory_if_needed(parent_pid, parent)

    def _choose_directory_split_block(self, node: _DirNode) -> Bits | None:
        """Best-balance sub-block over the node's entry blocks."""
        total = len(node.entries)
        sibling_blocks = self._sibling_blocks(node)
        current = node.bits
        best: Bits | None = None
        best_imbalance = total + 1
        while len(current) < blocks.MAX_DEPTH:
            zero = current + (0,)
            count0 = sum(1 for e in node.entries if blocks.is_prefix(zero, e.bits))
            in_cur = sum(1 for e in node.entries if blocks.is_prefix(current, e.bits))
            count1 = in_cur - count0
            if count0 == 0 and count1 == 0:
                break
            current = zero if count0 >= count1 else current + (1,)
            inner = max(count0, count1)
            if 0 < inner < total and current not in sibling_blocks:
                imbalance = abs(inner - (total - inner))
                if imbalance < best_imbalance:
                    best_imbalance = imbalance
                    best = current
        return best

    def _sibling_blocks(self, node: _DirNode) -> set[Bits]:
        """Blocks of all directory nodes at the same level as ``node``."""
        level_nodes = [self.store._objects[self._root_pid]]
        depth = 0
        target_depth = self._node_depth(node)
        while depth < target_depth:
            nxt = []
            for n in level_nodes:
                nxt.extend(self.store._objects[e.pid] for e in n.entries)
            level_nodes = nxt
            depth += 1
        return {n.bits for n in level_nodes}

    def _node_depth(self, node: _DirNode) -> int:
        def walk(pid: int, depth: int) -> int | None:
            n: _DirNode = self.store._objects[pid]
            if n is node:
                return depth
            if n.is_leaf:
                return None
            for e in n.entries:
                found = walk(e.pid, depth + 1)
                if found is not None:
                    return found
            return None

        found = walk(self._root_pid, 0)
        if found is None:
            raise RuntimeError("node not reachable from root")
        return found

    def _find_parent(self, pid: int) -> tuple[int, _DirNode]:
        def walk(current: int) -> tuple[int, _DirNode] | None:
            node: _DirNode = self.store._objects[current]
            if node.is_leaf:
                return None
            for e in node.entries:
                if e.pid == pid:
                    return current, node
                found = walk(e.pid)
                if found is not None:
                    return found
            return None

        found = walk(self._root_pid)
        if found is None:
            raise RuntimeError("parent not found")
        # Reading the parent is charged: a real split must fetch it.
        self.store.read(found[0])
        return found


    # -- minimal regions (the §9 extension) --------------------------------------

    def _leaf_entry(self, block: Bits) -> tuple[int, "_DirNode", _Entry]:
        leaf_pid = self._locate_leaf_uncharged(block)
        leaf: _DirNode = self.store._objects[leaf_pid]
        entry = next(e for e in leaf.entries if e.bits == block)
        return leaf_pid, leaf, entry

    def _grow_region(self, block: Bits, point: tuple[float, ...]) -> None:
        """Expand the regions on the path to ``block`` to cover ``point``."""
        leaf_pid, _, entry = self._leaf_entry(block)
        if entry.mbr is not None and entry.mbr.contains_point(point):
            return
        entry.mbr = (
            Rect.from_point(point)
            if entry.mbr is None
            else entry.mbr.expanded_to_point(point)
        )
        self.store.write(leaf_pid)
        path = self._path_to(self._root_pid, leaf_pid) or []
        for parent_pid, child_pid in zip(reversed(path[:-1]), reversed(path[1:])):
            parent: _DirNode = self.store._objects[parent_pid]
            parent_entry = next(e for e in parent.entries if e.pid == child_pid)
            if parent_entry.mbr is not None and parent_entry.mbr.contains_point(point):
                break
            parent_entry.mbr = (
                Rect.from_point(point)
                if parent_entry.mbr is None
                else parent_entry.mbr.expanded_to_point(point)
            )
            self.store.write(parent_pid)

    def _refresh_region(self, block: Bits) -> None:
        """Recompute the region of ``block`` (after a split shrank it)."""
        leaf_pid, _, entry = self._leaf_entry(block)
        page: _DataPage = self.store._objects[entry.pid]
        entry.mbr = (
            Rect.bounding_points([p for p, _ in page.records])
            if page.records
            else None
        )
        self.store.write(leaf_pid)
        self._recompute_regions_upward(leaf_pid)

    def _recompute_regions_upward(self, leaf_pid: int) -> None:
        path = self._path_to(self._root_pid, leaf_pid) or []
        for parent_pid, child_pid in zip(reversed(path[:-1]), reversed(path[1:])):
            parent: _DirNode = self.store._objects[parent_pid]
            child: _DirNode = self.store._objects[child_pid]
            parent_entry = next(e for e in parent.entries if e.pid == child_pid)
            regions = [e.mbr for e in child.entries if e.mbr is not None]
            new_mbr = Rect.bounding(regions) if regions else None
            if new_mbr == parent_entry.mbr:
                break
            parent_entry.mbr = new_mbr
            self.store.write(parent_pid)

    def _node_region(self, node: "_DirNode") -> Rect | None:
        regions = [e.mbr for e in node.entries if e.mbr is not None]
        return Rect.bounding(regions) if regions else None

    # -- queries ----------------------------------------------------------------

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        result: list[tuple[tuple[float, ...], object]] = []
        stack = [self._root_pid]
        while stack:
            pid = stack.pop()
            node: _DirNode = self.store.read(pid)
            if node.is_leaf:
                for entry in self._relevant_data_entries(pid, node, rect):
                    page: _DataPage = self.store.read(entry.pid)
                    result.extend(
                        scan.match_records(self.store, entry.pid, page.records, rect)
                    )
            else:
                # Inner entries cannot be pruned by nesting: a data block
                # shorter than a nested sibling may keep records inside
                # the sibling's rectangle in a different subtree.  With
                # minimal regions, an entry whose region misses the query
                # can be pruned — the §9 improvement.
                idx = self._select_inner_entries(pid, node, rect)
                if idx is None:
                    for entry in node.entries:
                        if not blocks.block_rect(entry.bits, self.dims).intersects(rect):
                            continue
                        if self.minimal_regions and (
                            entry.mbr is None or not entry.mbr.intersects(rect)
                        ):
                            continue
                        stack.append(entry.pid)
                else:
                    entries = node.entries
                    for i in idx:
                        stack.append(entries[i].pid)
        return result

    def _select_inner_entries(self, pid: int, node: "_DirNode", rect: Rect):
        """Vectorized inner-entry pruning; ``None`` → scalar fallback.

        The block rectangles always gate descent; with minimal regions an
        entry additionally needs an MBR that meets the query (entries
        without an MBR are represented as NaN rows, which never match).
        """
        entries = node.entries
        idx = scan.select_boxes(
            self.store, pid, "blocks", len(entries),
            lambda: [blocks.block_rect(e.bits, self.dims) for e in entries],
            "isect", rect,
        )
        if idx is None or not self.minimal_regions:
            return idx

        def mbr_bounds():
            lo = np.full((len(entries), self.dims), np.nan)
            hi = np.full((len(entries), self.dims), np.nan)
            for i, entry in enumerate(entries):
                if entry.mbr is not None:
                    lo[i] = entry.mbr.lo
                    hi[i] = entry.mbr.hi
            return lo, hi

        mbr_idx = scan.select_bounds(
            self.store, pid, "mbrs", len(entries), mbr_bounds, "isect", rect
        )
        # Both index lists are ascending, so filtering one by membership in
        # the other preserves the scalar visit order.
        hits = set(mbr_idx)
        return [i for i in idx if i in hits]

    def _relevant_data_entries(
        self, pid: int, leaf: _DirNode, rect: Rect
    ) -> list[_Entry]:
        """Data entries to read: the block overlaps the query and the
        overlap is not entirely covered by sibling data blocks nested
        inside it (records in the covered part live on those pages)."""
        entries = leaf.entries
        if self.store.columnar is None:
            out = []
            for entry in entries:
                if self.minimal_regions and (
                    entry.mbr is None or not entry.mbr.intersects(rect)
                ):
                    continue
                block = blocks.block_rect(entry.bits, self.dims)
                overlap = block.intersection(rect)
                if overlap is None:
                    continue
                nested = [
                    blocks.block_rect(other.bits, self.dims)
                    for other in entries
                    if other is not entry
                    and len(other.bits) > len(entry.bits)
                    and blocks.is_prefix(entry.bits, other.bits)
                ]
                if nested and is_covered(overlap, nested):
                    continue
                out.append(entry)
            return out
        # Vectorized leaf scan: the block and MBR intersect gates run
        # through the batched select helpers (same verdicts as the scalar
        # gates above — ``Rect.intersection`` is None exactly when the
        # closed boxes are disjoint), and the query-independent nesting
        # structure of the leaf is cached per page (invalidated through
        # the store's write/free hooks like every columnar array).
        n = len(entries)
        idx = scan.select_boxes(
            self.store, pid, "blocks", n,
            lambda: [blocks.block_rect(e.bits, self.dims) for e in entries],
            "isect", rect,
        )
        if self.minimal_regions:

            def mbr_bounds():
                lo = np.full((n, self.dims), np.nan)
                hi = np.full((n, self.dims), np.nan)
                for i, entry in enumerate(entries):
                    if entry.mbr is not None:
                        lo[i] = entry.mbr.lo
                        hi[i] = entry.mbr.hi
                return lo, hi

            mbr_idx = scan.select_bounds(
                self.store, pid, "mbrs", n, mbr_bounds, "isect", rect
            )
            hits = set(mbr_idx)
            idx = [i for i in idx if i in hits]
        info = self._leaf_scan_info(pid, entries)
        out = []
        for i in idx:
            slot = info[i]
            nested = slot[1]
            if nested:
                block = slot[0]
                overlap = block.intersection(rect)
                if overlap == block:
                    # The whole block falls inside the query: its coverage
                    # by nested siblings is query-independent, so the
                    # verdict is computed once per page and memoised.
                    covered = slot[2]
                    if covered is None:
                        covered = slot[2] = is_covered(block, nested)
                else:
                    covered = is_covered(overlap, nested)
                if covered:
                    continue
            out.append(entries[i])
        return out

    def _leaf_scan_info(self, pid: int, entries) -> list:
        """Per-entry ``[block rect, nested sibling blocks, coverage]`` of a
        leaf, cached on the columnar cache (callers ensure it exists).

        The nesting structure depends only on the page's entries, never on
        the query, so one O(entries^2) pass serves every later query until
        the page is written.  The third slot lazily memoises the
        "full block covered by nested siblings" verdict.
        """
        pages = self.store.columnar._pages
        page = pages.get(pid)
        if page is None:
            page = pages[pid] = {}
        info = page.get("bang:nested")
        if info is None or len(info) != len(entries):
            dims = self.dims
            rects_ = [blocks.block_rect(e.bits, dims) for e in entries]
            info = []
            for j, entry in enumerate(entries):
                bits = entry.bits
                depth = len(bits)
                nested = [
                    rects_[k]
                    for k, other in enumerate(entries)
                    if other is not entry
                    and len(other.bits) > depth
                    and blocks.is_prefix(bits, other.bits)
                ]
                info.append([rects_[j], nested, None])
            page["bang:nested"] = info
        return info

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        pid = self._search_data_page(point, prune=True)
        if pid < 0:
            return []
        page: _DataPage = self.store.read(pid)
        return [rid for p, rid in page.records if p == point]
