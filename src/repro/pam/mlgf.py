"""The multilevel grid file [WK 85] — BUDDY's balanced predecessor.

§2 of the paper derives the BUDDY hash tree from the multilevel grid
file: conditions (i) (pairwise disjoint regions) and (ii) (regions need
not span the space) "have already been incorporated in the multilevel
grid file"; what BUDDY adds are the four performance properties, first
among them that no directory page holds fewer than two entries.  The
multilevel grid file (like the balanced multidimensional extendible
hash tree) is *artificially balanced by allowing one entry in a
directory page*, so every search walks the full directory height.

The structure therefore shares BUDDY's entire machinery and differs in
one switch: :class:`MultilevelGridFile` is the ``balanced=True`` buddy
tree under its historical name.  The ``ABL-MLGF`` bench measures what
the paper claims — that BUDDY's path shortening "is a performance
improvement for all operations compared to the balanced competitors".
"""

from __future__ import annotations

from repro.pam.buddytree import BuddyTree
from repro.storage.pagestore import PageStore

__all__ = ["MultilevelGridFile"]


class MultilevelGridFile(BuddyTree):
    """The multilevel grid file: a balanced buddy-style directory."""

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, balanced=True)

    def pack(self) -> int:
        """Packing is a BUDDY+ feature; the multilevel grid file has none."""
        raise NotImplementedError(
            "packing (property 4) belongs to the BUDDY hash tree"
        )

    def delete(self, point, rid) -> bool:
        """Deletion would collapse one-entry chains and unbalance the tree.

        The paper's comparison only grows files; the balanced variant
        keeps it that way.
        """
        raise NotImplementedError(
            "deletion is not specified for the multilevel grid file variant"
        )
