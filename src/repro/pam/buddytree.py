"""BUDDY — the buddy hash tree [SFK 89], the winner of the comparison.

The buddy hash tree is a dynamic hashing scheme with a tree-structured
directory whose entries are ``(R, P)`` pairs: ``R`` the minimal bounding
rectangle of the points below ``P``.  Splits only ever use the halving
hyperplanes of the *buddy system* (recursive cyclic halving of the unit
cube, :mod:`repro.geometry.blocks`), which keeps sibling regions
pairwise disjoint, and regions are re-minimised after every split, so —
the structure's key property — **empty data space is never partitioned**.

Further properties from the paper, all maintained here:

1. every directory node holds at least two entries; a split that would
   produce a one-entry node links the entry directly into the parent
   instead, which is why the tree is *unbalanced* (directory leaves may
   sit at different levels);
2. splits are minimal: after a split both pages carry the exact minimal
   bounding rectangle of their contents;
3. except for the root, exactly one pointer refers to each directory
   page (the directory is a tree and grows linearly);
4. *packing* (the BUDDY+ variant, :meth:`BuddyTree.pack`) lets several
   directory entries of one and the same directory page share a data
   page, raising storage utilisation above 71 % in the paper.
"""

from __future__ import annotations

from repro.core.interfaces import PointAccessMethod
from repro.geometry import blocks
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
import numpy as np

from repro.query import traverse
from repro.storage.soa import fused_points, soa_field

__all__ = ["BuddyTree"]


class _Entry:
    """One directory entry: a minimal bounding rectangle and a child pointer."""

    __slots__ = ("rect", "pid", "is_data")

    def __init__(self, rect: Rect, pid: int, is_data: bool):
        self.rect = rect
        self.pid = pid
        self.is_data = is_data

    def block(self, dims: int) -> blocks.Bits:
        """The entry's buddy rectangle: minimal block enclosing its MBR."""
        return blocks.min_enclosing_block(self.rect, dims)


class _DirNode:
    """A directory page: a list of entries with pairwise disjoint regions."""

    __slots__ = ("_soa_entries",)

    entries = soa_field()

    def __init__(self, entries: list[_Entry]):
        self.entries = entries


class _DataPage:
    """A data page: the records of one minimal bounding rectangle."""

    __slots__ = ("_soa_records",)

    records = soa_field()

    def __init__(self, records: list[tuple[tuple[float, ...], object]] | None = None):
        self.records = records if records is not None else []


def _entry_boxes_cover(lst) -> "np.ndarray":
    """``[lo, -hi]`` fused rows over a directory page's entry MBRs."""
    lo = np.array([e.rect.lo for e in lst], dtype=float)
    hi = np.array([e.rect.hi for e in lst], dtype=float)
    return np.concatenate([lo, -hi], axis=1)


class BuddyTree(PointAccessMethod):
    """The BUDDY hash tree; ``pack()`` turns a built file into BUDDY+.

    ``balanced=True`` turns off the path shortening of property (1) and
    yields the *artificially balanced* behaviour of BUDDY's predecessors
    (the multilevel grid file and the balanced multidimensional
    extendible hash tree): one-entry directory pages are allowed, every
    data page sits below the same number of directory levels, and new
    regions in empty space are pushed down through chains of one-entry
    nodes.  :class:`repro.pam.mlgf.MultilevelGridFile` exposes this
    variant under its own name.
    """

    def __init__(self, store: PageStore, dims: int = 2, balanced: bool = False):
        super().__init__(store, dims, layout.point_record_size(dims))
        self.balanced = balanced
        self._levels = 0
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        entry_size = 2 * dims * layout.COORD_SIZE + layout.POINTER_SIZE
        self._fanout = layout.directory_page_payload(store.page_size) // entry_size
        if self._fanout < 4:
            raise ValueError("page too small for a buddy tree directory")
        # The file starts as a single data page; a directory appears with
        # the first split.  The root (data or directory) is pinned.
        self._root_pid = store.allocate(PageKind.DATA, _DataPage())
        self._root_is_data = True
        store.write(self._root_pid)
        store.pin(self._root_pid)
        self._packed = False

    # -- plumbing ----------------------------------------------------------

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def directory_height(self) -> int:
        """Maximum number of directory levels on any root-to-data path."""
        if self._root_is_data:
            return 0

        def depth(pid: int, is_data: bool) -> int:
            if is_data:
                return 0
            node: _DirNode = self.store._objects[pid]
            return 1 + max(depth(e.pid, e.is_data) for e in node.entries)

        return depth(self._root_pid, False)

    @property
    def is_packed(self) -> bool:
        """True once :meth:`pack` has turned the file into BUDDY+."""
        return self._packed

    def iter_records(self):
        """Uncharged walk of every record; shared (packed) pages once."""
        seen: set[int] = set()
        stack = [(self._root_pid, self._root_is_data)]
        while stack:
            pid, is_data = stack.pop()
            if pid in seen:
                continue
            seen.add(pid)
            if is_data:
                yield from self.store.peek(pid).records
            else:
                stack.extend((e.pid, e.is_data) for e in self.store.peek(pid).entries)

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        Shared (packed) data pages are yielded once, carrying every
        sharing entry's region.
        """
        from repro.obs.structure import PageView

        if self._root_is_data:
            page = self.store.peek(self._root_pid)
            yield PageView(
                pid=self._root_pid,
                kind="data",
                depth=0,
                regions=(),
                records=len(page.records),
                capacity=self._capacity,
                content=(
                    Rect.bounding_points([p for p, _ in page.records])
                    if page.records
                    else None
                ),
            )
            return
        queue: list[tuple[int, int, Rect | None]] = [(self._root_pid, 0, None)]
        data_order: list[int] = []
        data_owned: dict[int, tuple[int, list[Rect]]] = {}
        i = 0
        while i < len(queue):
            pid, depth, region = queue[i]
            i += 1
            node: _DirNode = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="directory",
                depth=depth,
                regions=(region,) if region is not None else (),
                records=len(node.entries),
                capacity=self._fanout,
                children=tuple(e.pid for e in node.entries),
                entry_regions=tuple(e.rect for e in node.entries),
            )
            for e in node.entries:
                if e.is_data:
                    if e.pid not in data_owned:
                        data_owned[e.pid] = (depth + 1, [])
                        data_order.append(e.pid)
                    data_owned[e.pid][1].append(e.rect)
                else:
                    queue.append((e.pid, depth + 1, e.rect))
        for pid in data_order:
            depth, rects = data_owned[pid]
            page = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="data",
                depth=depth,
                regions=tuple(rects),
                records=len(page.records),
                capacity=self._capacity,
                content=(
                    Rect.bounding_points([p for p, _ in page.records])
                    if page.records
                    else None
                ),
            )

    # -- insertion -------------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        if self._root_is_data:
            page: _DataPage = self.store.read(self._root_pid)
            page.records.append((point, rid))
            if len(page.records) > self._capacity:
                self._split_root_data_page(page)
            else:
                self.store.write(self._root_pid)
            return
        self._insert_descend(self._root_pid, point, rid, at_root=True)

    def _insert_descend(
        self, pid: int, point: tuple[float, ...], rid: object, at_root: bool,
        depth: int = 1,
    ) -> Rect:
        """Insert below directory page ``pid``; returns the node's new MBR.

        Any overflow of ``pid`` itself is handled by the caller except at
        the root, where a new root is created.
        """
        node: _DirNode = self.store.read(pid)
        entry = self._choose_entry(node, point)
        if entry is None:
            # Empty space that no region may claim: hang a fresh data
            # page directly off this node (source of the unbalance) —
            # or, in the balanced variant, push it down to the data
            # level through a chain of one-entry directory pages.
            new_page = _DataPage([(point, rid)])
            new_pid = self.store.allocate(PageKind.DATA, new_page)
            self.store.write(new_pid)
            child_entry = _Entry(Rect.from_point(point), new_pid, True)
            if self.balanced:
                # Data entries live in depth-`levels` nodes; build the
                # chain of one-entry pages covering the missing levels.
                for _ in range(self._levels - depth):
                    chain = _DirNode([child_entry])
                    chain_pid = self.store.allocate(PageKind.DIRECTORY, chain)
                    self.store.write(chain_pid)
                    child_entry = _Entry(child_entry.rect, chain_pid, False)
            node.entries.append(child_entry)
        elif entry.is_data:
            page: _DataPage = self.store.read(entry.pid)
            page.records.append((point, rid))
            entry.rect = entry.rect.expanded_to_point(point)
            node.entries.touch()
            if len(page.records) > self._capacity:
                self._split_data_entry(node, entry, page)
            else:
                self.store.write(entry.pid)
        else:
            child_mbr = self._insert_descend(
                entry.pid, point, rid, at_root=False, depth=depth + 1
            )
            entry.rect = child_mbr
            node.entries.touch()
            child: _DirNode = self.store._objects[entry.pid]
            if self._node_overflowed(child):
                self._split_dir_entry(node, entry, child)
        self.store.write(pid)
        if at_root:
            while True:
                root_node: _DirNode = self.store._objects[self._root_pid]
                if not self._node_overflowed(root_node):
                    break
                self._grow_root(root_node)
        return Rect.bounding([e.rect for e in node.entries])

    def _choose_entry(self, node: _DirNode, point: tuple[float, ...]) -> _Entry | None:
        """The unique entry responsible for ``point``, enlarged if needed.

        Preference order: (a) the entry whose region already contains the
        point; (b) the entry whose *buddy rectangle* contains it; (c) the
        entry whose region can be enlarged so that the enlarged buddy
        rectangle stays clear of every sibling region.  ``None`` means
        the point lies in space no entry may claim.
        """
        for entry in node.entries:
            if entry.rect.contains_point(point):
                return entry
        containing = [
            e
            for e in node.entries
            if blocks.block_rect(e.block(self.dims), self.dims).contains_point(point)
        ]
        if containing:
            # Buddy rectangles of siblings are nested or disjoint; the
            # deepest (smallest) one is the responsible region.
            return max(containing, key=lambda e: len(e.block(self.dims)))
        point_bits = blocks.bits_of_point(point, self.dims, blocks.MAX_DEPTH)
        best: _Entry | None = None
        best_len = -1
        for entry in node.entries:
            grown_block = blocks.common_prefix(entry.block(self.dims), point_bits)
            grown_rect = blocks.block_rect(grown_block, self.dims)
            if any(
                other is not entry and grown_rect.intersects(other.rect)
                for other in node.entries
            ):
                continue
            if len(grown_block) > best_len:
                best_len = len(grown_block)
                best = entry
        return best

    # -- splitting ----------------------------------------------------------------

    def _split_records(
        self, records: list[tuple[tuple[float, ...], object]]
    ) -> tuple[list, list, Rect, Rect] | None:
        """Split records at the halving hyperplane of their minimal block."""
        mbr = Rect.bounding_points([p for p, _ in records])
        block = blocks.min_enclosing_block(mbr, self.dims)
        if len(block) >= blocks.MAX_DEPTH:
            return None  # duplicate-degenerate page; caller tolerates overflow
        lower, upper = [], []
        for record in records:
            bits = blocks.bits_of_point(record[0], self.dims, len(block) + 1)
            (upper if bits[-1] else lower).append(record)
        if not lower or not upper:
            return None
        return (
            lower,
            upper,
            Rect.bounding_points([p for p, _ in lower]),
            Rect.bounding_points([p for p, _ in upper]),
        )

    def _split_root_data_page(self, page: _DataPage) -> None:
        """First split of the file: the root data page becomes a directory."""
        parts = self._split_records(page.records)
        if parts is None:
            self.store.write(self._root_pid)
            return
        lower, upper, lo_mbr, hi_mbr = parts
        self.store.unpin(self._root_pid)
        lo_pid = self._root_pid
        self.store._objects[lo_pid] = _DataPage(lower)
        hi_pid = self.store.allocate(PageKind.DATA, _DataPage(upper))
        root = _DirNode(
            [_Entry(lo_mbr, lo_pid, True), _Entry(hi_mbr, hi_pid, True)]
        )
        self._root_pid = self.store.allocate(PageKind.DIRECTORY, root)
        self._root_is_data = False
        self._levels = 1
        self.store.pin(self._root_pid)
        self.store.write(lo_pid)
        self.store.write(hi_pid)
        self.store.write(self._root_pid)

    def _split_data_entry(self, node: _DirNode, entry: _Entry, page: _DataPage) -> None:
        """Split a full data page into two sibling entries of ``node``."""
        if self._packed and self._shared_count(node, entry.pid) > 1:
            self._unpack_entry(node, entry, page)
            if entry not in node.entries:
                return  # region swallowed by a nested sibling; nothing to split
            page = self.store.read(entry.pid)
            if len(page.records) <= self._capacity:
                return
        parts = self._split_records(page.records)
        if parts is None:
            self.store.write(entry.pid)
            return
        lower, upper, lo_mbr, hi_mbr = parts
        page.records = lower
        entry.rect = lo_mbr
        node.entries.touch()
        new_pid = self.store.allocate(PageKind.DATA, _DataPage(upper))
        node.entries.append(_Entry(hi_mbr, new_pid, True))
        self.store.write(entry.pid)
        self.store.write(new_pid)

    def _split_entries(self, entries: list[_Entry]) -> tuple[list[_Entry], list[_Entry]]:
        """Partition directory entries at the halving line of their common block.

        Entry blocks never straddle a halving hyperplane of an enclosing
        block, so the partition is always clean; minimality of the common
        block guarantees both sides are non-empty.  (A best-balance
        variant that searches deeper halvings was tried and measured
        *worse* on five of the seven distributions — the one-against-rest
        splits of the plain halving keep regions tighter.)
        """
        entry_blocks = [e.block(self.dims) for e in entries]
        common = entry_blocks[0]
        for b in entry_blocks[1:]:
            common = blocks.common_prefix(common, b)
        depth = len(common)
        lower = [e for e, b in zip(entries, entry_blocks) if len(b) > depth and b[depth] == 0]
        upper = [e for e, b in zip(entries, entry_blocks) if len(b) > depth and b[depth] == 1]
        stuck = [e for e, b in zip(entries, entry_blocks) if len(b) <= depth]
        # An entry whose own block *equals* the common block (a degenerate
        # region around a shared center) goes with the smaller side.
        for e in stuck:
            (lower if len(lower) <= len(upper) else upper).append(e)
        if not lower or not upper:
            # All real blocks on one side: put the largest-region entry alone.
            every = lower or upper
            every.sort(key=lambda e: e.rect.area())
            return every[:-1], every[-1:]
        return lower, upper

    def _partition_until_fits(self, entries: list[_Entry]) -> list[list[_Entry]]:
        """Split entry groups by halving hyperplanes until each fits a page."""
        done: list[list[_Entry]] = []
        work = [entries]
        while work:
            group = work.pop()
            if len(group) <= self._fanout:
                done.append(group)
            else:
                work.extend(self._split_entries(group))
        return done

    def _unshare_split_groups(self, groups: list[list[_Entry]]) -> None:
        """Unpack data pages whose sharers straddle a directory split.

        Property 4 allows a data page to be shared only by entries of
        one and the same directory page; when a directory split is about
        to distribute sharing entries over different pages, the shared
        page is unpacked first.
        """
        if not self._packed:
            return
        group_of: dict[int, int] = {}
        straddling: list[int] = []
        for index, group in enumerate(groups):
            for e in group:
                if not e.is_data:
                    continue
                if e.pid in group_of and group_of[e.pid] != index:
                    if e.pid not in straddling:
                        straddling.append(e.pid)
                group_of.setdefault(e.pid, index)
        for pid in straddling:
            sharers = [
                e for group in groups for e in group if e.is_data and e.pid == pid
            ]
            for dropped in self._unshare(sharers, self.store.read(pid)):
                for group in groups:
                    if dropped in group:
                        group.remove(dropped)
                        break

    def _split_dir_entry(self, parent: _DirNode, entry: _Entry, child: _DirNode) -> None:
        """Split an overflowing directory page below ``parent``.

        One-entry halves are linked directly into the parent (property 1:
        no directory page has fewer than two entries).
        """
        groups = self._partition_until_fits(child.entries)
        self._unshare_split_groups(groups)
        parent.entries.remove(entry)
        reused_child_page = False
        for group in groups:
            if not group:  # every entry was dropped by unsharing
                continue
            if len(group) == 1 and not self.balanced:
                parent.entries.append(group[0])
                continue
            if not reused_child_page:
                pid = entry.pid
                child.entries = group
                reused_child_page = True
            else:
                pid = self.store.allocate(PageKind.DIRECTORY, _DirNode(group))
            parent.entries.append(
                _Entry(Rect.bounding([e.rect for e in group]), pid, False)
            )
            self.store.write(pid)
        if not reused_child_page:
            # Every group was a single entry; the child page disappears.
            self.store.free(entry.pid)

    def _grow_root(self, root: _DirNode) -> None:
        """Split an overflowing root, adding one directory level."""
        new_entries = []
        groups = self._partition_until_fits(root.entries)
        self._unshare_split_groups(groups)
        for group in groups:
            if not group:  # every entry was dropped by unsharing
                continue
            if len(group) == 1 and not self.balanced:
                new_entries.append(group[0])
            else:
                pid = self.store.allocate(PageKind.DIRECTORY, _DirNode(group))
                new_entries.append(
                    _Entry(Rect.bounding([e.rect for e in group]), pid, False)
                )
                self.store.write(pid)
        self._levels += 1
        self.store.unpin(self._root_pid)
        self.store.free(self._root_pid)
        self._root_pid = self.store.allocate(PageKind.DIRECTORY, _DirNode(new_entries))
        self.store.pin(self._root_pid)
        self.store.write(self._root_pid)

    def _node_overflowed(self, node: _DirNode) -> bool:
        return len(node.entries) > self._fanout

    # -- queries ---------------------------------------------------------------------

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        store = self.store
        if store.columnar is None:
            return self._range_query_scalar(rect)
        # Plan: level-at-a-time over uncharged views; all cold pages of a
        # level share one fused kernel call (see repro.query.traverse).
        # Property 4 lets several entries of one directory page share a
        # data page, so the frontier dedups pids exactly like the scalar
        # path's seen_data set — set membership is order-independent.
        objects = store._objects
        src = traverse.RowSource(store.columnar, rect)
        row_of = src.row
        # Promoted pages answer straight from the workload's CSR verdicts;
        # probing them inline skips the RowSource call for the common case
        # (the rows are the same lists row() would return).
        workload = src.workload
        hot = workload._rows if workload is not None else None
        qi = workload.index if workload is not None else -1
        verdicts: dict[int, list] = {}
        # Directory pages keep their expanded (child pid, is_data) pairs:
        # the plan partitions them into the next frontier and the replay
        # re-walks the same pairs, so entries are decoded exactly once.
        expansion: dict[int, list] = {}
        planned: set[int] = {self._root_pid}
        dir_level: list[int] = []
        data_level: list[int] = []
        (data_level if self._root_is_data else dir_level).append(self._root_pid)

        def expand(pid: int, row: list, nxt_dir: list, nxt_data: list) -> None:
            entries = objects[pid].entries
            kids = expansion[pid] = []
            for i in row:
                e = entries[i]
                cpid = e.pid
                is_data = e.is_data
                kids.append((cpid, is_data))
                if cpid in planned:
                    continue
                planned.add(cpid)
                (nxt_data if is_data else nxt_dir).append(cpid)

        while dir_level or data_level:
            nxt_dir: list[int] = []
            nxt_data: list[int] = []
            deferred_dir: list[int] = []
            deferred_data: list[int] = []
            for pid in dir_level:
                entries = objects[pid].entries
                if not entries:
                    verdicts[pid] = traverse._EMPTY_ROW
                    expansion[pid] = traverse._EMPTY_ROW
                    continue
                row = None
                if hot is not None:
                    entry = hot.get((pid, "entries:isect"))
                    if entry is not None:
                        starts, cols = entry
                        s = starts[qi]
                        e = starts[qi + 1]
                        if e == s:
                            verdicts[pid] = traverse._EMPTY_ROW
                            expansion[pid] = traverse._EMPTY_ROW
                            continue
                        row = cols[s:e].tolist()
                if row is None:
                    row = row_of(
                        pid, "entries:isect", "isect",
                        entries, "entries:cover", _entry_boxes_cover,
                    )
                if row is None:
                    deferred_dir.append(pid)
                else:
                    verdicts[pid] = row
                    expand(pid, row, nxt_dir, nxt_data)
            for pid in data_level:
                records = objects[pid].records
                if not records:
                    verdicts[pid] = traverse._EMPTY_ROW
                    continue
                row = None
                if hot is not None:
                    entry = hot.get((pid, "pts"))
                    if entry is not None:
                        starts, cols = entry
                        s = starts[qi]
                        e = starts[qi + 1]
                        if e == s:
                            verdicts[pid] = traverse._EMPTY_ROW
                            continue
                        row = cols[s:e].tolist()
                if row is None:
                    row = row_of(pid, "pts", "pts", records, "pts", fused_points)
                if row is None:
                    deferred_data.append(pid)
                else:
                    verdicts[pid] = row
            if deferred_dir or deferred_data:
                rows = src.flush()
                for pid in deferred_data:
                    verdicts[pid] = rows[(pid, "pts")]
                for pid in deferred_dir:
                    row = verdicts[pid] = rows[(pid, "entries:isect")]
                    expand(pid, row, nxt_dir, nxt_data)
            dir_level, data_level = nxt_dir, nxt_data
        # Replay: the original preorder descent with charged reads and
        # the scalar seen_data dedup order (explicit stack, children
        # pushed reversed, so the visit order matches the recursion).
        result: list[tuple[tuple[float, ...], object]] = []
        seen_data: set[int] = set()
        read = store.read
        stack = [(self._root_pid, self._root_is_data)]
        while stack:
            pid, is_data = stack.pop()
            if is_data:
                if pid in seen_data:
                    continue
                seen_data.add(pid)
                records = read(pid).records
                row = verdicts[pid]
                if row:
                    result.extend([records[i] for i in row])
            else:
                read(pid)
                stack.extend(reversed(expansion[pid]))
        return result

    def _range_query_scalar(
        self, rect: Rect
    ) -> list[tuple[tuple[float, ...], object]]:
        """The original scalar descent (the ``REPRO_VECTOR=0`` kill switch)."""
        result: list[tuple[tuple[float, ...], object]] = []
        seen_data: set[int] = set()

        def visit(pid: int, is_data: bool) -> None:
            if is_data:
                if pid in seen_data:
                    return
                seen_data.add(pid)
                page: _DataPage = self.store.read(pid)
                result.extend(
                    rec for rec in page.records if rect.contains_point(rec[0])
                )
                return
            node: _DirNode = self.store.read(pid)
            for entry in node.entries:
                if entry.rect.intersects(rect):
                    visit(entry.pid, entry.is_data)

        visit(self._root_pid, self._root_is_data)
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        # Sibling regions are disjoint up to shared boundaries, so the
        # descent is single-path except for points lying exactly on a
        # region edge, where both touching regions must be probed.
        result: list[object] = []
        stack = [(self._root_pid, self._root_is_data)]
        seen: set[int] = set()
        while stack:
            pid, is_data = stack.pop()
            if pid in seen:
                continue
            seen.add(pid)
            if is_data:
                page: _DataPage = self.store.read(pid)
                result.extend(rid for p, rid in page.records if p == point)
                continue
            node: _DirNode = self.store.read(pid)
            for entry in node.entries:
                if entry.rect.contains_point(point):
                    stack.append((entry.pid, entry.is_data))
        return result

    # -- deletion (extension; the paper's comparison only grows files) -----------------

    def delete(self, point: tuple[float, ...], rid: object) -> bool:
        """Remove one record, re-minimising regions along the path.

        Empty data pages disappear; a directory page left with a single
        entry is collapsed into its parent (preserving property 1).
        Returns ``True`` when the record existed.
        """
        self.store.begin_operation()
        point = tuple(float(c) for c in point)
        if self._root_is_data:
            page: _DataPage = self.store.read(self._root_pid)
            before = len(page.records)
            page.records = [
                r for r in page.records if not (r[0] == point and r[1] == rid)
            ]
            if len(page.records) == before:
                return False
            self._records -= 1
            self.store.write(self._root_pid)
            return True
        deleted = self._delete_descend(self._root_pid, point, rid)
        if deleted:
            self._records -= 1
            root: _DirNode = self.store._objects[self._root_pid]
            if len(root.entries) == 1:
                only = root.entries[0]
                self.store.unpin(self._root_pid)
                self.store.free(self._root_pid)
                self._root_pid = only.pid
                self._root_is_data = only.is_data
                self.store.pin(self._root_pid)
        return deleted

    def _delete_descend(self, pid: int, point: tuple[float, ...], rid: object) -> bool:
        node: _DirNode = self.store.read(pid)
        for entry in list(node.entries):
            # Boundary points may be contained in two touching regions;
            # keep trying candidates until the record is found.
            if not entry.rect.contains_point(point):
                continue
            if entry.is_data:
                page: _DataPage = self.store.read(entry.pid)
                before = len(page.records)
                page.records = [
                    r for r in page.records if not (r[0] == point and r[1] == rid)
                ]
                if len(page.records) == before:
                    continue
                if page.records:
                    entry.rect = Rect.bounding_points([p for p, _ in page.records])
                    node.entries.touch()
                    self.store.write(entry.pid)
                else:
                    self.store.free(entry.pid)
                    node.entries.remove(entry)
            else:
                if not self._delete_descend(entry.pid, point, rid):
                    continue
                child: _DirNode = self.store._objects[entry.pid]
                if len(child.entries) == 1:
                    node.entries[node.entries.index(entry)] = child.entries[0]
                    self.store.free(entry.pid)
                elif not child.entries:
                    self.store.free(entry.pid)
                    node.entries.remove(entry)
                else:
                    entry.rect = Rect.bounding([e.rect for e in child.entries])
                    node.entries.touch()
            self.store.write(pid)
            return True
        return False

    # -- packing: the BUDDY+ variant -------------------------------------------------

    def pack(self) -> int:
        """Merge underfilled sibling data pages that share a directory page.

        Property 4 of the paper: several entries of one and the same
        directory leaf may point to one data page, provided each region
        holds fewer than half a page of records.  Entries keep their
        (disjoint) regions; only the pages fuse.  Returns the number of
        data pages saved.
        """
        if self._root_is_data:
            return 0
        saved = 0
        stack = [self._root_pid]
        while stack:
            node: _DirNode = self.store._objects[stack.pop()]
            small = [
                e
                for e in node.entries
                if e.is_data
                and len(self.store._objects[e.pid].records) < self._capacity / 2
                and self._shared_count(node, e.pid) == 1
            ]
            group: list[_Entry] = []
            group_size = 0
            for entry in sorted(
                small, key=lambda e: len(self.store._objects[e.pid].records)
            ):
                n = len(self.store._objects[entry.pid].records)
                if group and group_size + n > self._capacity:
                    saved += self._fuse(group)
                    group, group_size = [], 0
                group.append(entry)
                group_size += n
            saved += self._fuse(group)
            stack.extend(e.pid for e in node.entries if not e.is_data)
        self._packed = True
        return saved

    def _fuse(self, group: list[_Entry]) -> int:
        if len(group) < 2:
            return 0
        target = group[0].pid
        target_page: _DataPage = self.store._objects[target]
        for entry in group[1:]:
            donor: _DataPage = self.store._objects[entry.pid]
            target_page.records.extend(donor.records)
            self.store.free(entry.pid)
            entry.pid = target
        self.store.write(target)
        return len(group) - 1

    def _shared_count(self, node: _DirNode, pid: int) -> int:
        return sum(1 for e in node.entries if e.is_data and e.pid == pid)

    def _unpack_entry(self, node: _DirNode, entry: _Entry, page: _DataPage) -> None:
        """Undo packing for one shared page before it must split."""
        sharers = [e for e in node.entries if e.is_data and e.pid == entry.pid]
        for dropped in self._unshare(sharers, page):
            node.entries.remove(dropped)
        node.entries.touch()  # _unshare rebinds surviving sharers' MBRs

    def _unshare(self, sharers: list[_Entry], page: _DataPage) -> list[_Entry]:
        """Give every sharer its own page again; returns dropped entries.

        Each record is claimed by the *smallest* sharer region containing
        it — sibling MBRs can nest around degenerate blocks, so first-match
        claiming would misfile records.  Every surviving region is then
        recomputed as the exact MBR of its records (the structure's
        defining invariant); a sharer whose region was swallowed whole by
        a nested sibling ends up empty and is dropped — the caller must
        remove the returned entries from their directory page.
        """
        claims: dict[int, list] = {id(s): [] for s in sharers}
        leftover: list = []
        for record in page.records:
            containing = [s for s in sharers if s.rect.contains_point(record[0])]
            if containing:
                owner = min(containing, key=lambda s: s.rect.area())
                claims[id(owner)].append(record)
            else:
                leftover.append(record)
        survivors = [s for s in sharers if claims[id(s)]]
        if not survivors:
            survivors = sharers[:1]
        claims[id(survivors[0])].extend(leftover)
        first = True
        for sharer in survivors:
            owned = claims[id(sharer)]
            if owned:
                sharer.rect = Rect.bounding_points([p for p, _ in owned])
            if first:
                page.records = owned
                first = False
            else:
                sharer.pid = self.store.allocate(PageKind.DATA, _DataPage(owned))
            self.store.write(sharer.pid)
        return [s for s in sharers if s not in survivors]
