"""GRID — the 2-level grid file [Hin 85], the paper's measuring stick.

The grid directory itself is managed by another grid file: a coarse
*first-level* directory, kept entirely in main memory per §3 of the
paper, partitions the data space into subregions; each subregion owns a
*second-level* directory page holding an independent grid (scales plus
cell array) over that subregion, whose cells point to data pages.

Splitting cascades upward: a full data page splits inside its
second-level grid (possibly refining the subregion's scales); when a
second-level grid no longer fits its 512-byte page, the subregion is cut
in two along one of its own boundaries and the first-level directory is
refined accordingly.  A subregion cut that would slice through a data
page's cell box force-splits that page first, which is one reason GRID
shows the lowest storage utilisation in the paper's tables.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.interfaces import PointAccessMethod
from repro.core.stats import BuildMetrics
from repro.geometry.rect import Rect
from repro.pam.gridfile import _DataPage, _GridLayer
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse

__all__ = ["TwoLevelGridFile"]


class _SubGrid:
    """A second-level directory page: one grid over one subregion."""

    __slots__ = ("layer",)

    def __init__(self, layer: _GridLayer):
        self.layer = layer


class TwoLevelGridFile(PointAccessMethod):
    """The paper's GRID structure.

    The first-level directory is main-memory resident; its size is
    reported through :attr:`BuildMetrics.pinned_pages` (the paper notes
    it reached 45 pages for 100 000 diagonal records).  Second-level
    directory pages and data pages live on disk.
    """

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, layout.point_record_size(dims))
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        self._subgrid_payload = layout.directory_page_payload(store.page_size)
        self._root = _GridLayer(Rect.unit(dims))
        # The paper buffers only "the last two accessed pages" for GRID.
        store.path_buffer_limit = 2
        # Bootstrap: one subregion covering everything, one data page.
        first_layer = _GridLayer(Rect.unit(dims))
        first_data = self.store.allocate(PageKind.DATA, _DataPage())
        first_layer.install_root_payload(first_data)
        spid = self.store.allocate(PageKind.DIRECTORY, _SubGrid(first_layer))
        self._root.install_root_payload(spid)
        self.store.write(first_data)
        self.store.write(spid)

    # -- plumbing -------------------------------------------------------

    @property
    def directory_height(self) -> int:
        """Two directory levels, as reported for GRID in every table."""
        return 2

    @property
    def record_capacity(self) -> int:
        return self._capacity

    @property
    def first_level_pages(self) -> int:
        """Main-memory pages occupied by the first-level directory."""
        return -(-self._root.byte_size() // self.store.page_size)

    def metrics(self) -> BuildMetrics:
        """Table metrics; pinned pages are the in-core first level."""
        return replace(super().metrics(), pinned_pages=self.first_level_pages)

    def iter_records(self):
        """Uncharged walk: first level, subgrids, data pages."""
        for spid in self._root.boxes:
            subgrid: _SubGrid = self.store.peek(spid)
            for dpid in subgrid.layer.boxes:
                yield from self.store.peek(dpid).records

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`).

        The in-core first level is not a disk page and is not walked;
        second-level directory pages sit at depth 0, data pages below.
        """
        from repro.obs.structure import PageView

        for spid in self._root.boxes:
            subgrid: _SubGrid = self.store.peek(spid)
            layer = subgrid.layer
            yield PageView(
                pid=spid,
                kind="directory",
                depth=0,
                regions=(self._root.box_rect(spid),),
                records=len(layer.boxes),
                capacity=0,
                children=tuple(layer.boxes),
                entry_regions=tuple(layer.box_rect(d) for d in layer.boxes),
            )
            for dpid in layer.boxes:
                page: _DataPage = self.store.peek(dpid)
                yield PageView(
                    pid=dpid,
                    kind="data",
                    depth=1,
                    regions=(layer.box_rect(dpid),),
                    records=len(page.records),
                    capacity=self._capacity,
                    content=(
                        Rect.bounding_points([p for p, _ in page.records])
                        if page.records
                        else None
                    ),
                )

    # -- operations --------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        spid = self._root.payload_of_point(point)
        subgrid: _SubGrid = self.store.read(spid)
        dpid = subgrid.layer.payload_of_point(point)
        page: _DataPage = self.store.read(dpid)
        page.records.append((point, rid))
        if len(page.records) <= self._capacity:
            self.store.write(dpid)
            return
        self._split_data_page(spid, subgrid, dpid, page)
        # A subregion cut roughly halves a grid, but pathological scale
        # refinements can leave either half still too large, so iterate.
        worklist = [spid]
        while worklist:
            current = worklist.pop()
            grid: _SubGrid = self.store.read(current)
            if grid.layer.byte_size() > self._subgrid_payload:
                new_spid = self._split_subregion(current, grid)
                worklist.extend((current, new_spid))

    def _split_data_page(
        self, spid: int, subgrid: _SubGrid, dpid: int, page: _DataPage
    ) -> None:
        new_page = _DataPage()
        new_pid = self.store.allocate(PageKind.DATA, new_page)
        points = [p for p, _ in page.records]
        axis, cut = subgrid.layer.split_payload(dpid, new_pid, points)
        stay = [r for r in page.records if r[0][axis] < cut]
        move = [r for r in page.records if r[0][axis] >= cut]
        page.records = stay
        new_page.records = move
        self.store.write(dpid)
        self.store.write(new_pid)
        self.store.write(spid)

    def _split_subregion(self, spid: int, subgrid: _SubGrid) -> int:
        layer = subgrid.layer
        axis, boundary_index = self._choose_subregion_cut(layer)
        cut = layer.scales[axis][boundary_index]
        # Force-split any data page whose box straddles the cut.
        for dpid in list(layer.boxes):
            lo, hi = layer.boxes[dpid]
            if lo[axis] < boundary_index <= hi[axis]:
                self._force_split_data_page(layer, dpid, axis, boundary_index, cut)
        new_layer = self._extract_upper_layer(layer, axis, boundary_index)
        new_spid = self.store.allocate(PageKind.DIRECTORY, _SubGrid(new_layer))
        self.store.write(spid)
        self.store.write(new_spid)
        # Reflect the cut in the in-core first level.
        root_boundary = self._root.refine(axis, cut)
        self._root._apply_box_split(spid, new_spid, axis, root_boundary)
        return new_spid

    def _choose_subregion_cut(self, layer: _GridLayer) -> tuple[int, int]:
        """Pick (axis, boundary index) cutting fewest boxes, then most balanced."""
        best: tuple[int, int] | None = None
        best_key: tuple[int, float] | None = None
        for axis in range(layer.dims):
            n = layer.ncells(axis)
            for b in range(1, n):
                cuts = sum(
                    1
                    for lo, hi in layer.boxes.values()
                    if lo[axis] < b <= hi[axis]
                )
                balance = abs(b - (n - b)) / n
                key = (cuts, balance)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (axis, b)
        if best is None:
            raise RuntimeError("subregion with a single cell cannot overflow")
        return best

    def _force_split_data_page(
        self, layer: _GridLayer, dpid: int, axis: int, boundary_index: int, cut: float
    ) -> None:
        """Split a data page whose box straddles the subregion cut."""
        page: _DataPage = self.store.read(dpid)
        new_page = _DataPage()
        new_pid = self.store.allocate(PageKind.DATA, new_page)
        layer._apply_box_split(dpid, new_pid, axis, boundary_index)
        new_page.records = [r for r in page.records if r[0][axis] >= cut]
        page.records = [r for r in page.records if r[0][axis] < cut]
        self.store.write(dpid)
        self.store.write(new_pid)

    @staticmethod
    def _extract_upper_layer(
        layer: _GridLayer, axis: int, boundary_index: int
    ) -> _GridLayer:
        """Move everything at/above the cut into a fresh layer."""
        cut = layer.scales[axis][boundary_index]
        upper_region_lo = list(layer.region.lo)
        upper_region_lo[axis] = cut
        upper_region = Rect(tuple(upper_region_lo), layer.region.hi)
        lower_region_hi = list(layer.region.hi)
        lower_region_hi[axis] = cut
        lower_region = Rect(layer.region.lo, tuple(lower_region_hi))

        new_layer = _GridLayer(upper_region)
        new_layer.scales = [list(s) for s in layer.scales]
        new_layer.scales[axis] = layer.scales[axis][boundary_index:]
        new_layer.cells = {}
        new_layer.boxes = {}
        moved = [
            pid for pid, (lo, _) in layer.boxes.items() if lo[axis] >= boundary_index
        ]
        for pid in moved:
            lo, hi = layer.boxes.pop(pid)
            lo[axis] -= boundary_index
            hi[axis] -= boundary_index
            new_layer.boxes[pid] = (lo, hi)
            new_layer._fill_box(pid, lo, hi)
        # Shrink the old layer.  Boxes and scales were rewritten outside
        # the layer's own mutators, so drop its bounds snapshot by hand.
        layer.region = lower_region
        layer.scales[axis] = layer.scales[axis][: boundary_index + 1]
        layer.cells = {
            idx: pid for idx, pid in layer.cells.items() if idx[axis] < boundary_index
        }
        layer._bounds = None
        return new_layer

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        result = []
        store = self.store
        vector = store.columnar is not None
        if not vector:
            for spid in self._root.payloads_in_rect(rect, vector=False):
                subgrid: _SubGrid = store.read(spid)
                for dpid in subgrid.layer.payloads_in_rect(rect, vector=False):
                    page: _DataPage = store.read(dpid)
                    result.extend(
                        rec for rec in page.records if rect.contains_point(rec[0])
                    )
            return result
        # Read-then-batch: the visit set depends only on the directory
        # grids, so all data pages are read in the original (charged)
        # order, then evaluated in one fused kernel call.
        pages = []
        for spid in self._root.payloads_in_rect(rect, vector=True):
            subgrid: _SubGrid = store.read(spid)
            for dpid in subgrid.layer.payloads_in_rect(rect, vector=True):
                pages.append((dpid, store.read(dpid).records))
        rows = traverse.data_hit_rows(store, rect, pages)
        for dpid, records in pages:
            result.extend([records[i] for i in rows[dpid]])
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        spid = self._root.payload_of_point(point)
        subgrid: _SubGrid = self.store.read(spid)
        dpid = subgrid.layer.payload_of_point(point)
        page: _DataPage = self.store.read(dpid)
        return [rid for p, rid in page.records if p == point]
