"""The classic (one-level) grid file [NHS 84] and its grid machinery.

A grid file cuts each axis of its region with a *linear scale* (a sorted
list of boundaries).  The scales induce a grid of cells; a *directory*
maps every cell to a data page, and the cells of one data page always
form a rectangular *box* of cells (the page region).  Splitting a full
page either reuses an existing boundary inside its box or refines a
scale; refining doubles the affected directory slice, which is the
source of the directory's superlinear growth under skewed data that the
paper criticises.

The grid machinery (:class:`_GridLayer`) is shared with the paper's
GRID structure, the 2-level grid file in
:mod:`repro.pam.twolevelgrid`.
"""

from __future__ import annotations

import bisect
from typing import Iterable

import numpy as np

from repro.core.interfaces import PointAccessMethod
from repro.geometry import kernels
from repro.geometry.rect import Rect
from repro.storage import layout
from repro.storage.page import PageKind
from repro.storage.pagestore import PageStore
from repro.query import traverse
from repro.storage.soa import soa_field

__all__ = ["GridFile"]

#: Give up splitting after this many scale refinements of one cell; with
#: duplicate-free data this is never reached (48 halvings separate any
#: two distinct doubles in the unit square).
_MAX_REFINEMENTS = 64


class _GridLayer:
    """Scales, cells and page boxes of one grid level over a region.

    The layer knows nothing about disk pages; it maps cell index tuples
    to opaque *payload* identifiers and maintains, per payload, the
    inclusive box of cell indices it owns.
    """

    def __init__(self, region: Rect):
        self.region = region
        self.dims = region.dims
        #: Per axis, the sorted boundaries including both region edges.
        self.scales: list[list[float]] = [
            [region.lo[a], region.hi[a]] for a in range(self.dims)
        ]
        #: Cell index tuple -> payload id.
        self.cells: dict[tuple[int, ...], object] = {}
        #: Payload id -> (lo_idx, hi_idx) inclusive cell box.
        self.boxes: dict[object, tuple[list[int], list[int]]] = {}
        # Columnar snapshot of the payload box rectangles, in boxes-dict
        # order: (pids, lo, hi).  Dropped by every mutation that moves a
        # box or a scale boundary; rebuilt lazily by payloads_in_rect.
        self._bounds: tuple[list[object], np.ndarray, np.ndarray] | None = None

    # -- geometry ---------------------------------------------------------

    def ncells(self, axis: int) -> int:
        """Number of cells along ``axis``."""
        return len(self.scales[axis]) - 1

    def total_cells(self) -> int:
        """Total number of directory cells."""
        n = 1
        for a in range(self.dims):
            n *= self.ncells(a)
        return n

    def byte_size(self) -> int:
        """Bytes needed to store scales plus the cell array."""
        scale_bytes = sum(len(s) for s in self.scales) * layout.COORD_SIZE
        return scale_bytes + self.total_cells() * layout.POINTER_SIZE

    def cell_of_point(self, point: Iterable[float]) -> tuple[int, ...]:
        """Cell containing ``point`` (half-open cells; upper edge clamped)."""
        idx = []
        for a, c in enumerate(point):
            i = bisect.bisect_right(self.scales[a], c) - 1
            idx.append(min(max(i, 0), self.ncells(a) - 1))
        return tuple(idx)

    def box_rect(self, pid: object) -> Rect:
        """Spatial rectangle of a payload's cell box."""
        lo_idx, hi_idx = self.boxes[pid]
        lo = tuple(self.scales[a][lo_idx[a]] for a in range(self.dims))
        hi = tuple(self.scales[a][hi_idx[a] + 1] for a in range(self.dims))
        return Rect(lo, hi)

    # -- payload management -------------------------------------------------

    def install_root_payload(self, pid: object) -> None:
        """Assign the whole (so far unsplit) region to ``pid``."""
        if self.cells:
            raise ValueError("layer already populated")
        self._bounds = None
        lo = [0] * self.dims
        hi = [self.ncells(a) - 1 for a in range(self.dims)]
        self.boxes[pid] = (lo, hi)
        self._fill_box(pid, lo, hi)

    def payload_of_point(self, point: Iterable[float]) -> object:
        """Payload responsible for ``point``."""
        return self.cells[self.cell_of_point(point)]

    def payloads_in_rect(self, rect: Rect, vector: bool = False) -> list[object]:
        """Distinct payloads whose box intersects the closed ``rect``.

        Uses the per-payload boxes rather than enumerating cells, so the
        cost is proportional to the number of payloads, not cells.  With
        ``vector=True`` (callers pass their store's columnar setting) the
        box rectangles are tested in one NumPy call over a cached bounds
        snapshot; payload order — and therefore the order data pages are
        read in — is the boxes-dict order either way.
        """
        if vector and len(self.boxes) > 1:
            pids, lo, hi = self._box_bounds()
            mask = kernels.boxes_intersect(
                lo, hi, np.asarray(rect.lo, dtype=float), np.asarray(rect.hi, dtype=float)
            )
            return [pids[i] for i in np.nonzero(mask)[0]]
        result = []
        for pid in self.boxes:
            if self.box_rect(pid).intersects(rect):
                result.append(pid)
        return result

    def _box_bounds(self) -> tuple[list[object], np.ndarray, np.ndarray]:
        """The cached ``(pids, lo, hi)`` snapshot of every payload box."""
        if self._bounds is None:
            pids = list(self.boxes)
            lo = np.empty((len(pids), self.dims))
            hi = np.empty((len(pids), self.dims))
            for i, pid in enumerate(pids):
                lo_idx, hi_idx = self.boxes[pid]
                for a in range(self.dims):
                    lo[i, a] = self.scales[a][lo_idx[a]]
                    hi[i, a] = self.scales[a][hi_idx[a] + 1]
            self._bounds = (pids, lo, hi)
        return self._bounds

    def _fill_box(self, pid: object, lo: list[int], hi: list[int]) -> None:
        idx = list(lo)
        while True:
            self.cells[tuple(idx)] = pid
            axis = 0
            while axis < self.dims:
                idx[axis] += 1
                if idx[axis] <= hi[axis]:
                    break
                idx[axis] = lo[axis]
                axis += 1
            if axis == self.dims:
                return

    # -- refinement -----------------------------------------------------------

    def refine(self, axis: int, value: float) -> int:
        """Insert boundary ``value`` into the scale of ``axis``.

        All cell indices and boxes are remapped.  Returns the index of
        the new boundary within the scale.  A ``value`` already present
        is a no-op (its index is still returned).
        """
        scale = self.scales[axis]
        pos = bisect.bisect_left(scale, value)
        if pos < len(scale) and scale[pos] == value:
            return pos
        if not scale[0] < value < scale[-1]:
            raise ValueError(f"boundary {value} outside region axis {axis}")
        scale.insert(pos, value)
        self._bounds = None
        split_interval = pos - 1  # the old interval being halved
        new_cells: dict[tuple[int, ...], object] = {}
        for idx, pid in self.cells.items():
            i = idx[axis]
            if i < split_interval:
                new_cells[idx] = pid
            elif i == split_interval:
                new_cells[idx] = pid
                bumped = idx[:axis] + (i + 1,) + idx[axis + 1 :]
                new_cells[bumped] = pid
            else:
                bumped = idx[:axis] + (i + 1,) + idx[axis + 1 :]
                new_cells[bumped] = pid
        self.cells = new_cells
        for lo, hi in self.boxes.values():
            if lo[axis] > split_interval:
                lo[axis] += 1
            if hi[axis] >= split_interval:
                hi[axis] += 1
        return pos

    # -- splitting ------------------------------------------------------------

    def split_payload(
        self,
        pid: object,
        new_pid: object,
        points: list[tuple[float, ...]],
    ) -> tuple[int, float]:
        """Split ``pid``'s box so both halves hold at least one point.

        Finds the most balanced split over all existing boundaries inside
        the box; when every boundary leaves one side empty (all points in
        a single cell), the cell is refined at its spatial midpoint until
        a separating boundary appears.  The upper half of the box is
        reassigned to ``new_pid``.  Returns ``(axis, boundary)`` of the
        cut for the caller to distribute its records.
        """
        for _ in range(_MAX_REFINEMENTS):
            choice = self._best_boundary(pid, points)
            if choice is not None:
                axis, boundary_index = choice
                self._apply_box_split(pid, new_pid, axis, boundary_index)
                return axis, self.scales[axis][boundary_index]
            self._refine_crowded_cell(pid, points)
        raise RuntimeError("grid split did not separate points (duplicates?)")

    def _best_boundary(
        self, pid: object, points: list[tuple[float, ...]]
    ) -> tuple[int, int] | None:
        """Most balanced (axis, scale boundary index) inside the box."""
        lo, hi = self.boxes[pid]
        best: tuple[int, int] | None = None
        best_imbalance = len(points) + 1
        for axis in range(self.dims):
            scale = self.scales[axis]
            for b in range(lo[axis] + 1, hi[axis] + 1):
                cut = scale[b]
                left = sum(1 for p in points if p[axis] < cut)
                right = len(points) - left
                if left == 0 or right == 0:
                    continue
                imbalance = abs(left - right)
                if imbalance < best_imbalance:
                    best_imbalance = imbalance
                    best = (axis, b)
        return best

    def _refine_crowded_cell(
        self, pid: object, points: list[tuple[float, ...]]
    ) -> None:
        """Refine the single cell holding all of ``pid``'s points."""
        cell = self.cell_of_point(points[0])
        # Split the cell's longest axis at its midpoint.
        best_axis, best_extent = 0, -1.0
        for a in range(self.dims):
            width = self.scales[a][cell[a] + 1] - self.scales[a][cell[a]]
            if width > best_extent:
                best_axis, best_extent = a, width
        midpoint = (
            self.scales[best_axis][cell[best_axis]]
            + self.scales[best_axis][cell[best_axis] + 1]
        ) / 2.0
        self.refine(best_axis, midpoint)

    def _apply_box_split(
        self, pid: object, new_pid: object, axis: int, boundary_index: int
    ) -> None:
        """Give the upper part of ``pid``'s box (from ``boundary_index``) to ``new_pid``."""
        self._bounds = None
        lo, hi = self.boxes[pid]
        upper_lo = list(lo)
        upper_lo[axis] = boundary_index
        upper_hi = list(hi)
        new_hi = list(hi)
        new_hi[axis] = boundary_index - 1
        self.boxes[pid] = (lo, new_hi)
        self.boxes[new_pid] = (upper_lo, upper_hi)
        self._fill_box(new_pid, upper_lo, upper_hi)

    # -- merging (deletions) ------------------------------------------------------

    def merge_candidates(self, pid: object) -> list[object]:
        """Payloads whose box unions with ``pid``'s box into a box (buddies)."""
        lo, hi = self.boxes[pid]
        out = []
        for other, (olo, ohi) in self.boxes.items():
            if other == pid:
                continue
            # The union is a box iff the boxes agree on all axes but one,
            # where they are adjacent.
            diff_axis = None
            adjacent = False
            ok = True
            for a in range(self.dims):
                if lo[a] == olo[a] and hi[a] == ohi[a]:
                    continue
                if diff_axis is not None:
                    ok = False
                    break
                diff_axis = a
                adjacent = hi[a] + 1 == olo[a] or ohi[a] + 1 == lo[a]
            if ok and diff_axis is not None and adjacent:
                out.append(other)
        return out

    def merge_payloads(self, keep: object, remove: object) -> None:
        """Fuse ``remove``'s box into ``keep``'s (must be buddies)."""
        self._bounds = None
        klo, khi = self.boxes[keep]
        rlo, rhi = self.boxes.pop(remove)
        lo = [min(a, b) for a, b in zip(klo, rlo)]
        hi = [max(a, b) for a, b in zip(khi, rhi)]
        self.boxes[keep] = (lo, hi)
        self._fill_box(keep, lo, hi)


class _DataPage:
    """A grid-file data page: a list of ``(point, rid)`` records."""

    __slots__ = ("_soa_records",)

    records = soa_field()

    def __init__(self) -> None:
        self.records: list[tuple[tuple[float, ...], object]] = []


class GridFile(PointAccessMethod):
    """One-level grid file: in-core scales, paged directory, data pages.

    The classic design follows the *two-disk-access principle*: the
    linear scales live in main memory, the directory array on disk (one
    access), the data page is the second access.  The directory array is
    packed row-major onto directory pages.

    This structure is an auxiliary baseline; the paper's GRID is the
    2-level variant in :class:`repro.pam.twolevelgrid.TwoLevelGridFile`.
    """

    def __init__(self, store: PageStore, dims: int = 2):
        super().__init__(store, dims, layout.point_record_size(dims))
        self._capacity = layout.data_page_capacity(self.record_size, store.page_size)
        self._layer = _GridLayer(Rect.unit(dims))
        # The paper buffers only "the last two accessed pages" for GRID.
        store.path_buffer_limit = 2
        self._dir_cells_per_page = layout.directory_page_payload(
            store.page_size
        ) // layout.POINTER_SIZE
        first = self.store.allocate(PageKind.DATA, _DataPage())
        self._layer.install_root_payload(first)
        self.store.write(first)
        # Directory pages are simulated: the array occupies
        # ceil(total_cells / cells_per_page) pages; accessing cell i
        # touches page i // cells_per_page.  We allocate placeholder
        # pages lazily to keep counts honest.
        self._dir_pages: list[int] = []
        self._sync_directory_pages()

    # -- plumbing ---------------------------------------------------------

    @property
    def directory_height(self) -> int:
        """One directory level."""
        return 1

    @property
    def record_capacity(self) -> int:
        return self._capacity

    def iter_records(self):
        """Uncharged walk of every record over the page boxes."""
        for pid in self._layer.boxes:
            yield from self.store.peek(pid).records

    def _snapshot_pages(self):
        """Uncharged :class:`PageView` walk (see :mod:`repro.obs.structure`)."""
        from repro.obs.structure import PageView

        per = self._dir_cells_per_page
        total = self._layer.total_cells()
        children: dict[int, dict[int, None]] = {
            pid: {} for pid in self._dir_pages
        }
        for cell in sorted(self._layer.cells):
            children[self._dir_page_of_cell(cell)].setdefault(
                self._layer.cells[cell]
            )
        for i, dpid in enumerate(self._dir_pages):
            yield PageView(
                pid=dpid,
                kind="directory",
                depth=0,
                regions=(),
                records=min(per, total - i * per),
                capacity=per,
                children=tuple(children[dpid]),
            )
        for pid in self._layer.boxes:
            page: _DataPage = self.store.peek(pid)
            yield PageView(
                pid=pid,
                kind="data",
                depth=1,
                regions=(self._layer.box_rect(pid),),
                records=len(page.records),
                capacity=self._capacity,
                content=(
                    Rect.bounding_points([p for p, _ in page.records])
                    if page.records
                    else None
                ),
            )

    def _sync_directory_pages(self) -> None:
        """Grow/shrink the simulated directory pages to the cell count."""
        needed = -(-self._layer.total_cells() // self._dir_cells_per_page)
        while len(self._dir_pages) < needed:
            pid = self.store.allocate(PageKind.DIRECTORY, None)
            self._dir_pages.append(pid)
        while len(self._dir_pages) > needed:
            self.store.free(self._dir_pages.pop())

    def _dir_page_of_cell(self, cell: tuple[int, ...]) -> int:
        """Directory page holding the pointer of ``cell`` (row-major)."""
        linear = 0
        for a in range(self.dims):
            linear = linear * self._layer.ncells(a) + cell[a]
        return self._dir_pages[linear // self._dir_cells_per_page]

    def _locate(self, point: tuple[float, ...]) -> int:
        """Read the directory, then return the data page id of ``point``."""
        cell = self._layer.cell_of_point(point)
        self.store.read(self._dir_page_of_cell(cell))
        return self._layer.cells[cell]

    # -- operations ------------------------------------------------------------

    def _insert(self, point: tuple[float, ...], rid: object) -> None:
        pid = self._locate(point)
        page: _DataPage = self.store.read(pid)
        page.records.append((point, rid))
        if len(page.records) > self._capacity:
            self._split_data_page(pid, page)
        else:
            self.store.write(pid)

    def _split_data_page(self, pid: int, page: _DataPage) -> None:
        new_page = _DataPage()
        new_pid = self.store.allocate(PageKind.DATA, new_page)
        points = [p for p, _ in page.records]
        axis, cut = self._layer.split_payload(pid, new_pid, points)
        stay = [r for r in page.records if r[0][axis] < cut]
        move = [r for r in page.records if r[0][axis] >= cut]
        page.records = stay
        new_page.records = move
        self.store.write(pid)
        self.store.write(new_pid)
        self._sync_directory_pages()
        # The refreshed directory region is written back.
        self.store.write(self._dir_page_of_cell(self._layer.cell_of_point(points[0])))

    def _range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        # Scales are in memory: identify candidate directory pages from
        # the cell index ranges, then visit each intersecting data page.
        touched_dir: set[int] = set()
        lo_cell = self._layer.cell_of_point(rect.lo)
        hi_cell = self._layer.cell_of_point(rect.hi)
        idx = list(lo_cell)
        while True:
            touched_dir.add(self._dir_page_of_cell(tuple(idx)))
            axis = 0
            while axis < self.dims:
                idx[axis] += 1
                if idx[axis] <= hi_cell[axis]:
                    break
                idx[axis] = lo_cell[axis]
                axis += 1
            if axis == self.dims:
                break
        for dpid in touched_dir:
            self.store.read(dpid)
        result = []
        store = self.store
        vector = store.columnar is not None
        pids = self._layer.payloads_in_rect(rect, vector=vector)
        if not vector:
            for pid in pids:
                page: _DataPage = store.read(pid)
                result.extend(
                    rec for rec in page.records if rect.contains_point(rec[0])
                )
            return result
        # Read-then-batch: the candidate set is content-independent, so
        # the pages are read in the original (charged) order first and
        # every cold page rides one fused kernel call.
        pages = [(pid, store.read(pid).records) for pid in pids]
        rows = traverse.data_hit_rows(store, rect, pages)
        for pid, records in pages:
            result.extend([records[i] for i in rows[pid]])
        return result

    def _exact_match(self, point: tuple[float, ...]) -> list[object]:
        pid = self._locate(point)
        page: _DataPage = self.store.read(pid)
        return [rid for p, rid in page.records if p == point]

    # -- deletion (not part of the paper's comparison, see §3) ------------------

    def delete(self, point: tuple[float, ...], rid: object) -> bool:
        """Remove one record; underfilled pages merge with a buddy.

        Returns ``True`` when the record existed.  The paper's
        comparison only grows files, but the grid file's merge policy is
        well defined, so it is implemented (and tested) here.
        """
        self.store.begin_operation()
        point = tuple(float(c) for c in point)
        pid = self._locate(point)
        page: _DataPage = self.store.read(pid)
        before = len(page.records)
        page.records = [r for r in page.records if not (r[0] == point and r[1] == rid)]
        if len(page.records) == before:
            return False
        self._records -= 1
        self.store.write(pid)
        if len(page.records) < self._capacity * 0.3:
            self._try_merge(pid, page)
        return True

    def _try_merge(self, pid: int, page: _DataPage) -> None:
        for other in self._layer.merge_candidates(pid):
            other_page: _DataPage = self.store.read(other)
            if len(other_page.records) + len(page.records) <= self._capacity:
                page.records.extend(other_page.records)
                self._layer.merge_payloads(pid, other)
                self.store.write(pid)
                self.store.free(other)
                self._sync_directory_pages()
                return
