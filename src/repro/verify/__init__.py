"""Correctness verification: invariant auditors and a differential fuzzer.

``repro.verify`` is the testing subsystem behind the paper repro: every
access method exposes ``audit()`` / ``check_invariants()`` (see
:mod:`repro.core.interfaces`), dispatched here to a per-structure
auditor that walks the page store and asserts structural invariants.
:mod:`repro.verify.fuzz` drives seeded operation sequences against each
structure and a brute-force oracle, auditing along the way and shrinking
failures to minimal reproducers.
"""

from repro.verify.invariants import Audit, AuditError, Violation
from repro.verify.auditors import run_audit

__all__ = ["Audit", "AuditError", "Violation", "run_audit"]
