"""Violation records, the audit collector and shared structural checks.

An auditor receives an :class:`Audit` wrapping one access method and
calls :meth:`Audit.check` for every invariant; failed checks accumulate
as :class:`Violation` records instead of aborting, so one audit reports
*all* broken invariants of a structure at once.  Checks read pages with
:meth:`repro.storage.pagestore.PageStore.peek` and friends, which leave
the access counters and the path buffer untouched.

The helpers at module level cover substrates shared by several
structures: the grid-file directory layer (GRID, 2-level GRID, twin
grid), the B+-tree (zkd-B-tree, clipping SAM) and the PLOP grid (PLOP,
quantile hashing, overlapping PLOP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.storage.page import PageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.interfaces import _AccessMethodBase

__all__ = [
    "Violation",
    "AuditError",
    "Audit",
    "check_grid_layer",
    "check_plop_grid",
    "check_bplus_tree",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    ``code`` is a stable machine-readable identifier of the invariant
    (e.g. ``"rtree.mbr-exact"``); ``message`` is the human diagnosis.
    """

    code: str
    message: str


class AuditError(AssertionError):
    """Raised by ``audit()`` when a structure violates its invariants."""

    def __init__(self, structure: str, violations: Iterable[Violation]):
        self.structure = structure
        self.violations = list(violations)
        lines = "\n".join(f"  [{v.code}] {v.message}" for v in self.violations)
        super().__init__(
            f"{structure}: {len(self.violations)} invariant violation(s)\n{lines}"
        )


class Audit:
    """Collects invariant violations while walking one access method."""

    def __init__(self, am: "_AccessMethodBase"):
        self.am = am
        self.store = am.store
        self.violations: list[Violation] = []

    def check(self, ok: object, code: str, message: str) -> bool:
        """Record a violation unless ``ok`` is truthy; returns ``bool(ok)``."""
        if not ok:
            self.violations.append(Violation(code, message))
        return bool(ok)

    # -- generic checks ----------------------------------------------------

    def check_record_count(self) -> None:
        """``iter_records()`` must enumerate exactly ``len(am)`` records."""
        try:
            walked = sum(1 for _ in self.am.iter_records())
        except Exception as exc:  # noqa: BLE001 - a broken walk is a finding
            self.check(
                False, "records.walk", f"iter_records() raised {exc!r}"
            )
            return
        self.check(
            walked == len(self.am),
            "records.count",
            f"iter_records() yields {walked} records, len() reports {len(self.am)}",
        )

    def check_page_accounting(
        self, reachable: set[int], pinned: set[int]
    ) -> None:
        """Reachable pages and pins must match the store exactly.

        ``reachable`` is the set of page ids the structure's walk found;
        ``pinned`` the set it expects to be pinned (always a subset of
        reachable).  Orphaned store pages (allocated, never freed, no
        longer referenced) and dangling references both surface here.
        """
        live = set(self.store.page_ids())
        orphans = live - reachable
        dangling = reachable - live
        self.check(
            not orphans,
            "pages.orphan",
            f"store holds {len(orphans)} page(s) the walk never reached: "
            f"{sorted(orphans)[:8]}",
        )
        self.check(
            not dangling,
            "pages.dangling",
            f"walk referenced {len(dangling)} page(s) not in the store: "
            f"{sorted(dangling)[:8]}",
        )
        actual_pins = self.store.pinned_ids()
        self.check(
            actual_pins == pinned,
            "pages.pins",
            f"pinned pages {sorted(actual_pins)} != expected {sorted(pinned)}",
        )

    def check_kind(self, pid: int, kind: PageKind, code: str) -> None:
        actual = self.store.kind(pid)
        self.check(
            actual is kind,
            code,
            f"page {pid} has kind {actual.value}, expected {kind.value}",
        )


# -- grid-file directory layer -------------------------------------------


def check_grid_layer(audit: Audit, layer, prefix: str, where: str = "") -> None:
    """Structural checks for one ``_GridLayer`` (scales, cells, boxes).

    Invariants:

    * each axis scale is strictly increasing and spans the layer region;
    * every grid cell carries a payload, and the box registry assigns
      every cell to exactly one payload box;
    * each box is a valid (inclusive) index range whose cells all map
      back to the box's payload.
    """
    tag = f" {where}" if where else ""
    for axis, scale in enumerate(layer.scales):
        ok = (
            len(scale) >= 2
            and all(a < b for a, b in zip(scale, scale[1:]))
            and scale[0] == layer.region.lo[axis]
            and scale[-1] == layer.region.hi[axis]
        )
        audit.check(
            ok,
            f"{prefix}.scales",
            f"axis-{axis} scale{tag} is not a strictly increasing partition "
            f"of [{layer.region.lo[axis]}, {layer.region.hi[axis]}]: {scale}",
        )
    total = layer.total_cells()
    audit.check(
        len(layer.cells) == total,
        f"{prefix}.coverage",
        f"grid{tag} has {len(layer.cells)} assigned cells, expected {total}",
    )
    covered = 0
    for pid, (lo_idx, hi_idx) in layer.boxes.items():
        box_ok = all(
            0 <= lo <= hi < layer.ncells(axis)
            for axis, (lo, hi) in enumerate(zip(lo_idx, hi_idx))
        )
        if not audit.check(
            box_ok,
            f"{prefix}.box-range",
            f"box of payload {pid}{tag} has invalid index range "
            f"{lo_idx}..{hi_idx}",
        ):
            continue
        idx = list(lo_idx)
        while True:
            covered += 1
            cell_pid = layer.cells.get(tuple(idx))
            if cell_pid != pid:
                audit.check(
                    False,
                    f"{prefix}.box-cells",
                    f"cell {tuple(idx)}{tag} maps to {cell_pid}, but lies in "
                    f"the box of payload {pid}",
                )
            axis = 0
            while axis < layer.dims:
                idx[axis] += 1
                if idx[axis] <= hi_idx[axis]:
                    break
                idx[axis] = lo_idx[axis]
                axis += 1
            if axis == layer.dims:
                break
    audit.check(
        covered == total,
        f"{prefix}.partition",
        f"boxes{tag} cover {covered} cells, expected {total} "
        "(every cell belongs to exactly one box)",
    )


# -- PLOP grid ------------------------------------------------------------


def check_plop_grid(audit: Audit, grid, prefix: str) -> set[int]:
    """Structural checks for one ``_PlopGrid``; returns reachable pids.

    Invariants:

    * slice boundaries per axis are strictly increasing from 0.0 to 1.0;
    * every record sits in the bucket its key hashes to (``address``);
    * no page ever exceeds capacity (PLOP chains overflow pages instead);
    * the grid's page and record counters match the chains exactly.
    """
    for axis, scale in enumerate(grid.slices):
        ok = (
            len(scale) >= 2
            and all(a < b for a, b in zip(scale, scale[1:]))
            and scale[0] == 0.0
            and scale[-1] == 1.0
        )
        audit.check(
            ok,
            f"{prefix}.slices",
            f"axis-{axis} slices are not a strictly increasing partition "
            f"of [0, 1]: {scale}",
        )
    pids: list[int] = []
    records = 0
    for idx, bucket in grid.buckets.items():
        audit.check(
            len(idx) == grid.dims
            and all(
                0 <= i < len(grid.slices[axis]) - 1
                for axis, i in enumerate(idx)
            ),
            f"{prefix}.bucket-index",
            f"bucket index {idx} is outside the slice grid",
        )
        audit.check(
            bucket.chain,
            f"{prefix}.chain-empty",
            f"bucket {idx} has an empty page chain",
        )
        for pid in bucket.chain:
            pids.append(pid)
            audit.check_kind(pid, PageKind.DATA, f"{prefix}.page-kind")
            page = audit.store.peek(pid)
            audit.check(
                len(page.records) <= grid.capacity,
                f"{prefix}.capacity",
                f"page {pid} of bucket {idx} holds {len(page.records)} "
                f"records, capacity {grid.capacity} (PLOP pages never "
                "overflow; chains grow instead)",
            )
            records += len(page.records)
            for record in page.records:
                home = grid.address(grid.key_of(record))
                audit.check(
                    home == idx,
                    f"{prefix}.placement",
                    f"record {record!r} on page {pid} hashes to bucket "
                    f"{home}, stored in {idx}",
                )
    audit.check(
        len(pids) == len(set(pids)),
        f"{prefix}.chain-shared",
        "a page appears in more than one bucket chain",
    )
    audit.check(
        grid._pages == len(pids),
        f"{prefix}.page-count",
        f"grid counts {grid._pages} pages, chains hold {len(pids)}",
    )
    audit.check(
        grid._records == records,
        f"{prefix}.record-count",
        f"grid counts {grid._records} records, pages hold {records}",
    )
    return set(pids)


# -- B+-tree --------------------------------------------------------------


def check_bplus_tree(audit: Audit, tree, prefix: str) -> set[int]:
    """Structural checks for one ``_BPlusTree``; returns reachable pids.

    Invariants:

    * the root (and only the root) is pinned;
    * inner nodes keep ``len(pids) == len(keys) + 1`` with keys in
      non-decreasing order, at most ``inner_capacity`` children;
    * every key in child ``i`` lies in the separator interval
      ``[keys[i-1], keys[i])`` — strictly below the right separator
      because equal-key runs are never cut by a leaf split;
    * leaves hold sorted keys, at most ``leaf_capacity`` of them unless
      all keys are equal (the tolerated oversized-leaf case);
    * all leaves sit at the same depth and the sibling chain from the
      leftmost leaf enumerates exactly the leaves in key order.
    """
    store = tree.store
    audit.check(
        store.pinned_ids() == {tree.root_pid},
        f"{prefix}.pin",
        f"pinned pages {sorted(store.pinned_ids())} != root {{{tree.root_pid}}}",
    )
    inner_pids: set[int] = set()
    leaf_order: list[int] = []
    leaf_depths: set[int] = set()
    # (pid, is_leaf, depth, lower bound incl. or None, upper bound excl. or None)
    stack = [(tree.root_pid, tree.root_is_leaf, 1, None, None)]
    while stack:
        pid, is_leaf, depth, lo, hi = stack.pop()
        if is_leaf:
            leaf_order.append(pid)
            leaf_depths.add(depth)
            audit.check_kind(pid, PageKind.DATA, f"{prefix}.leaf-kind")
            leaf = store.peek(pid)
            audit.check(
                all(a <= b for a, b in zip(leaf.keys, leaf.keys[1:])),
                f"{prefix}.leaf-sorted",
                f"leaf {pid} keys are not sorted",
            )
            audit.check(
                len(leaf.keys) == len(leaf.values),
                f"{prefix}.leaf-arity",
                f"leaf {pid} has {len(leaf.keys)} keys, {len(leaf.values)} values",
            )
            if len(leaf.keys) > tree.leaf_capacity:
                audit.check(
                    len(set(leaf.keys)) == 1,
                    f"{prefix}.leaf-capacity",
                    f"leaf {pid} holds {len(leaf.keys)} keys, capacity "
                    f"{tree.leaf_capacity}, and they are not all equal "
                    "(only an uncuttable equal-key run may overflow)",
                )
            for key in leaf.keys:
                audit.check(
                    (lo is None or key >= lo) and (hi is None or key < hi),
                    f"{prefix}.separators",
                    f"leaf {pid} key {key!r} outside separator interval "
                    f"[{lo!r}, {hi!r})",
                )
        else:
            inner_pids.add(pid)
            audit.check_kind(pid, PageKind.DIRECTORY, f"{prefix}.inner-kind")
            node = store.peek(pid)
            audit.check(
                len(node.pids) == len(node.keys) + 1,
                f"{prefix}.inner-arity",
                f"inner {pid} has {len(node.pids)} children, "
                f"{len(node.keys)} separators",
            )
            audit.check(
                len(node.pids) <= tree.inner_capacity,
                f"{prefix}.inner-capacity",
                f"inner {pid} has {len(node.pids)} children, capacity "
                f"{tree.inner_capacity}",
            )
            audit.check(
                all(a <= b for a, b in zip(node.keys, node.keys[1:])),
                f"{prefix}.inner-sorted",
                f"inner {pid} separators are not sorted",
            )
            # The tree tracks its height, so the children of a node at
            # depth == height are the leaves.
            children_are_leaves = depth == tree.height
            bounds = [lo, *node.keys, hi]
            for i, child in enumerate(node.pids):
                stack.append(
                    (child, children_are_leaves, depth + 1, bounds[i], bounds[i + 1])
                )
    audit.check(
        len(leaf_depths) == 1,
        f"{prefix}.balance",
        f"leaves found at depths {sorted(leaf_depths)}; a B+-tree is balanced",
    )
    # The walk above pushes children right-to-left onto a stack, so
    # leaf_order is not key order; recover key order by following the
    # sibling chain and compare as sets plus chain-sortedness.
    chain: list[int] = []
    pid = _leftmost_leaf(tree)
    seen_chain: set[int] = set()
    prev_last = None
    while pid is not None:
        if pid in seen_chain:
            audit.check(False, f"{prefix}.chain-cycle", f"sibling chain revisits leaf {pid}")
            break
        seen_chain.add(pid)
        chain.append(pid)
        leaf = store.peek(pid)
        if leaf.keys:
            audit.check(
                prev_last is None or prev_last <= leaf.keys[0],
                f"{prefix}.chain-sorted",
                f"leaf {pid} starts below the previous leaf's last key",
            )
            prev_last = leaf.keys[-1]
        pid = leaf.next_pid
    audit.check(
        set(chain) == set(leaf_order),
        f"{prefix}.chain-coverage",
        f"sibling chain covers {len(chain)} leaves, tree walk found "
        f"{len(leaf_order)}",
    )
    return inner_pids | set(leaf_order)


def _leftmost_leaf(tree):
    pid, is_leaf = tree.root_pid, tree.root_is_leaf
    depth = 1
    while not is_leaf:
        node = tree.store.peek(pid)
        pid = node.pids[0]
        is_leaf = depth == tree.height
        depth += 1
    return pid
