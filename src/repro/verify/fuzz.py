"""Deterministic differential fuzzer for every access method.

``python -m repro.verify.fuzz`` generates a seeded operation sequence
(inserts, deletes, all query types, drawn from the paper's data
distributions) per structure, applies it both to the structure and to a
brute-force oracle, compares every query answer and delete outcome, and
runs the structure's invariant auditor after every ``--audit-every``
mutations.  A failure is shrunk to a minimal operation sequence with a
greedy delta-debugging pass and written to ``results/fuzz/`` as a
self-contained JSON reproducer ``{structure, seed, ops, failure}``.

Operation sequences are precomputed from ``--seed`` alone, so a run is
fully reproducible; per-structure seeds are derived with a stable CRC
so adding a structure never perturbs the others.
"""

from __future__ import annotations

import argparse
import json
import sys
import zlib
from pathlib import Path
from random import Random
from typing import Any, Callable

from repro.geometry.rect import Rect
from repro.pam.bang import BangFile
from repro.pam.buddytree import BuddyTree
from repro.pam.gridfile import GridFile
from repro.pam.hbtree import HBTree
from repro.pam.kdbtree import KdBTree
from repro.pam.mlgf import MultilevelGridFile
from repro.pam.plop import PlopHashing, QuantileHashing
from repro.pam.twingrid import TwinGridFile
from repro.pam.twolevelgrid import TwoLevelGridFile
from repro.pam.zbtree import ZOrderBTree
from repro.sam.clipping import ClippingSAM
from repro.sam.overlapping import OverlappingPlop
from repro.sam.rplustree import RPlusTree
from repro.sam.rtree import RTree
from repro.sam.transformation import TransformationSAM
from repro.storage.factory import make_store
from repro.storage.pagestore import PageStore
from repro.verify.invariants import AuditError
from repro.verify.oracle import PamOracle, SamOracle
from repro.workloads.distributions import generate_point_file
from repro.workloads.rect_distributions import generate_rect_file

__all__ = ["STRUCTURES", "fuzz_structure", "main"]

#: Point distributions mixed into the PAM pools ("real" is excluded
#: only because generating it dominates the runtime).
_POINT_FILES = ("diagonal", "sinus", "bit", "x_parallel", "cluster", "uniform")

#: Rectangle distributions mixed into the SAM pools.
_RECT_FILES = (
    "uniform_small",
    "uniform_large",
    "gaussian_square",
    "gaussian_slim",
    "diagonal",
)


def _spec(
    kind: str,
    factory: Callable[[PageStore], Any],
    deletes: bool = False,
    pack_every: int | None = None,
) -> dict:
    return {
        "kind": kind,
        "factory": factory,
        "deletes": deletes,
        "pack_every": pack_every,
    }


#: The fuzz matrix: every access method of the repro, including the
#: option variants whose code paths differ (MBR bookkeeping, entry
#: encodings, packing).  BUDDY+ mixes pack() calls into the sequence
#: and therefore — like the paper's build — never deletes: deleting
#: from a packed file would rewrite regions of shared pages.
STRUCTURES: dict[str, dict] = {
    # -- point access methods
    "GRID": _spec("pam", lambda s: TwoLevelGridFile(s)),
    "GRID-1": _spec("pam", lambda s: GridFile(s), deletes=True),
    "TWIN": _spec("pam", lambda s: TwinGridFile(s)),
    "BANG": _spec("pam", lambda s: BangFile(s)),
    "BANG*": _spec(
        "pam", lambda s: BangFile(s, variable_length_entries=True)
    ),
    "BANG-MBR": _spec("pam", lambda s: BangFile(s, minimal_regions=True)),
    "HB": _spec("pam", lambda s: HBTree(s)),
    "HB-MBR": _spec("pam", lambda s: HBTree(s, minimal_regions=True)),
    "BUDDY": _spec("pam", lambda s: BuddyTree(s), deletes=True),
    "BUDDY+": _spec("pam", lambda s: BuddyTree(s), pack_every=120),
    "MLGF": _spec("pam", lambda s: MultilevelGridFile(s)),
    "KDB": _spec("pam", lambda s: KdBTree(s)),
    "ZB": _spec("pam", lambda s: ZOrderBTree(s)),
    "PLOP": _spec("pam", lambda s: PlopHashing(s)),
    "QUANTILE": _spec("pam", lambda s: QuantileHashing(s)),
    # -- spatial access methods
    "R": _spec("sam", lambda s: RTree(s), deletes=True),
    "R-GREENE": _spec("sam", lambda s: RTree(s, split_policy="greene")),
    "R+": _spec("sam", lambda s: RPlusTree(s)),
    "T-BANG": _spec(
        "sam",
        lambda s: TransformationSAM(
            s, lambda store, dims: BangFile(store, dims=dims, variable_length_entries=True)
        ),
    ),
    "T-BUDDY": _spec(
        "sam",
        lambda s: TransformationSAM(
            s, lambda store, dims: BuddyTree(store, dims=dims)
        ),
    ),
    "PLOP-SAM": _spec("sam", lambda s: OverlappingPlop(s)),
    "CLIP": _spec("sam", lambda s: ClippingSAM(s)),
}


def structure_seed(name: str, base_seed: int) -> int:
    """A per-structure seed that is stable across matrix edits."""
    return (base_seed * 1_000_003 + zlib.crc32(name.encode())) % (2**31)


# -- operation generation --------------------------------------------------


def _point_pool(n: int, seed: int) -> list[tuple[float, ...]]:
    """``n`` distinct points mixing the paper's distributions."""
    per = -(-n // len(_POINT_FILES))
    pool: list[tuple[float, ...]] = []
    seen: set[tuple[float, ...]] = set()
    for i, name in enumerate(_POINT_FILES):
        for point in generate_point_file(name, per, seed=seed * 37 + i + 1):
            if point not in seen:
                seen.add(point)
                pool.append(point)
    Random(seed).shuffle(pool)
    return pool


def _rect_pool(n: int, seed: int) -> list[Rect]:
    per = -(-n // len(_RECT_FILES))
    pool: list[Rect] = []
    for i, name in enumerate(_RECT_FILES):
        pool.extend(generate_rect_file(name, per, seed=seed * 41 + i + 1))
    Random(seed).shuffle(pool)
    return pool


def make_pam_ops(
    n_ops: int, seed: int, deletes: bool, pack_every: int | None
) -> list[list]:
    """A seeded PAM operation sequence (JSON-serialisable)."""
    rng = Random(seed)
    pool = _point_pool(n_ops + 64, seed)
    ops: list[list] = []
    live: list[tuple[tuple[float, ...], int]] = []
    dead: list[tuple[float, ...]] = []
    next_rid = 0
    pool_i = 0
    inserts_since_pack = 0
    for _ in range(n_ops):
        draw = rng.random()
        if draw < (0.5 if deletes else 0.6) or not live:
            if dead and rng.random() < 0.25:
                # Reinsertion of a previously deleted point exercises
                # the merge/split hysteresis paths.
                point = dead.pop(rng.randrange(len(dead)))
            else:
                point = pool[pool_i]
                pool_i += 1
            ops.append(["insert", list(point), next_rid])
            live.append((point, next_rid))
            next_rid += 1
            inserts_since_pack += 1
            if pack_every and inserts_since_pack >= pack_every:
                ops.append(["pack"])
                inserts_since_pack = 0
        elif deletes and draw < 0.62:
            if live and rng.random() < 0.8:
                point, rid = live.pop(rng.randrange(len(live)))
                dead.append(point)
                ops.append(["delete", list(point), rid])
            else:
                # A certain miss: rid -1 is never assigned.
                ops.append(["delete", [rng.random(), rng.random()], -1])
        elif draw < 0.78:
            if live and rng.random() < 0.7:
                center, _ = live[rng.randrange(len(live))]
            else:
                center = (rng.random(), rng.random())
            half = rng.choice((0.005, 0.02, 0.08, 0.25))
            lo = [max(0.0, c - half) for c in center]
            hi = [min(1.0, c + half) for c in center]
            ops.append(["range", lo, hi])
        elif draw < 0.9:
            if live and rng.random() < 0.7:
                point, _ = live[rng.randrange(len(live))]
            else:
                point = (rng.random(), rng.random())
            ops.append(["exact", list(point)])
        else:
            axis = rng.randrange(2)
            if live and rng.random() < 0.7:
                value = live[rng.randrange(len(live))][0][axis]
            else:
                value = rng.random()
            ops.append(["pm", [[axis, value]]])
    return ops


def make_sam_ops(n_ops: int, seed: int, deletes: bool) -> list[list]:
    """A seeded SAM operation sequence (JSON-serialisable)."""
    rng = Random(seed)
    pool = _rect_pool(n_ops + 64, seed)
    ops: list[list] = []
    live: list[tuple[Rect, int]] = []
    next_rid = 0
    pool_i = 0
    for _ in range(n_ops):
        draw = rng.random()
        if draw < (0.5 if deletes else 0.6) or not live:
            rect = pool[pool_i]
            pool_i += 1
            ops.append(["insert", list(rect.lo), list(rect.hi), next_rid])
            live.append((rect, next_rid))
            next_rid += 1
        elif deletes and draw < 0.62:
            if live and rng.random() < 0.8:
                rect, rid = live.pop(rng.randrange(len(live)))
                ops.append(["delete", list(rect.lo), list(rect.hi), rid])
            else:
                x, y = rng.random() * 0.9, rng.random() * 0.9
                ops.append(
                    ["delete", [x, y], [x + 0.01, y + 0.01], -1]
                )
        elif draw < 0.72:
            if live and rng.random() < 0.7:
                rect, _ = live[rng.randrange(len(live))]
                point = rect.center if rng.random() < 0.5 else rect.lo
            else:
                point = (rng.random(), rng.random())
            ops.append(["point", list(point)])
        else:
            qtype = rng.choice(("intersection", "containment", "enclosure"))
            if qtype == "enclosure" and live and rng.random() < 0.5:
                # A window inside a stored rectangle, so enclosure
                # queries actually hit.
                rect, _ = live[rng.randrange(len(live))]
                cx, cy = rect.center
                lo = [cx, cy]
                hi = [min(1.0, cx + 1e-4), min(1.0, cy + 1e-4)]
            else:
                half = rng.choice((0.01, 0.05, 0.15, 0.4))
                center = (rng.random(), rng.random())
                lo = [max(0.0, c - half) for c in center]
                hi = [min(1.0, c + half) for c in center]
            ops.append([qtype, lo, hi])
    return ops


def make_ops(spec: dict, n_ops: int, seed: int) -> list[list]:
    if spec["kind"] == "pam":
        return make_pam_ops(n_ops, seed, spec["deletes"], spec["pack_every"])
    return make_sam_ops(n_ops, seed, spec["deletes"])


# -- differential execution ------------------------------------------------


def _failure(index: int, op: list, code: str, detail: str) -> dict:
    return {"op_index": index, "op": op, "code": code, "detail": detail}


def _mismatch(index, op, got, want) -> dict:
    return _failure(
        index,
        op,
        "mismatch",
        f"structure answered {got!r}, oracle answered {want!r}",
    )


def run_ops(
    spec: dict,
    ops: list[list],
    audit_every: int,
    store_factory: Callable[[], PageStore] | None = None,
) -> dict | None:
    """Run ``ops`` differentially; returns a failure record or None.

    ``store_factory`` builds the page store under test; ``None`` defers
    to :func:`repro.storage.factory.make_store` (and so to
    ``REPRO_STORE_BACKEND``), keeping the simulated store the default.
    """
    store = store_factory() if store_factory is not None else make_store()
    am = spec["factory"](store)
    oracle = PamOracle() if spec["kind"] == "pam" else SamOracle()
    mutations = 0
    for index, op in enumerate(ops):
        kind = op[0]
        mutated = False
        try:
            if spec["kind"] == "pam":
                if kind == "insert":
                    point, rid = tuple(op[1]), op[2]
                    am.insert(point, rid)
                    oracle.insert(point, rid)
                    mutated = True
                elif kind == "delete":
                    point, rid = tuple(op[1]), op[2]
                    got = am.delete(point, rid)
                    want = oracle.delete(point, rid)
                    if got != want:
                        return _mismatch(index, op, got, want)
                    mutated = True
                elif kind == "pack":
                    am.pack()
                    mutated = True
                elif kind == "range":
                    rect = Rect(tuple(op[1]), tuple(op[2]))
                    got = sorted(am.range_query(rect), key=repr)
                    want = oracle.range_query(rect)
                    if got != want:
                        return _mismatch(index, op, got, want)
                elif kind == "exact":
                    point = tuple(op[1])
                    got = sorted(am.exact_match(point), key=repr)
                    want = oracle.exact_match(point)
                    if got != want:
                        return _mismatch(index, op, got, want)
                elif kind == "pm":
                    specified = {axis: value for axis, value in op[1]}
                    got = sorted(am.partial_match(specified), key=repr)
                    want = oracle.partial_match(specified)
                    if got != want:
                        return _mismatch(index, op, got, want)
                else:
                    raise ValueError(f"unknown PAM op {kind!r}")
            else:
                if kind == "insert":
                    rect = Rect(tuple(op[1]), tuple(op[2]))
                    am.insert(rect, op[3])
                    oracle.insert(rect, op[3])
                    mutated = True
                elif kind == "delete":
                    rect = Rect(tuple(op[1]), tuple(op[2]))
                    got = am.delete(rect, op[3])
                    want = oracle.delete(rect, op[3])
                    if got != want:
                        return _mismatch(index, op, got, want)
                    mutated = True
                elif kind == "point":
                    point = tuple(op[1])
                    got = sorted(am.point_query(point), key=repr)
                    want = oracle.point_query(point)
                    if got != want:
                        return _mismatch(index, op, got, want)
                elif kind in ("intersection", "containment", "enclosure"):
                    rect = Rect(tuple(op[1]), tuple(op[2]))
                    got = sorted(getattr(am, kind)(rect), key=repr)
                    want = getattr(oracle, kind)(rect)
                    if got != want:
                        return _mismatch(index, op, got, want)
                else:
                    raise ValueError(f"unknown SAM op {kind!r}")
        except AuditError as err:
            return _failure(index, op, "audit", str(err))
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            return _failure(index, op, "exception", repr(exc))
        if mutated:
            mutations += 1
            if audit_every and mutations % audit_every == 0:
                try:
                    am.audit()
                except AuditError as err:
                    return _failure(index, op, "audit", str(err))
    try:
        am.audit()
    except AuditError as err:
        return _failure(len(ops) - 1, ops[-1] if ops else None, "audit", str(err))
    return None


# -- shrinking -------------------------------------------------------------


def shrink_ops(
    still_fails: Callable[[list[list]], bool], ops: list[list]
) -> list[list]:
    """Greedy delta-debugging: drop chunks while the failure persists."""
    current = list(ops)
    chunk = max(len(current) // 2, 1)
    while True:
        shrunk = False
        i = 0
        while i < len(current):
            candidate = current[:i] + current[i + chunk :]
            if candidate and still_fails(candidate):
                current = candidate
                shrunk = True
            else:
                i += chunk
        if chunk == 1:
            if not shrunk:
                return current
        elif not shrunk:
            chunk = max(chunk // 2, 1)


# -- the harness -----------------------------------------------------------


def fuzz_structure(
    name: str,
    n_ops: int,
    seed: int,
    audit_every: int,
    out_dir: Path,
    store_factory: Callable[[], PageStore] | None = None,
) -> dict | None:
    """Fuzz one structure; on failure, shrink and write a reproducer."""
    spec = STRUCTURES[name]
    sseed = structure_seed(name, seed)
    ops = make_ops(spec, n_ops, sseed)
    failure = run_ops(spec, ops, audit_every, store_factory)
    if failure is None:
        return None
    shrunk = shrink_ops(
        lambda candidate: run_ops(spec, candidate, audit_every, store_factory)
        is not None,
        ops,
    )
    final = run_ops(spec, shrunk, audit_every, store_factory) or failure
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name.replace('*', 'star').replace('+', 'plus')}-seed{seed}.json"
    path.write_text(
        json.dumps(
            {
                "structure": name,
                "seed": seed,
                "structure_seed": sseed,
                "ops": shrunk,
                "failure": final,
            },
            indent=2,
        )
    )
    final = dict(final)
    final["reproducer"] = str(path)
    final["shrunk_ops"] = len(shrunk)
    return final


def replay(path: str | Path) -> dict | None:
    """Re-run a written reproducer file; returns the failure or None."""
    blob = json.loads(Path(path).read_text())
    return run_ops(STRUCTURES[blob["structure"]], blob["ops"], audit_every=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="Differential fuzz harness for every access method.",
    )
    parser.add_argument(
        "--ops", type=int, default=1000, help="operations per structure"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--structures",
        default="",
        help="comma-separated structure names (default: all)",
    )
    parser.add_argument(
        "--audit-every",
        type=int,
        default=50,
        help="audit after this many mutations (0: only at the end)",
    )
    parser.add_argument(
        "--out",
        default="results/fuzz",
        help="directory for shrunk reproducers",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("sim", "disk"),
        help="page-store backend (default: REPRO_STORE_BACKEND, else sim)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="base directory for disk-backend store files "
        "(kept for post-mortems; default: a temporary directory)",
    )
    parser.add_argument(
        "--pool-pages",
        type=int,
        default=None,
        help="disk-backend buffer pool budget in pages",
    )
    args = parser.parse_args(argv)
    store_factory = None
    if args.backend or args.store_dir or args.pool_pages:
        store_factory = lambda: make_store(  # noqa: E731
            backend=args.backend or "disk",
            directory=args.store_dir,
            pool_pages=args.pool_pages,
        )
    names = (
        [n.strip() for n in args.structures.split(",") if n.strip()]
        if args.structures
        else list(STRUCTURES)
    )
    unknown = [n for n in names if n not in STRUCTURES]
    if unknown:
        parser.error(
            f"unknown structures {unknown}; choose from {sorted(STRUCTURES)}"
        )
    out_dir = Path(args.out)
    failures = 0
    for name in names:
        failure = fuzz_structure(
            name, args.ops, args.seed, args.audit_every, out_dir, store_factory
        )
        if failure is None:
            print(f"{name:10s} ok   ({args.ops} ops)")
        else:
            failures += 1
            print(
                f"{name:10s} FAIL [{failure['code']}] at op "
                f"{failure['op_index']} -> {failure.get('reproducer')} "
                f"({failure.get('shrunk_ops')} ops after shrinking)"
            )
            print(f"           {failure['detail']}")
    if failures:
        print(f"{failures}/{len(names)} structures failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
