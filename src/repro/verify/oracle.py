"""Brute-force reference implementations for differential testing.

The oracles keep every record in a plain list and answer all query
types by linear scan — trivially correct, trivially slow.  The fuzzer
(:mod:`repro.verify.fuzz`) runs every access method against the
matching oracle and flags any divergence.
"""

from __future__ import annotations

from repro.geometry.rect import Rect

__all__ = ["PamOracle", "SamOracle"]


class PamOracle:
    """Linear-scan reference for point access methods."""

    def __init__(self, dims: int = 2):
        self.dims = dims
        self.records: list[tuple[tuple[float, ...], object]] = []

    def __len__(self) -> int:
        return len(self.records)

    def insert(self, point: tuple[float, ...], rid: object) -> None:
        self.records.append((tuple(point), rid))

    def delete(self, point: tuple[float, ...], rid: object) -> bool:
        try:
            self.records.remove((tuple(point), rid))
        except ValueError:
            return False
        return True

    def exact_match(self, point: tuple[float, ...]) -> list[object]:
        point = tuple(point)
        return sorted(
            (rid for p, rid in self.records if p == point), key=repr
        )

    def range_query(self, rect: Rect) -> list[tuple[tuple[float, ...], object]]:
        return sorted(
            ((p, rid) for p, rid in self.records if rect.contains_point(p)),
            key=repr,
        )

    def partial_match(
        self, specified: dict[int, float]
    ) -> list[tuple[tuple[float, ...], object]]:
        return sorted(
            (
                (p, rid)
                for p, rid in self.records
                if all(p[axis] == value for axis, value in specified.items())
            ),
            key=repr,
        )


class SamOracle:
    """Linear-scan reference for spatial access methods."""

    def __init__(self, dims: int = 2):
        self.dims = dims
        self.records: list[tuple[Rect, object]] = []

    def __len__(self) -> int:
        return len(self.records)

    def insert(self, rect: Rect, rid: object) -> None:
        self.records.append((rect, rid))

    def delete(self, rect: Rect, rid: object) -> bool:
        try:
            self.records.remove((rect, rid))
        except ValueError:
            return False
        return True

    def point_query(self, point: tuple[float, ...]) -> list[object]:
        point = tuple(point)
        return sorted(
            (rid for r, rid in self.records if r.contains_point(point)),
            key=repr,
        )

    def intersection(self, query: Rect) -> list[object]:
        return sorted(
            (rid for r, rid in self.records if r.intersects(query)), key=repr
        )

    def containment(self, query: Rect) -> list[object]:
        return sorted(
            (rid for r, rid in self.records if query.contains_rect(r)),
            key=repr,
        )

    def enclosure(self, query: Rect) -> list[object]:
        return sorted(
            (rid for r, rid in self.records if r.contains_rect(query)),
            key=repr,
        )
